"""E5 (ours): contribution of each compiled-simulation level.

The paper describes three compile-time steps (decoding, operation
sequencing, operation instantiation) and implements the first two.
This ablation measures the whole ladder, so the win of each step is
visible in isolation:

  interpretive -> predecoded (step 1) -> compiled (step 2, dynamic)
  -> static (step 2, static scheduling) -> unfolded (step 3)
  -> unfolded_static (step 3 + loop unfolding)
"""

from __future__ import annotations

from repro.apps import build_fir
from repro.bench import simulation_speed
from repro.bench.reporting import ExperimentReport
from repro.sim import SIM_KINDS

_LADDER_NOTES = {
    "interpretive": "all work at run-time",
    "predecoded": "+ compile-time decoding (step 1)",
    "compiled": "+ operation sequencing (step 2, dynamic)",
    "static": "step 2 with static scheduling",
    "unfolded": "+ operation instantiation (step 3)",
    "unfolded_static": "step 3 + simulation-loop unfolding",
}


def test_ablation_levels_c62x(benchmark, fir_app):
    report = ExperimentReport(
        "E5-levels-c62x",
        "compiled-simulation levels on the c62x FIR",
        "paper implements steps 1+2 ('compiled'); step 3 is its announced "
        "future work",
    )
    rates = {}
    for kind in SIM_KINDS:
        metrics = simulation_speed(fir_app, kind, min_runtime=1.0)
        rates[kind] = metrics["cycles_per_s"]
        report.add_row(
            level=kind,
            cycles_per_s=metrics["cycles_per_s"],
            vs_interpretive=metrics["cycles_per_s"]
            / rates["interpretive"],
            note=_LADDER_NOTES[kind],
        )
    report.emit()

    # The ladder must be monotone across the paper's three steps.
    assert rates["predecoded"] > rates["interpretive"]
    assert rates["compiled"] > rates["predecoded"]
    assert rates["unfolded"] > rates["compiled"]

    benchmark.pedantic(
        lambda: simulation_speed(fir_app, "unfolded_static"),
        rounds=1, iterations=1,
    )


def test_ablation_levels_tinydsp(benchmark):
    app = build_fir("tinydsp", taps=8, samples=48)
    report = ExperimentReport(
        "E5-levels-tinydsp",
        "compiled-simulation levels on the tinydsp FIR (4-stage, "
        "flushing pipeline)",
        "shallow front-end: smaller decode share, smaller compiled win",
    )
    rates = {}
    for kind in SIM_KINDS:
        metrics = simulation_speed(app, kind, min_runtime=1.0)
        rates[kind] = metrics["cycles_per_s"]
        report.add_row(
            level=kind,
            cycles_per_s=metrics["cycles_per_s"],
            vs_interpretive=metrics["cycles_per_s"]
            / rates["interpretive"],
        )
    report.emit()
    assert rates["compiled"] > rates["interpretive"]
    assert rates["unfolded"] > rates["predecoded"]
    benchmark.pedantic(
        lambda: simulation_speed(app, "compiled"), rounds=1, iterations=1
    )
