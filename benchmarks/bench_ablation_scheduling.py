"""E6 (ours): static vs dynamic scheduling under control hazards.

The paper distinguishes *dynamic* scheduling (operations of overlapping
instructions selected at simulation run-time) from *static* scheduling
(composed at compile time).  Static columns cannot contain instructions
that may flush/stall/halt, so on a flushing pipeline every taken branch
forces the dynamic fallback path.

We sweep branch density on tinydsp (flush policy): static scheduling's
advantage should erode as density grows.  On the c62x (exposed delay
slots, no flushes) branches are ordinary operations and static columns
keep working -- measured as a second series.
"""

from __future__ import annotations

from repro.apps import build_synthetic
from repro.bench import simulation_speed
from repro.bench.reporting import ExperimentReport

_DENSITIES = (0.0, 0.1, 0.25, 0.4)


def test_scheduling_vs_branch_density_tinydsp(benchmark):
    report = ExperimentReport(
        "E6-sched-tinydsp",
        "static vs dynamic scheduling vs branch density (flushing "
        "pipeline)",
        "static scheduling composes hazard-free windows at compile time",
    )
    advantages = []
    for density in _DENSITIES:
        app = build_synthetic(
            "tinydsp", target_words=384, branch_density=density,
            loop_iterations=96,
        )
        dynamic = simulation_speed(app, "compiled", min_runtime=0.6)
        static = simulation_speed(app, "static", min_runtime=0.6)
        advantage = static["cycles_per_s"] / dynamic["cycles_per_s"]
        advantages.append(advantage)
        report.add_row(
            branch_density=density,
            dynamic_cps=dynamic["cycles_per_s"],
            static_cps=static["cycles_per_s"],
            static_advantage=advantage,
        )
    report.emit()

    # Shape: the static advantage at zero hazards exceeds the advantage
    # under heavy hazards (where most cycles fall back to dynamic).
    assert advantages[0] > advantages[-1] * 0.98, (
        "static scheduling should degrade toward dynamic as control "
        "hazards increase: %r" % advantages
    )

    app = build_synthetic("tinydsp", target_words=384, branch_density=0.0,
                          loop_iterations=96)
    benchmark.pedantic(
        lambda: simulation_speed(app, "static"), rounds=1, iterations=1
    )


def test_scheduling_vs_branch_density_c62x(benchmark):
    report = ExperimentReport(
        "E6-sched-c62x",
        "static scheduling vs branch density (exposed pipeline: "
        "branches are not control hazards)",
    )
    for density in (0.0, 0.25):
        app = build_synthetic(
            "c62x", target_words=384, branch_density=density,
            loop_iterations=48,
        )
        dynamic = simulation_speed(app, "compiled", min_runtime=0.6)
        static = simulation_speed(app, "static", min_runtime=0.6)
        report.add_row(
            branch_density=density,
            dynamic_cps=dynamic["cycles_per_s"],
            static_cps=static["cycles_per_s"],
            static_advantage=static["cycles_per_s"]
            / dynamic["cycles_per_s"],
        )
    report.emit()
    app = build_synthetic("c62x", target_words=384, branch_density=0.25,
                          loop_iterations=48)
    benchmark.pedantic(
        lambda: simulation_speed(app, "static"), rounds=1, iterations=1
    )
