"""E4 / paper Section 6.1 (text): accuracy equivalence.

"Our generated simulator runs at ... the same accuracy level" -- the
compiled simulator loses nothing relative to the interpretive reference.

We assert something stronger than the paper could: every simulation
level produces *bit-identical* architectural state, identical cycle
counts and identical retired-instruction counts on every benchmark
application, and all of them match an independent golden Python model
of each algorithm.
"""

from __future__ import annotations

from repro.bench import load_app_program
from repro.bench.reporting import ExperimentReport
from repro.sim import SIM_KINDS, create_simulator


def test_accuracy_crosscheck(benchmark, paper_apps):
    report = ExperimentReport(
        "E4-accuracy",
        "bit-exactness across all simulation levels + golden check",
        "'without any loss in accuracy' (paper Section 6.1)",
    )
    for app in paper_apps:
        model, program = load_app_program(app)
        reference = None
        for kind in SIM_KINDS:
            simulator = create_simulator(model, kind)
            simulator.load_program(program)
            stats = simulator.run()
            app.verify(simulator.state)  # golden model check
            signature = (
                stats.cycles,
                stats.instructions,
                simulator.state.snapshot(),
            )
            if reference is None:
                reference = (kind, signature)
            else:
                ref_kind, ref_signature = reference
                assert signature[0] == ref_signature[0], (
                    "%s vs %s: cycle counts differ on %s"
                    % (kind, ref_kind, app.name)
                )
                assert signature[1] == ref_signature[1], (
                    "%s vs %s: instruction counts differ on %s"
                    % (kind, ref_kind, app.name)
                )
                assert signature[2] == ref_signature[2], (
                    "%s vs %s: architectural state differs on %s"
                    % (kind, ref_kind, app.name)
                )
        report.add_row(
            workload=app.name,
            cycles=reference[1][0],
            instructions=reference[1][1],
            levels_checked=len(SIM_KINDS),
            golden="match",
        )
    report.emit()

    app = paper_apps[0]
    model, program = load_app_program(app)

    def run_once():
        simulator = create_simulator(model, "compiled")
        simulator.load_program(program)
        simulator.run()
        return simulator.state.snapshot()

    benchmark.pedantic(run_once, rounds=1, iterations=1)
