"""Adaptive tiered execution: start fast, finish fast.

The claim the tiering tentpole stands on: a tiered simulator starts as
cheaply as the cheapest static configuration (no eager C compilation,
no whole-program unfolding before the first cycle) yet approaches the
eager native backend's throughput once the profile has promoted the
hot windows.  Measured on the paper's FIR workload:

* **time to first cycle** -- load + one simulated cycle -- must stay
  within ``MAX_TTFC_RATIO`` of the plain ``compiled`` kind (the
  cheapest static level), while the eager native backend pays its full
  C-compile latency up front;
* **steady-state throughput** -- simulated cycles/s measured after the
  warm-up/promotion phase -- must reach ``MIN_STEADY_SHARE`` of the
  eager native backend's (asserted only when a C toolchain exists);
* the tiered run stays **bit-identical** to the untiered reference.

Writes ``BENCH_adaptive_tiering.json`` (canonical copy under
``benchmarks/results/``, headline copy at the repository root).
"""

from __future__ import annotations

import tempfile
import time

from repro.apps import build_fir
from repro.bench import load_app_program
from repro.bench.reporting import ExperimentReport, publish_json
from repro.sim import create_simulator
from repro.sim.tiering import TierPolicy
from repro.simcc.native import native_available

#: Tiered time-to-first-cycle may cost at most this multiple of the
#: plain ``compiled`` kind's (the acceptance bar from the issue).
MAX_TTFC_RATIO = 2.0

#: Steady-state tiered throughput must reach this share of the eager
#: native backend's.
MIN_STEADY_SHARE = 0.70

#: Steady-state needs a run long enough to amortise per-burst state
#: marshalling (a few thousand cycles measures chunking overhead, not
#: throughput) -- so this experiment sizes its own FIR workload rather
#: than reusing the suite-wide quick sizing.
STEADY_FIR_ARGS = dict(taps=16, samples=512)


def _time_to_first_cycle(model, program, rounds=3, **kwargs):
    """Best-of-N seconds from cold construction to one simulated cycle."""
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        simulator = create_simulator(model, **kwargs)
        simulator.load_program(program)
        simulator.step()
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best


def _steady_state_cps(make_simulator, warmup_cycles, rounds=3,
                      chunk=2_000):
    """Best-of-N cycles/s of the run's tail, after ``warmup_cycles``.

    The warm-up covers the tiered simulator's profile/promotion phase,
    so the tail measures the promoted configuration -- and gives the
    eager backends an identical measurement window.  Returns
    ``(best_cps, tail_cycles, last_simulator)``.
    """
    best = None
    simulator = None
    tail = 0
    for _ in range(rounds):
        simulator = make_simulator()
        engine = simulator.engine
        while engine.cycles < warmup_cycles and not simulator.halted:
            engine.run_chunk(chunk)
        tail_start_cycles = engine.cycles
        start = time.perf_counter()
        simulator.run()
        seconds = time.perf_counter() - start
        tail = simulator.cycles - tail_start_cycles
        cps = tail / seconds if seconds > 0 else float("inf")
        best = cps if best is None else max(best, cps)
    return best, tail, simulator


def test_adaptive_tiering():
    fir_app = build_fir("c62x", **STEADY_FIR_ARGS)
    model, program = load_app_program(fir_app)
    have_cc = native_available()

    report = ExperimentReport(
        "BENCH-adaptive-tiering",
        "tiered promotion vs static configurations, FIR workload",
        "extends the paper's compiled-simulation levels (Section 3) "
        "with profile-guided mid-run promotion",
    )

    # -- reference run: total cycles and the bit-exactness anchor.
    reference = create_simulator(model, "compiled")
    reference.load_program(program)
    ref_stats = reference.run()
    fir_app.verify(reference.state)
    total_cycles = ref_stats.cycles
    warmup = total_cycles // 3

    policy = TierPolicy.for_mode("aggressive")

    # -- time to first simulated cycle, per configuration.
    ttfc = {
        "compiled": _time_to_first_cycle(model, program, kind="compiled"),
        "tiered": _time_to_first_cycle(model, program, kind="compiled",
                                       tiering=policy),
    }
    if have_cc:
        ttfc["native_eager"] = _time_to_first_cycle(
            model, program, kind="unfolded_static", backend="native",
            rounds=1,
        )
    ttfc_ratio = ttfc["tiered"] / ttfc["compiled"]

    # -- steady-state throughput after the promotion warm-up.  A first
    # tiered run primes the cache with the windowed artifacts (and the
    # native modules), so the measured run promotes from cache -- its
    # tail measures promoted execution, not mid-run C compilation.
    from repro.simcc.cache import SimulationCache

    cache_root = tempfile.mkdtemp(prefix="repro-bench-tiering-")
    primer = create_simulator(model, "compiled",
                              cache=SimulationCache(cache_root),
                              tiering=policy)
    primer.load_program(program)
    primer.run()

    def make_tiered():
        simulator = create_simulator(model, "compiled",
                                     cache=SimulationCache(cache_root),
                                     tiering=policy)
        simulator.load_program(program)
        return simulator

    tiered_cps, tiered_tail, tiered = _steady_state_cps(
        make_tiered, warmup
    )
    fir_app.verify(tiered.state)
    assert tiered.cycles == total_cycles
    assert tiered.state.differences(reference.state) == []
    timeline = tiered.tier_manager.timeline
    promoted_tiers = sorted({
        entry["tier"] for entry in timeline
        if entry["action"] == "promote"
    })

    steady = {"tiered": tiered_cps}
    if have_cc:
        def make_native():
            simulator = create_simulator(
                model, "unfolded_static", backend="native",
                cache=SimulationCache(cache_root),
            )
            simulator.load_program(program)
            return simulator

        native_cps, _, native = _steady_state_cps(make_native, warmup)
        assert native.cycles == total_cycles
        steady["native_eager"] = native_cps

    report.add_row(workload=fir_app.name, cycles=total_cycles,
                   warmup_cycles=warmup, tail_cycles=tiered_tail,
                   promoted_tiers=",".join(promoted_tiers) or "none")
    for label, seconds in ttfc.items():
        report.add_row(variant=label, time_to_first_cycle_s=seconds)
    report.add_row(tiered_ttfc_ratio=ttfc_ratio,
                   bar_ttfc_ratio=MAX_TTFC_RATIO)
    for label, cps in steady.items():
        report.add_row(variant=label, steady_cycles_per_s=cps)
    if have_cc:
        share = steady["tiered"] / steady["native_eager"]
        report.add_row(tiered_share_of_native=share,
                       bar_share=MIN_STEADY_SHARE)
    report.emit()

    publish_json("BENCH_adaptive_tiering.json", {
        "experiment": "adaptive-tiering",
        "workload": fir_app.name,
        "cycles": total_cycles,
        "warmup_cycles": warmup,
        "time_to_first_cycle_s": ttfc,
        "time_to_first_cycle_ratio": ttfc_ratio,
        "threshold_ttfc_ratio": MAX_TTFC_RATIO,
        "steady_cycles_per_s": steady,
        "steady_share_of_native": (
            steady["tiered"] / steady["native_eager"] if have_cc else None
        ),
        "threshold_steady_share": MIN_STEADY_SHARE,
        "promoted_tiers": promoted_tiers,
        "timeline_events": len(timeline),
        "native_toolchain": have_cc,
    })

    assert ttfc_ratio <= MAX_TTFC_RATIO, (
        "tiered time-to-first-cycle is %.2fx the compiled kind's "
        "(bar: %.1fx)" % (ttfc_ratio, MAX_TTFC_RATIO)
    )
    assert promoted_tiers, "no promotion fired during the measured run"
    if have_cc:
        share = steady["tiered"] / steady["native_eager"]
        assert share >= MIN_STEADY_SHARE, (
            "tiered steady-state runs at %.0f%% of eager native "
            "(bar: %.0f%%)" % (100 * share, 100 * MIN_STEADY_SHARE)
        )
