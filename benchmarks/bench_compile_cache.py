"""Persistent simulation-table cache: speed and bit-exactness.

Two claims, both extending the paper's compile-time/run-time trade
(Section 4): first, that a *persistent* cache moves simulation
compilation out of the process entirely -- a warm reload of the GSM
table must be at least an order of magnitude faster than a cold
compile; second, that neither the cache round-trip nor the parallel
table build changes a single bit of simulation behaviour (the E4
accuracy bar applied to the new machinery).

Writes ``BENCH_compile_cache.json`` with the measured timings so CI
and the figure scripts can consume them.
"""

from __future__ import annotations

import time

from repro.bench import load_app_program
from repro.bench.reporting import ExperimentReport, publish_json
from repro.sim import create_simulator
from repro.simcc.cache import SimulationCache

#: The acceptance bar: warm reload vs cold compile on GSM.
MIN_WARM_SPEEDUP = 10.0

#: Table-based simulator kinds (the cache applies to nothing else).
CACHED_KINDS = ("compiled", "static", "unfolded", "unfolded_static")


def _timed_load(model, program, cache, jobs=None):
    simulator = create_simulator(model, "compiled", cache=cache, jobs=jobs)
    start = time.perf_counter()
    simulator.load_program(program)
    return time.perf_counter() - start


def test_cache_warm_reload_speedup(benchmark, gsm_app, tmp_path):
    """Cold compile+store vs warm disk reload vs warm memory hit (GSM)."""
    model, program = load_app_program(gsm_app)
    root = tmp_path / "simtab"

    cold_cache = SimulationCache(root)
    cold_seconds = _timed_load(model, program, cold_cache)
    assert cold_cache.stats["misses"] == 1
    assert cold_cache.stats["stores"] == 1

    # Warm disk: a fresh cache instance per trial (empty LRU), best of
    # three to shave scheduler noise.
    warm_disk_seconds = min(
        _timed_load(model, program, SimulationCache(root))
        for _ in range(3)
    )

    # Warm memory: same instance, table already rehydrated.
    memory_cache = SimulationCache(root)
    _timed_load(model, program, memory_cache)
    warm_memory_seconds = min(
        _timed_load(model, program, memory_cache) for _ in range(3)
    )
    assert memory_cache.stats["memory_hits"] >= 3

    speedup_disk = cold_seconds / warm_disk_seconds
    speedup_memory = cold_seconds / warm_memory_seconds

    report = ExperimentReport(
        "BENCH-compile-cache",
        "persistent simulation-table cache, GSM workload",
        "extends the paper's compile-time/run-time trade (Section 4)",
    )
    report.add_row(
        workload=gsm_app.name,
        words=program.word_count(model.config.program_memory),
        cold_s=cold_seconds,
        warm_disk_s=warm_disk_seconds,
        warm_memory_s=warm_memory_seconds,
        speedup_disk=speedup_disk,
        speedup_memory=speedup_memory,
    )
    report.emit()

    payload = {
        "experiment": "compile-cache",
        "workload": gsm_app.name,
        "program_words": program.word_count(model.config.program_memory),
        "cold_seconds": cold_seconds,
        "warm_disk_seconds": warm_disk_seconds,
        "warm_memory_seconds": warm_memory_seconds,
        "speedup_disk": speedup_disk,
        "speedup_memory": speedup_memory,
        "threshold": MIN_WARM_SPEEDUP,
    }
    publish_json("BENCH_compile_cache.json", payload)

    assert speedup_disk >= MIN_WARM_SPEEDUP, (
        "warm disk reload %.3fs is only %.1fx faster than cold compile "
        "%.3fs (need >= %.0fx)"
        % (warm_disk_seconds, speedup_disk, cold_seconds, MIN_WARM_SPEEDUP)
    )

    benchmark.pedantic(
        lambda: _timed_load(model, program, SimulationCache(root)),
        rounds=3, iterations=1,
    )


def test_cache_and_parallel_bit_identical(paper_apps, tmp_path):
    """E4 extended: cached (cold store + warm reload) and parallel-
    compiled simulators are bit-identical to a serial uncached one on
    every application at every table-based level."""
    report = ExperimentReport(
        "BENCH-cache-crosscheck",
        "cache/parallel bit-exactness across levels",
        "E4 accuracy bar applied to the cache and the parallel builder",
    )
    for app in paper_apps:
        model, program = load_app_program(app)
        for kind in CACHED_KINDS:
            reference = create_simulator(model, kind)
            reference.load_program(program)
            ref_stats = reference.run()
            app.verify(reference.state)
            ref_signature = (
                ref_stats.cycles,
                ref_stats.instructions,
                reference.state.snapshot(),
            )

            root = tmp_path / app.name / kind
            variants = [
                ("parallel", dict(jobs=2)),
                ("cached-cold", dict(cache=SimulationCache(root))),
                ("cached-warm", dict(cache=SimulationCache(root))),
            ]
            for label, kwargs in variants:
                simulator = create_simulator(model, kind, **kwargs)
                simulator.load_program(program)
                stats = simulator.run()
                app.verify(simulator.state)
                signature = (
                    stats.cycles,
                    stats.instructions,
                    simulator.state.snapshot(),
                )
                assert signature == ref_signature, (
                    "%s/%s: %s simulation diverges from serial uncached"
                    % (app.name, kind, label)
                )
            assert variants[2][1]["cache"].stats["disk_hits"] == 1

            report.add_row(
                workload=app.name,
                kind=kind,
                cycles=ref_stats.cycles,
                instructions=ref_stats.instructions,
                variants="parallel,cached-cold,cached-warm",
                golden="match",
            )
    report.emit()
