"""E8 (ours): compiled simulation inside HW/SW co-simulation.

The paper's conclusion motivates integrating the generated software
simulators into HW/SW co-simulation environments.  The question this
ablation answers: does the compiled-simulation advantage survive the
cycle-lockstep coupling with hardware models?

Workload: the stream-processing scenario from ``repro.cosim`` -- the
DSP between a hardware source and sink -- run with the software side on
the interpretive vs the compiled simulator.  Results must be identical
(the accuracy claim across the HW/SW boundary) and compiled must stay
faster.
"""

from __future__ import annotations

import time

from repro.api import build_toolset
from repro.bench.reporting import ExperimentReport
from repro.cosim import CoSimulation, RingBuffer, StreamSink, StreamSource
from repro.models import load_model
from repro.sim import create_simulator

_PROGRAM = """
        .entry start
        .equ COUNT, 64
start:  ldi r0, 1
        ldi r6, 7
        ldi r5, COUNT
main:
win:    ld r1, 16
        ld r2, 17
        sub r1, r1, r2
        brnz r1, got
        br win
got:    ldi r3, 0
        add r3, r3, r2
        ld r3, *3
        add r3, r3, r3
        add r2, r2, r0
        and r2, r2, r6
        st r2, 17
wout:   ld r1, 48
        add r1, r1, r0
        and r1, r1, r6
        ld r2, 49
        sub r4, r1, r2
        brnz r4, space
        br wout
space:  ld r2, 48
        ldi r4, 32
        add r4, r4, r2
        st r3, *4
        add r2, r2, r0
        and r2, r2, r6
        st r2, 48
        sub r5, r5, r0
        brnz r5, main
        halt
"""

_SAMPLES = [((i * 37) % 100) - 50 for i in range(64)]


def _run(kind):
    model = load_model("tinydsp")
    tools = build_toolset(model)
    simulator = create_simulator(model, kind)
    simulator.load_program(tools.assembler.assemble_text(_PROGRAM))
    cosim = CoSimulation()
    cosim.add_processor(simulator)
    in_ring = RingBuffer("dmem", base=0, length=8, head=16, tail=17)
    out_ring = RingBuffer("dmem", base=32, length=8, head=48, tail=49)
    cosim.add(StreamSource(simulator.state, in_ring, list(_SAMPLES)))
    sink = cosim.add(
        StreamSink(simulator.state, out_ring, expect=len(_SAMPLES))
    )
    start = time.perf_counter()
    cycles = cosim.run(max_cycles=5_000_000)
    elapsed = time.perf_counter() - start
    return {
        "cycles": cycles,
        "cycles_per_s": cycles / elapsed if elapsed else float("inf"),
        "received": sink.received,
    }


def test_cosim_levels(benchmark):
    report = ExperimentReport(
        "E8-cosim",
        "compiled vs interpretive software simulation inside HW/SW "
        "co-simulation",
        "the paper's future-work integration, measured",
    )
    results = {}
    for kind in ("interpretive", "compiled", "unfolded"):
        results[kind] = _run(kind)
        report.add_row(
            software_sim=kind,
            cycles=results[kind]["cycles"],
            cosim_cycles_per_s=results[kind]["cycles_per_s"],
            vs_interpretive=results[kind]["cycles_per_s"]
            / results["interpretive"]["cycles_per_s"],
        )
    report.emit()

    expected = [2 * s for s in _SAMPLES]
    for kind, result in results.items():
        assert result["received"] == expected, kind
        assert result["cycles"] == results["interpretive"]["cycles"], (
            "co-simulation cycle counts must not depend on the software "
            "simulation level (%s)" % kind
        )
    assert results["compiled"]["cycles_per_s"] \
        > results["interpretive"]["cycles_per_s"] * 2

    benchmark.pedantic(lambda: _run("compiled"), rounds=1, iterations=1)
