"""E1 / paper Figure 6: simulation-compilation speed.

The paper compiles three applications (FIR, ADPCM, GSM encoder) into
compiled simulations and reports application size, compilation time and
a compilation speed of 530-560 instructions/second that stays flat even
for the GSM coder that nearly fills program memory.

We regenerate the figure: same three workloads, simulation compilation
timed (the ``load_program`` of a compiled simulator), instructions/s
reported per application -- and assert the paper's *shape*: compilation
speed is roughly constant with application size.
"""

from __future__ import annotations

import time

from repro.bench import compilation_speed, load_app_program, paper_reference
from repro.bench.reporting import ExperimentReport
from repro.sim import create_simulator


def test_fig6_compilation_speed(benchmark, paper_apps):
    report = ExperimentReport(
        "E1-fig6",
        "simulation compilation speed vs application size",
        "530-560 insn/s on a Sparc Ultra 10, flat across sizes "
        "(%d-%d insn/s)" % paper_reference("compilation_speed_insn_per_s"),
    )
    speeds = []
    for app in paper_apps:
        metrics = compilation_speed(app)
        speeds.append(metrics["insn_per_s"])
        report.add_row(
            workload=app.name,
            words=metrics["words"],
            compile_s=metrics["compile_s"],
            insn_per_s=metrics["insn_per_s"],
        )
    flatness = max(speeds) / min(speeds)
    report.add_row(flatness_max_over_min=flatness)
    report.emit()

    # Shape assertion: compilation speed roughly independent of size.
    assert flatness < 4.0, (
        "compilation speed should be roughly flat across sizes: %r" % speeds
    )

    # Record the largest compilation in the pytest-benchmark table.
    gsm = paper_apps[-1]
    model, program = load_app_program(gsm)

    def compile_gsm():
        simulator = create_simulator(model, "compiled")
        start = time.perf_counter()
        simulator.load_program(program)
        return time.perf_counter() - start

    benchmark.pedantic(compile_gsm, rounds=1, iterations=1)


def test_fig6_size_sweep(benchmark):
    """Extra resolution on the size axis with synthetic programs."""
    from repro.apps import build_synthetic

    report = ExperimentReport(
        "E1-fig6-sweep",
        "compilation speed across a synthetic size sweep",
        "paper reports flat compilation speed (530-560 insn/s)",
    )
    speeds = []
    for words in (256, 1024, 4096):
        app = build_synthetic("c62x", target_words=words,
                              branch_density=0.05, loop_iterations=2)
        metrics = compilation_speed(app)
        speeds.append(metrics["insn_per_s"])
        report.add_row(words=metrics["words"],
                       compile_s=metrics["compile_s"],
                       insn_per_s=metrics["insn_per_s"])
    report.emit()
    assert max(speeds) / min(speeds) < 4.0

    app = build_synthetic("c62x", target_words=1024, branch_density=0.05,
                          loop_iterations=2)
    benchmark.pedantic(
        lambda: compilation_speed(app), rounds=1, iterations=1
    )
