"""E2 / paper Figure 7: compiled vs interpretive simulation speed.

The paper's headline: the generated compiled simulator of the C6201
runs at 288k-403k cycles/s where TI's interpretive sim62x reaches
2k-9k cycles/s -- speed-ups of 47x-170x at identical accuracy.

We regenerate the figure with our interpretive simulator in the sim62x
role and the level-2 compiled simulator (the paper's implemented steps)
on the same three applications.  Absolute numbers differ (Python vs
generated C++ on 1999 hardware); the *shape* assertions are:

* compiled is faster than interpretive on every application,
* by a healthy factor (>= 4x; typically 8-20x in this substrate),
* results and cycle counts are bit-identical (checked via the golden
  model inside the measurement).
"""

from __future__ import annotations

from repro.bench import paper_reference, simulation_speed
from repro.bench.reporting import ExperimentReport

_PAPER_FACTORS = {
    "fir_c62x": "~170x",
    "adpcm_c62x": "~127x",
    "gsm_c62x": "~47x",
}


def test_fig7_speedup(benchmark, paper_apps):
    report = ExperimentReport(
        "E2-fig7",
        "simulation speed: compiled vs interpretive (cycles/s)",
        "interpretive %d-%d cyc/s, compiled %d-%d cyc/s, 47x-170x"
        % (
            *paper_reference("interpretive_cycles_per_s"),
            *paper_reference("compiled_cycles_per_s"),
        ),
    )
    speedups = []
    for app in paper_apps:
        interp = simulation_speed(app, "interpretive", min_runtime=1.0)
        compiled = simulation_speed(app, "compiled", min_runtime=1.0)
        factor = compiled["cycles_per_s"] / interp["cycles_per_s"]
        speedups.append((app.name, factor))
        report.add_row(
            workload=app.name,
            cycles=interp["cycles"],
            interpretive_cps=interp["cycles_per_s"],
            compiled_cps=compiled["cycles_per_s"],
            speedup=factor,
            paper=_PAPER_FACTORS.get(app.name, "n/a"),
        )
    report.emit()

    for name, factor in speedups:
        assert factor > 4.0, (
            "compiled simulation should clearly beat interpretive on %s "
            "(got %.1fx)" % (name, factor)
        )

    # Record the FIR compiled run in the pytest-benchmark table.
    app = paper_apps[0]
    benchmark.pedantic(
        lambda: simulation_speed(app, "compiled"), rounds=1, iterations=1
    )


def test_fig7_third_step(benchmark, fir_app, adpcm_app):
    """The paper's announced future work: operation instantiation.

    Level 3 (generated per-instruction code) should extend the ladder
    beyond the implemented level 2.
    """
    report = ExperimentReport(
        "E2-fig7-l3",
        "operation instantiation (level 3) on top of the paper's level 2",
        "announced as future work in the paper's conclusion",
    )
    for app in (fir_app, adpcm_app):
        compiled = simulation_speed(app, "compiled", min_runtime=1.0)
        unfolded = simulation_speed(app, "unfolded", min_runtime=1.0)
        report.add_row(
            workload=app.name,
            compiled_cps=compiled["cycles_per_s"],
            unfolded_cps=unfolded["cycles_per_s"],
            extra_speedup=unfolded["cycles_per_s"]
            / compiled["cycles_per_s"],
        )
        assert unfolded["cycles_per_s"] > compiled["cycles_per_s"], (
            "operation instantiation should beat pre-bound interpretation "
            "on %s" % app.name
        )
    report.emit()
    benchmark.pedantic(
        lambda: simulation_speed(fir_app, "unfolded"), rounds=1,
        iterations=1,
    )
