"""E3 / paper Section 6 (text): model translation time.

"The complete translation of this model with the LISA compiler and the
simulation compiler generator takes less than 35 seconds on a Sparc
Ultra 10" -- for the full C6201 model with two pipelines and eleven
stages, against 12+ months for a hand-written compiled simulator of the
simpler C54x.

We time the same two steps for every shipped model: LISA compilation
(parse + semantic analysis into the model data base) and
simulation-compiler generation.  Shape assertion: seconds, not months.
"""

from __future__ import annotations

import time

from repro.bench import paper_reference
from repro.bench.reporting import ExperimentReport
from repro.models import MODEL_REGISTRY, load_model
from repro.simcc import generate_simulation_compiler


def _translate(name):
    start = time.perf_counter()
    model = load_model(name, use_cache=False)
    lisa_time = time.perf_counter() - start
    start = time.perf_counter()
    generate_simulation_compiler(model)
    generator_time = time.perf_counter() - start
    return model, lisa_time, generator_time


def test_model_translation_time(benchmark):
    report = ExperimentReport(
        "E3-translation",
        "LISA compiler + simulation-compiler generator wall-clock",
        "< %.0f s for the full C6201 model (Sparc Ultra 10)"
        % paper_reference("model_translation_s"),
    )
    for name in sorted(MODEL_REGISTRY):
        model, lisa_time, generator_time = _translate(name)
        total = lisa_time + generator_time
        report.add_row(
            model=name,
            operations=len(model.operations),
            pipeline_depth=model.pipeline.depth,
            lisa_s=lisa_time,
            simcc_gen_s=generator_time,
            total_s=total,
        )
        assert total < paper_reference("model_translation_s"), (
            "model translation of %r took %.1f s; the paper's bound is "
            "35 s on 1999 hardware" % (name, total)
        )
    report.emit()

    benchmark.pedantic(
        lambda: _translate("c62x"), rounds=3, iterations=1
    )
