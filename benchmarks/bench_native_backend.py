"""Native C backend: burst execution speed vs the Python backends.

The claim the tentpole stands on: rendering the post-pass SimIR to C
and driving whole pipeline windows per call (one Python<->C crossing
per burst instead of per cycle) buys at least an order of magnitude
over the fastest Python path.  Measured on the paper's FIR workload
(``e5-levels-c62x`` sizing): the native backend must run at least
``MIN_NATIVE_SPEEDUP`` times faster than ``unfolded_static`` and
clear ``MIN_NATIVE_CPS`` simulated cycles per second -- while staying
bit-identical to both Python backends (the E4 accuracy bar).

Writes ``BENCH_native_backend.json`` (canonical copy under
``benchmarks/results/``, headline copy at the repository root).
Skips cleanly when the host has no C compiler.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import load_app_program
from repro.bench.reporting import ExperimentReport, publish_json
from repro.sim import create_simulator
from repro.simcc.native import native_available

#: The acceptance bars from the issue: 10x over the fused static
#: Python backend, and an absolute floor of 1e7 simulated cycles/s.
MIN_NATIVE_SPEEDUP = 10.0
MIN_NATIVE_CPS = 1.0e7

#: (row label, simulator kind, backend) -- slowest first.
VARIANTS = (
    ("compiled", "compiled", "auto"),
    ("unfolded_static", "unfolded_static", "auto"),
    ("native", "unfolded_static", "native"),
)


def _best_run(model, program, kind, backend, rounds=3):
    """Best-of-N timed run (load/compile time excluded, as everywhere
    else in the suite: the paper's cycles/s figures are run-time only)."""
    best = None
    for _ in range(rounds):
        simulator = create_simulator(model, kind, backend=backend)
        simulator.load_program(program)
        start = time.perf_counter()
        stats = simulator.run()
        seconds = time.perf_counter() - start
        if best is None or seconds < best[2]:
            best = (simulator, stats, seconds)
    return best


def test_native_burst_speed(benchmark, fir_app):
    if not native_available():
        pytest.skip("no usable C compiler on the host")
    model, program = load_app_program(fir_app)

    report = ExperimentReport(
        "BENCH-native-backend",
        "native C bursts vs Python backends, FIR workload",
        "extends the paper's compiled-simulation speed claim (Section 4)",
    )
    rows = {}
    reference_snapshot = None
    for label, kind, backend in VARIANTS:
        simulator, stats, seconds = _best_run(model, program, kind, backend)
        fir_app.verify(simulator.state)
        snapshot = simulator.state.snapshot()
        if reference_snapshot is None:
            reference_snapshot = (stats.cycles, snapshot)
        else:
            assert (stats.cycles, snapshot) == reference_snapshot, (
                "%s diverges from the compiled reference" % label
            )
        cps = stats.cycles / seconds
        rows[label] = dict(seconds=seconds, cycles=stats.cycles, cps=cps)
        extra = {}
        if backend == "native":
            counts = simulator.engine.dispatch_counts
            extra = dict(
                bursts=counts["bursts"],
                native_cycles=counts["native_cycles"],
                python_cycles=counts["python_cycles"],
            )
        report.add_row(
            variant=label, cycles=stats.cycles, seconds=seconds,
            cycles_per_s=cps, **extra,
        )

    speedup = rows["native"]["cps"] / rows["unfolded_static"]["cps"]
    report.add_row(
        native_vs_unfolded_static=speedup,
        bar_speedup=MIN_NATIVE_SPEEDUP,
        bar_cps=MIN_NATIVE_CPS,
    )
    report.emit()

    publish_json("BENCH_native_backend.json", {
        "experiment": "native-backend",
        "workload": fir_app.name,
        "cycles": rows["native"]["cycles"],
        "variants": rows,
        "native_speedup_vs_unfolded_static": speedup,
        "threshold_speedup": MIN_NATIVE_SPEEDUP,
        "threshold_cycles_per_second": MIN_NATIVE_CPS,
    })

    assert speedup >= MIN_NATIVE_SPEEDUP, (
        "native backend is only %.1fx over unfolded_static "
        "(need >= %.0fx)" % (speedup, MIN_NATIVE_SPEEDUP)
    )
    assert rows["native"]["cps"] >= MIN_NATIVE_CPS, (
        "native backend runs %.3g cycles/s (need >= %.1g)"
        % (rows["native"]["cps"], MIN_NATIVE_CPS)
    )

    native = create_simulator(model, "unfolded_static", backend="native")
    native.load_program(program)

    def _rerun():
        native.reset()
        native.load_program(program)
        return native.run()

    benchmark.pedantic(_rerun, rounds=3, iterations=1)
