"""E7 (ours): retargetability across three pipelines.

The paper's core claim is *retargetable* compiled simulation: the same
generator flow serves any LISA model.  We run the identical FIR problem
through the full flow on all three shipped models -- 4-stage flushing
scalar, 6-stage accumulator DSP, 11-stage VLIW -- and report, per model:
tool-generation time, simulation-compilation speed, and the
compiled-over-interpretive speed-up.

Shape assertion: the deeper the front-end (more fetch/decode work per
instruction), the larger the compiled-simulation win -- the paper's
argument for why the C6201 benefits so much.
"""

from __future__ import annotations

import time

from repro.apps import build_fir
from repro.bench import compilation_speed, simulation_speed
from repro.bench.reporting import ExperimentReport
from repro.models import load_model
from repro.simcc import generate_simulation_compiler

_FIR_ARGS = {
    "tinydsp": dict(taps=8, samples=48),
    "c54x": dict(taps=8, samples=48),
    "c62x": dict(taps=8, samples=48),
}


def test_retargeting(benchmark):
    report = ExperimentReport(
        "E7-retarget",
        "one tool flow, three pipelines: FIR on every shipped model",
        "retargetability is the paper's premise (6 weeks for the C6201 "
        "model vs 12 months for a hand-written C54x simulator)",
    )
    speedups = {}
    for name in ("tinydsp", "c54x", "c62x"):
        start = time.perf_counter()
        model = load_model(name, use_cache=False)
        generate_simulation_compiler(model)
        toolgen_s = time.perf_counter() - start
        app = build_fir(name, **_FIR_ARGS[name])
        compile_metrics = compilation_speed(app)
        interp = simulation_speed(app, "interpretive", min_runtime=0.8)
        compiled = simulation_speed(app, "compiled", min_runtime=0.8)
        speedups[name] = (
            compiled["cycles_per_s"] / interp["cycles_per_s"]
        )
        report.add_row(
            model=name,
            pipeline_depth=model.pipeline.depth,
            toolgen_s=toolgen_s,
            simcc_insn_per_s=compile_metrics["insn_per_s"],
            interpretive_cps=interp["cycles_per_s"],
            compiled_cps=compiled["cycles_per_s"],
            speedup=speedups[name],
        )
    report.emit()

    for name, factor in speedups.items():
        assert factor > 2.0, (
            "compiled simulation should win on %s (got %.1fx)"
            % (name, factor)
        )
    # Deep VLIW front-end should benefit at least as much as the
    # shallow scalar pipeline (the paper's C6201 argument).
    assert speedups["c62x"] > speedups["tinydsp"] * 0.8

    app = build_fir("c54x", **_FIR_ARGS["c54x"])
    benchmark.pedantic(
        lambda: simulation_speed(app, "compiled"), rounds=1, iterations=1
    )
