"""Simulation service throughput: worker-pool scaling and warm cache.

The service claim measured here: on a multi-core host a 4-worker pool
must clear a batch of independent FIR jobs at least ``MIN_SCALING``
times faster than a 1-worker pool once the shared simulation-table
cache is warm (each job then skips table compilation and the pool is
bounded by simulation itself, which parallelises across workers).  The
cold-cache columns quantify what the shared cache is worth: the first
worker to need a table builds and stores it, everyone else reloads.

Writes ``BENCH_service_throughput.json`` with jobs/s and latency
percentiles per configuration.
"""

from __future__ import annotations

import os
import time

from repro.api import build_toolset, load_model
from repro.apps import build_fir
from repro.bench.reporting import ExperimentReport, publish_json
from repro.service import ServicePolicy, Supervisor
from repro.service.chaos import build_app_spec, compare_results, run_reference

#: The scaling bar, gated on actually having the cores to scale onto.
MIN_SCALING = 3.0

JOBS = 16


def _percentile(values, share):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(share * (len(ordered) - 1))))
    return ordered[index]


def _run_batch(specs, workers, cache_dir, reference):
    """Drain one batch; returns ``(jobs_per_s, latencies, wall)``.

    Latency here is submit-to-terminal per job, measured from the
    recorded submit timestamp -- under a FIFO queue it includes queue
    wait, which is what a service caller experiences.
    """
    policy = ServicePolicy(heartbeat_timeout=120.0)
    with Supervisor(workers=workers, cache_dir=cache_dir,
                    policy=policy) as pool:
        start = time.perf_counter()
        ids = [pool.submit(spec) for spec in specs]
        finished = {}
        while len(finished) < len(ids):
            pool.pump(0.02)
            now = time.perf_counter()
            for job_id in ids:
                if job_id not in finished and \
                        pool.status(job_id)["state"] == "completed":
                    finished[job_id] = now
        wall = time.perf_counter() - start
        latencies = [finished[job_id] - start for job_id in ids]
        for job_id in ids:
            compare_results(reference, pool.result(job_id), label=job_id)
    return len(ids) / wall, latencies, wall


def test_service_throughput_scaling(tmp_path):
    app = build_fir("c62x", taps=8, samples=48)
    toolset = build_toolset(load_model(app.model_name))
    base = build_app_spec(app, toolset, checkpoint_every=5_000)
    reference = run_reference(base)
    specs = [
        build_app_spec(app, toolset, name="bench-%02d" % index,
                       checkpoint_every=5_000)
        for index in range(JOBS)
    ]

    report = ExperimentReport(
        "BENCH-service-throughput",
        "supervised worker pool: batch throughput and latency",
        "the service layer over the paper's compiled simulators",
    )
    rows = {}
    for label, workers, cache_dir in (
        ("cold-1w", 1, str(tmp_path / "cold1")),
        ("cold-4w", 4, str(tmp_path / "cold4")),
        ("warm-1w", 1, str(tmp_path / "warm")),
        ("warm-4w", 4, str(tmp_path / "warm")),
    ):
        # the two warm rows share one cache; the first of them warms it
        if label.startswith("warm") and not os.path.isdir(cache_dir):
            _run_batch(specs[:1], 1, cache_dir, reference)
        jobs_per_s, latencies, wall = _run_batch(
            specs, workers, cache_dir, reference
        )
        rows[label] = {
            "workers": workers,
            "jobs": len(specs),
            "jobs_per_s": jobs_per_s,
            "wall_s": wall,
            "p50_s": _percentile(latencies, 0.50),
            "p99_s": _percentile(latencies, 0.99),
        }
        report.add_row(config=label, **rows[label])
    report.emit()

    scaling = rows["warm-4w"]["jobs_per_s"] / rows["warm-1w"]["jobs_per_s"]
    payload = {
        "experiment": "service-throughput",
        "workload": app.name,
        "cpu_count": os.cpu_count(),
        "configs": rows,
        "warm_scaling_4w_over_1w": scaling,
        "threshold": MIN_SCALING,
    }
    publish_json("BENCH_service_throughput.json", payload)

    # the scaling bar needs the cores to scale onto; single-digit-core
    # containers still publish the numbers above
    if (os.cpu_count() or 1) >= 4:
        assert scaling >= MIN_SCALING, (
            "4-worker warm-cache pool is only %.2fx a 1-worker pool "
            "(need >= %.1fx on a %d-core host)"
            % (scaling, MIN_SCALING, os.cpu_count())
        )
