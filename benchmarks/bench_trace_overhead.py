"""Observability overhead: the disabled path must be (near) free.

The instrumentation layer (:mod:`repro.obs`) promises that a simulator
with no observer attached runs the same hot loop as before the layer
existed: ``step`` is an instance attribute bound to an unhooked
``_step_plain`` whose body is identical to the pre-instrumentation
``Pipeline.step``.  This benchmark holds it to that promise by racing
the current disabled path against a verbatim replica of the
pre-instrumentation pipeline driver on the FIR workload and asserting
the wall-time ratio stays within ``MAX_DISABLED_OVERHEAD``.

The enabled configurations (metrics-only observer, full event
recording) are measured alongside for the record -- they are expected
to cost real time; the point of the dual-path design is that only
people who ask for tracing pay it.

The native leg holds the in-burst telemetry to its own bar: an
observer-attached (counters-mode) native ``unfolded_static`` run must
keep at least ``NATIVE_MIN_TELEMETRY_SPEEDUP``x over the Python
``unfolded_static`` path -- profiling must not demote bursts back to
the per-cycle loop.  Skipped silently when the host has no C
toolchain (the JSON records ``"native": null``).

Writes ``BENCH_trace_overhead.json`` so CI can track the ratios.
"""

from __future__ import annotations

import time
from functools import partial

from repro import obs
from repro.bench import load_app_program
from repro.bench.reporting import ExperimentReport, publish_json
from repro.sim import create_simulator
from repro.support.errors import SimulationError

#: The acceptance bar: disabled-tracing FIR wall time vs the
#: pre-instrumentation replica.
MAX_DISABLED_OVERHEAD = 1.05

#: Best-of-N timing per configuration, re-raced on a noisy first try.
TRIALS = 5
RETRIES = 3

#: The native-telemetry bar: a counters-mode observed native run must
#: keep at least this speedup over the Python ``unfolded_static`` path.
NATIVE_MIN_TELEMETRY_SPEEDUP = 5.0

#: The native leg runs a longer FIR than the shared fixture: burst
#: setup and the per-burst telemetry flush are fixed costs, so the
#: speedup claim needs enough cycles to measure the steady state.
NATIVE_FIR_ARGS = dict(taps=16, samples=512)


class _BaselinePipeline:
    """The pre-instrumentation pipeline driver, replicated verbatim.

    This is ``repro.machine.driver.Pipeline`` as it stood before the
    observability layer: ``step`` is a plain method and there is no
    observer slot.  Kept here (not in the package) because its only job
    is to be the honest baseline for the overhead assertion.
    """

    __slots__ = (
        "_model", "_state", "_control", "_frontend", "_pc_name",
        "_depth", "_watcher", "_read_pc", "_write_pc", "slots",
        "cycles", "instructions_retired",
    )

    def __init__(self, model, state, control, frontend, watcher=None):
        self._model = model
        self._state = state
        self._control = control
        self._frontend = frontend
        self._pc_name = model.pc_name
        self._depth = model.pipeline.depth
        self._watcher = watcher
        self._read_pc = partial(getattr, state, self._pc_name)
        self._write_pc = partial(setattr, state, self._pc_name)
        self.slots = [None] * self._depth
        self.cycles = 0
        self.instructions_retired = 0

    @property
    def drained(self):
        return all(slot is None for slot in self.slots)

    def step(self):
        control = self._control
        slots = self.slots

        retiring = slots.pop()
        if retiring is not None:
            self.instructions_retired += retiring.insn_count
        if control.halted:
            incoming = None
        elif control.stall_cycles > 0:
            control.stall_cycles -= 1
            incoming = None
        else:
            pc = self._read_pc()
            incoming = self._frontend(pc)
            if incoming is not None:
                self._write_pc(pc + incoming.words)
        slots.insert(0, incoming)

        for stage in range(self._depth - 1, -1, -1):
            slot = slots[stage]
            if slot is None:
                continue
            if stage < control.flush_below:
                slots[stage] = None
                continue
            ops = slot.ops_by_stage[stage]
            if ops:
                control.current_stage = stage
                for fn in ops:
                    fn()
        control.flush_below = -1

        self.cycles += 1
        if self._watcher is not None:
            self._watcher(self)

    def run(self, max_cycles=50_000_000):
        start = self.cycles
        while not (self._control.halted and self.drained):
            if self.cycles - start >= max_cycles:
                raise SimulationError(
                    "simulation exceeded %d cycles without halting"
                    % max_cycles
                )
            self.step()
        return self.cycles - start


def _fresh_engine(model, program, baseline=False, observer_factory=None,
                  kind="compiled", backend="auto"):
    observer = observer_factory() if observer_factory else None
    simulator = create_simulator(model, kind, observer=observer,
                                 backend=backend)
    simulator.load_program(program)
    if baseline:
        return _BaselinePipeline(
            model, simulator.state, simulator.control,
            simulator.table.make_frontend(model),
        )
    return simulator.engine


def _best_run_seconds(model, program, max_cycles, **kwargs):
    """Best-of-``TRIALS`` wall time of the engine's run loop alone
    (fresh state per trial; load/compile time excluded)."""
    best = float("inf")
    cycles = None
    engine = None
    for _ in range(TRIALS):
        engine = _fresh_engine(model, program, **kwargs)
        start = time.perf_counter()
        engine.run(max_cycles)
        best = min(best, time.perf_counter() - start)
        cycles = engine.cycles
    return best, cycles, engine


def _native_telemetry_leg(max_cycles):
    """Race the observed native burst path against Python
    ``unfolded_static``; None when the host cannot compile C."""
    from repro.apps import build_fir
    from repro.simcc.native import native_available

    if not native_available():
        return None
    model, program = load_app_program(
        build_fir("c62x", **NATIVE_FIR_ARGS)
    )

    python_s, python_cycles, _ = _best_run_seconds(
        model, program, max_cycles,
        kind="unfolded_static", backend="python",
    )
    counters_s, counters_cycles, counters_engine = _best_run_seconds(
        model, program, max_cycles,
        kind="unfolded_static", backend="native",
        observer_factory=lambda: obs.Observer(mode=obs.COUNTERS_MODE),
    )
    profile_s, profile_cycles, profile_engine = _best_run_seconds(
        model, program, max_cycles,
        kind="unfolded_static", backend="native",
        observer_factory=lambda: obs.Observer(mode=obs.PROFILE_MODE),
    )
    assert counters_cycles == python_cycles
    assert profile_cycles == python_cycles
    # The tentpole claim: observers in counters/profile mode must not
    # demote the native engine to the per-cycle Python path.
    assert counters_engine.dispatch_counts["bursts"] > 0
    assert profile_engine.dispatch_counts["bursts"] > 0

    return {
        "workload": dict(NATIVE_FIR_ARGS),
        "cycles": python_cycles,
        "python_unfolded_static_seconds": python_s,
        "counters_observed_seconds": counters_s,
        "profile_observed_seconds": profile_s,
        "counters_speedup": python_s / counters_s,
        "profile_speedup": python_s / profile_s,
        "bursts": counters_engine.dispatch_counts["bursts"],
        "threshold": NATIVE_MIN_TELEMETRY_SPEEDUP,
    }


def test_trace_overhead(benchmark, fir_app):
    """Disabled observability costs <= 5% on the FIR run loop."""
    model, program = load_app_program(fir_app)
    max_cycles = fir_app.max_cycles

    # Race disabled vs the replica; re-race on scheduler noise.
    ratio = baseline_s = disabled_s = None
    for _ in range(RETRIES):
        baseline_s, baseline_cycles, _ = _best_run_seconds(
            model, program, max_cycles, baseline=True)
        disabled_s, disabled_cycles, _ = _best_run_seconds(
            model, program, max_cycles)
        assert disabled_cycles == baseline_cycles
        ratio = disabled_s / baseline_s
        if ratio <= MAX_DISABLED_OVERHEAD:
            break

    metrics_s, _, _ = _best_run_seconds(
        model, program, max_cycles,
        observer_factory=lambda: obs.Observer(record=False),
    )
    full_s, _, _ = _best_run_seconds(
        model, program, max_cycles,
        observer_factory=obs.Observer,
    )
    native = _native_telemetry_leg(max_cycles)

    report = ExperimentReport(
        "BENCH-trace-overhead",
        "observability overhead on the FIR run loop",
        "the disabled dual-path step must match the pre-"
        "instrumentation driver",
    )
    report.add_row(
        workload=fir_app.name,
        cycles=baseline_cycles,
        baseline_s=baseline_s,
        disabled_s=disabled_s,
        disabled_ratio=ratio,
        metrics_only_s=metrics_s,
        full_trace_s=full_s,
        native_counters_speedup=(
            native["counters_speedup"] if native else None
        ),
    )
    report.emit()

    payload = {
        "experiment": "trace-overhead",
        "workload": fir_app.name,
        "cycles": baseline_cycles,
        "baseline_seconds": baseline_s,
        "disabled_seconds": disabled_s,
        "disabled_overhead_ratio": ratio,
        "metrics_only_seconds": metrics_s,
        "full_trace_seconds": full_s,
        "metrics_only_overhead_ratio": metrics_s / baseline_s,
        "full_trace_overhead_ratio": full_s / baseline_s,
        "threshold": MAX_DISABLED_OVERHEAD,
        "native": native,
    }
    publish_json("BENCH_trace_overhead.json", payload)

    assert ratio <= MAX_DISABLED_OVERHEAD, (
        "disabled-observability FIR run %.4fs is %.3fx the "
        "pre-instrumentation baseline %.4fs (bar: %.2fx)"
        % (disabled_s, ratio, baseline_s, MAX_DISABLED_OVERHEAD)
    )
    if native is not None:
        assert native["counters_speedup"] \
            >= NATIVE_MIN_TELEMETRY_SPEEDUP, (
                "counters-mode observed native run %.4fs keeps only "
                "%.2fx over the Python unfolded_static path %.4fs "
                "(bar: %.1fx)"
                % (native["counters_observed_seconds"],
                   native["counters_speedup"],
                   native["python_unfolded_static_seconds"],
                   NATIVE_MIN_TELEMETRY_SPEEDUP)
            )

    benchmark.pedantic(
        lambda: _fresh_engine(model, program).run(max_cycles),
        rounds=3, iterations=1,
    )
