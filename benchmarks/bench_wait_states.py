"""E9 (ours): external-memory wait states and compiled simulation.

DSP systems of the paper's era frequently ran from external memory with
wait states.  In LISA, a wait state is just a ``stall(n)`` in the
memory operation's behaviour -- but stalls are pipeline-control
requests, so they also disable static column composition around every
load.  This experiment measures both effects:

* cycle counts grow with the wait-state count (cycle accuracy),
* compiled simulation keeps its speed advantage,
* the *static* scheduler degrades toward the dynamic one as loads
  (= control-capable instructions) saturate the windows.
"""

from __future__ import annotations

import time

from repro.api import build_toolset
from repro.bench.reporting import ExperimentReport
from repro.lisa.semantics import compile_source
from repro.sim import create_simulator

_MODEL_TEMPLATE = r"""
MODEL waity;
RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int R[8];
    MEMORY uint16 pmem[512];
    MEMORY int dmem[64];
    PIPELINE pipe = { IF; ID; EX; WB };
}
CONFIG { WORDSIZE(16); PROGRAM_MEMORY(pmem); ROOT(insn);
         EXECUTE_STAGE(EX); }
OPERATION reg {
    DECLARE { LABEL idx; }
    CODING { idx[3] }
    SYNTAX { "r" idx }
    EXPRESSION { R[idx] }
}
OPERATION ld IN pipe.EX {
    DECLARE { GROUP dst = { reg }; LABEL addr; }
    CODING { 0b0001 dst addr[8] }
    SYNTAX { "ld" dst "," addr }
    BEHAVIOR {
        dst = dmem[addr];
        stall(%(wait_states)d);
    }
}
OPERATION add IN pipe.EX {
    DECLARE { GROUP dst = { reg }; GROUP src1 = { reg };
              GROUP src2 = { reg }; }
    CODING { 0b0010 dst src1 src2 0bxx }
    SYNTAX { "add" dst "," src1 "," src2 }
    BEHAVIOR { dst = src1 + src2; }
}
OPERATION ldi IN pipe.EX {
    DECLARE { GROUP dst = { reg }; LABEL imm; }
    CODING { 0b0011 dst imm[8] }
    SYNTAX { "ldi" dst "," imm }
    BEHAVIOR { dst = sext(imm, 8); }
}
OPERATION brnz IN pipe.EX {
    DECLARE { GROUP src = { reg }; LABEL target; }
    CODING { 0b0100 src target[8] }
    SYNTAX { "brnz" src "," target }
    BEHAVIOR { IF (src != 0) { PC = target; flush(); } }
}
OPERATION st IN pipe.EX {
    DECLARE { GROUP src = { reg }; LABEL addr; }
    CODING { 0b0101 src addr[8] }
    SYNTAX { "st" src "," addr }
    BEHAVIOR { dmem[addr] = src; }
}
OPERATION halt_op IN pipe.EX {
    CODING { 0b0110 0b00000000000 }
    SYNTAX { "halt" }
    BEHAVIOR { halt(); }
}
OPERATION nop IN pipe.EX {
    CODING { 0b0000 0b00000000000 }
    SYNTAX { "nop" }
    BEHAVIOR { }
}
OPERATION insn {
    DECLARE { GROUP op = { nop || ld || add || ldi || brnz || st
                           || halt_op }; LABEL pad; }
    CODING { pad[1] op }
    SYNTAX { op }
    ACTIVATION { op }
}
"""

# Memory-heavy loop: two loads per iteration.
_PROGRAM = """
        .section dmem
        .word 3, 4
        .section pmem
        ldi r5, 60
        ldi r6, -1
loop:   ld r1, 0
        ld r2, 1
        add r3, r1, r2
        add r4, r4, r3
        add r5, r5, r6
        brnz r5, loop
        st r4, 10
        halt
"""


def _measure(wait_states, kind):
    model = compile_source(
        _MODEL_TEMPLATE % {"wait_states": wait_states}, "waity.lisa"
    )
    tools = build_toolset(model)
    program = tools.assembler.assemble_text(_PROGRAM)
    simulator = create_simulator(model, kind)
    simulator.load_program(program)
    start = time.perf_counter()
    stats = simulator.run(max_cycles=10_000_000)
    elapsed = time.perf_counter() - start
    assert simulator.state.dmem[10] == 60 * 7
    return stats.cycles, stats.cycles / elapsed


def test_wait_states(benchmark):
    report = ExperimentReport(
        "E9-waitstates",
        "memory wait states: cycle accuracy and per-level cost",
        "wait states are stall() in the load behaviour; stalls are "
        "control requests, so they bound static columns",
    )
    baseline_cycles = None
    for wait_states in (0, 1, 3):
        cycles, _ = _measure(wait_states, "compiled")
        if baseline_cycles is None:
            baseline_cycles = cycles
        interp_cycles, interp_rate = _measure(wait_states, "interpretive")
        _, compiled_rate = _measure(wait_states, "compiled")
        _, static_rate = _measure(wait_states, "static")
        assert interp_cycles == cycles  # accuracy across levels
        report.add_row(
            wait_states=wait_states,
            cycles=cycles,
            interp_cps=interp_rate,
            compiled_cps=compiled_rate,
            static_cps=static_rate,
            compiled_speedup=compiled_rate / interp_rate,
        )
        # Cycle accuracy: two loads per iteration, each stalls fetch.
        if wait_states:
            assert cycles > baseline_cycles
    report.emit()

    benchmark.pedantic(
        lambda: _measure(3, "compiled"), rounds=1, iterations=1
    )
