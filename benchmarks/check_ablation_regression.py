"""Regression gate for the instantiated (level-3) simulation speed.

The SimIR refactor routed every backend through one lowered IR; this
script guards the bargain: the instantiated level must not get slower.
Absolute cycles/second depends on the host, so the gate compares
*hardware-normalised* speed ratios -- each level's rate divided by the
dynamically scheduled ``compiled`` level measured in the same process
on the same machine -- against a committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/check_ablation_regression.py
    PYTHONPATH=src python benchmarks/check_ablation_regression.py --update

``--update`` rewrites the baseline from a fresh measurement (commit the
result deliberately).  The check fails (exit 1) when any gated level's
ratio drops more than ``tolerance`` (default 10%) below the baseline;
ratios *above* baseline only print a note, so genuine speedups never
block CI but do invite a baseline refresh.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.apps import build_fir
from repro.bench import simulation_speed

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "results", "ablation_baseline.json"
)

REFERENCE_LEVEL = "compiled"
GATED_LEVELS = ("unfolded", "unfolded_static")
WORKLOAD = dict(taps=16, samples=32)


def measure(min_runtime):
    """Measured cycles/s per level, one process, one workload."""
    app = build_fir("c62x", **WORKLOAD)
    rates = {}
    for kind in (REFERENCE_LEVEL,) + GATED_LEVELS:
        rates[kind] = simulation_speed(
            app, kind, min_runtime=min_runtime
        )["cycles_per_s"]
    return rates


def measured_ratios(min_runtime, rounds, reducer):
    """Per-level ratios over ``rounds`` independent measurements.

    Scheduler noise on shared CI machines only ever makes a level look
    *slower*, so the *check* takes the best round per level (noise
    cannot hide a real regression that way) while ``--update`` records
    the conservative worst round as the baseline.
    """
    rounds_rates = [measure(min_runtime) for _ in range(rounds)]
    reduced = {
        kind: reducer(ratios_of(rates)[kind] for rates in rounds_rates)
        for kind in GATED_LEVELS
    }
    return rounds_rates[-1], reduced


def ratios_of(rates):
    reference = rates[REFERENCE_LEVEL]
    return {kind: rates[kind] / reference for kind in GATED_LEVELS}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline")
    parser.add_argument("--min-runtime", type=float,
                        default=float(os.environ.get(
                            "REPRO_ABLATION_RUNTIME", "1.0")),
                        help="seconds of simulation per level "
                        "(default 1.0; raise on noisy machines)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional regression "
                        "(default: the baseline's, normally 0.10)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="measurement rounds; the best ratio per "
                        "level counts (default 2)")
    args = parser.parse_args(argv)

    rates, ratios = measured_ratios(
        args.min_runtime, max(1, args.rounds),
        reducer=min if args.update else max,
    )
    for kind in (REFERENCE_LEVEL,) + GATED_LEVELS:
        print("%-16s %12.0f cycles/s  x%.2f vs %s" % (
            kind, rates[kind], rates[kind] / rates[REFERENCE_LEVEL],
            REFERENCE_LEVEL,
        ))

    if args.update:
        baseline = {
            "description": "hardware-normalised level-3 speed ratios "
            "(level rate / compiled rate, same host, same process)",
            "workload": "fir-c62x taps=%(taps)d samples=%(samples)d"
            % WORKLOAD,
            "reference_level": REFERENCE_LEVEL,
            "ratios": {k: round(v, 3) for k, v in ratios.items()},
            "tolerance": 0.10,
        }
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("baseline written to %s" % BASELINE_PATH)
        return 0

    try:
        with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except OSError:
        print("no baseline at %s -- run with --update first"
              % BASELINE_PATH, file=sys.stderr)
        return 2

    tolerance = (args.tolerance if args.tolerance is not None
                 else baseline.get("tolerance", 0.10))
    failed = False
    for kind in GATED_LEVELS:
        expected = baseline["ratios"][kind]
        got = ratios[kind]
        floor = expected * (1.0 - tolerance)
        if got < floor:
            failed = True
            print("FAIL %-16s ratio %.2f < %.2f (baseline %.2f - %d%%)"
                  % (kind, got, floor, expected, tolerance * 100),
                  file=sys.stderr)
        else:
            note = " (above baseline %.2f)" % expected if got > expected \
                else ""
            print("ok   %-16s ratio %.2f >= %.2f%s"
                  % (kind, got, floor, note))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
