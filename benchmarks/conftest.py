"""Shared fixtures for the benchmark suite.

Workload sizes are chosen so the whole suite finishes in a few minutes
while still running every table/figure of the paper's evaluation; set
``REPRO_BENCH_SCALE=paper`` for sizes closer to the paper's (the GSM
program then nearly fills program memory, as in the paper).
"""

from __future__ import annotations

import os

import pytest

from repro.apps import build_adpcm, build_fir, build_gsm

_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

if _SCALE == "paper":
    FIR_ARGS = dict(taps=16, samples=64)
    ADPCM_ARGS = dict(samples=512)
    GSM_ARGS = dict(target_words=7168)
else:
    FIR_ARGS = dict(taps=16, samples=32)
    ADPCM_ARGS = dict(samples=192)
    GSM_ARGS = dict(target_words=3072)


@pytest.fixture(scope="session")
def fir_app():
    return build_fir("c62x", **FIR_ARGS)


@pytest.fixture(scope="session")
def adpcm_app():
    return build_adpcm(**ADPCM_ARGS)


@pytest.fixture(scope="session")
def gsm_app():
    return build_gsm(**GSM_ARGS)


@pytest.fixture(scope="session")
def paper_apps(fir_app, adpcm_app, gsm_app):
    """The paper's three benchmark applications, smallest first."""
    return [fir_app, adpcm_app, gsm_app]
