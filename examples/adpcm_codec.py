#!/usr/bin/env python
"""Run the ADPCM codec benchmark on the c62x and inspect the signal.

The encoder/decoder pair runs entirely on the simulated VLIW DSP (in
branch-free C6x style); the host only prepares the input and checks the
output against the independent golden Python codec.
"""

from repro import build_toolset, load_model
from repro.apps import build_adpcm
from repro.apps.adpcm import CODE_BASE, DEC_BASE, IN_BASE

SAMPLES = 96


def main():
    app = build_adpcm(samples=SAMPLES)
    model = load_model("c62x")
    tools = build_toolset(model)
    program = app.assemble(tools)
    print("%s\n%d program words\n" % (app.description,
                                      program.word_count("pmem")))

    simulator = tools.new_simulator("unfolded")
    simulator.load_program(program)
    stats = simulator.run()
    app.verify(simulator.state)

    dmem = simulator.state.dmem
    pcm = dmem[IN_BASE : IN_BASE + SAMPLES]
    codes = dmem[CODE_BASE : CODE_BASE + SAMPLES]
    decoded = dmem[DEC_BASE : DEC_BASE + SAMPLES]

    print("sample   pcm     code   decoded   error")
    for i in range(0, SAMPLES, 12):
        error = decoded[i] - pcm[i]
        print("%6d %7d %6d %9d %7d" % (i, pcm[i], codes[i], decoded[i],
                                       error))

    errors = [abs(d - p) for d, p in zip(decoded, pcm)]
    print(
        "\n%d cycles, %.2f cycles/sample; 4-bit codes, mean |error| "
        "%.0f (16-bit PCM)"
        % (stats.cycles, stats.cycles / SAMPLES,
           sum(errors) / len(errors))
    )
    print("decoder output matches the golden model bit-for-bit")


if __name__ == "__main__":
    main()
