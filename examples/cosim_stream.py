#!/usr/bin/env python
"""HW/SW co-simulation: a DSP between two hardware stream ports.

The paper's conclusion names HW/SW co-simulation as future work; this
example runs it: a tinydsp program busy-waits on an input ring buffer
fed by a hardware source (one sample every 8 cycles, like a slow ADC),
scales each sample, and pushes it into an output ring drained by a
hardware sink.  Software and hardware advance in cycle lockstep, and
the software side runs on the *compiled* simulator.
"""

from repro import build_toolset, load_model
from repro.cosim import CoSimulation, RingBuffer, StreamSink, StreamSource

PROGRAM = """
        .entry start
        .equ INB, 0
        .equ INHEAD, 16
        .equ INTAIL, 17
        .equ OUTB, 32
        .equ OUTHEAD, 48
        .equ OUTTAIL, 49
        .equ COUNT, 16

start:  ldi r0, 1
        ldi r6, 7
        ldi r5, COUNT
main:
win:    ld r1, INHEAD
        ld r2, INTAIL
        sub r1, r1, r2
        brnz r1, got
        br win
got:    ldi r3, INB
        add r3, r3, r2
        ld r3, *3
        add r3, r3, r3      ; gain of 2
        add r2, r2, r0
        and r2, r2, r6
        st r2, INTAIL
wout:   ld r1, OUTHEAD
        add r1, r1, r0
        and r1, r1, r6
        ld r2, OUTTAIL
        sub r4, r1, r2
        brnz r4, space
        br wout
space:  ld r2, OUTHEAD
        ldi r4, OUTB
        add r4, r4, r2
        st r3, *4
        add r2, r2, r0
        and r2, r2, r6
        st r2, OUTHEAD
        sub r5, r5, r0
        brnz r5, main
        halt
"""

SAMPLES = [5, -3, 12, 7, -9, 4, 0, 8, 15, -2, 6, 1, -7, 3, 9, -5]


class SlowSource(StreamSource):
    """Delivers one sample every ``period`` cycles (ADC-like)."""

    def __init__(self, state, ring, samples, period=8, **kwargs):
        super().__init__(state, ring, samples, **kwargs)
        self._period = period
        self._tick = 0

    def step(self):
        self._tick += 1
        if self._tick % self._period == 0:
            super().step()


def main():
    model = load_model("tinydsp")
    tools = build_toolset(model)
    simulator = tools.new_simulator("compiled")
    simulator.load_program(tools.assembler.assemble_text(PROGRAM))

    cosim = CoSimulation()
    dsp = cosim.add_processor(simulator, "dsp")
    in_ring = RingBuffer("dmem", base=0, length=8, head=16, tail=17)
    out_ring = RingBuffer("dmem", base=32, length=8, head=48, tail=49)
    source = cosim.add(
        SlowSource(simulator.state, in_ring, SAMPLES, period=8)
    )
    sink = cosim.add(
        StreamSink(simulator.state, out_ring, expect=len(SAMPLES))
    )

    cycles = cosim.run(max_cycles=1_000_000)

    print("co-simulation finished after %d cycles" % cycles)
    print("  source delivered : %d samples (1 per 8 cycles)"
          % source.delivered)
    print("  dsp retired      : %d instructions"
          % dsp.simulator.stats.instructions)
    print("  sink received    : %s" % sink.received)
    assert sink.received == [2 * s for s in SAMPLES]
    print("hardware sink saw exactly 2x every input sample -- "
          "software on the compiled simulator, hardware models in "
          "lockstep")


if __name__ == "__main__":
    main()
