#!/usr/bin/env python
"""Emit a standalone compiled simulator, like the paper emits C++.

The simulation-compiler generator can write the compiled simulation as
a self-contained Python module: every instruction of the application
becomes specialised source code with operands folded in (operation
instantiation / simulation-loop unfolding).  This script emits such a
module for a small program, prints an excerpt, then imports and runs
it -- without touching the LISA front-end again.
"""

import os
import sys
import tempfile

from repro import build_toolset, load_model
from repro.machine import Pipeline, PipelineControl, ProcessorState
from repro.simcc import emit_simulator_module

PROGRAM = """
        .entry start
start:  ldi r1, 11
        ldi r2, 31
        mul r3, r1, r2
        st r3, 16
        halt
"""


def main():
    model = load_model("tinydsp")
    tools = build_toolset(model)
    program = tools.assembler.assemble_text(PROGRAM, name="standalone")

    source = emit_simulator_module(model, program)
    print("emitted %d lines of specialised simulator source; excerpt:\n"
          % len(source.splitlines()))
    in_function = False
    shown = 0
    for line in source.splitlines():
        if line.startswith("def insn_"):
            in_function = True
        if in_function and shown < 12:
            print("   ", line)
            shown += 1
    print("    ...")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "standalone_sim.py")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        sys.path.insert(0, tmp)
        try:
            import standalone_sim
        finally:
            sys.path.pop(0)

    state = ProcessorState(model)
    control = PipelineControl()
    standalone_sim.PROGRAM.load_into(state)
    frontend = standalone_sim.make_frontend(state, control)
    pipeline = Pipeline(model, state, control, frontend)
    pipeline.run()

    print("\nran the emitted module: dmem[16] = %d (11 * 31 = %d)"
          % (state.dmem[16], 11 * 31))
    assert state.dmem[16] == 341


if __name__ == "__main__":
    main()
