#!/usr/bin/env python
"""The paper's headline experiment in miniature: FIR on the VLIW c62x.

Runs the FIR benchmark through every simulation level and prints the
speed ladder -- the paper's Figure 7 reduced to one workload -- then
shows that every level produced bit-identical results (the accuracy
claim) verified against an independent golden Python FIR.
"""

import time

from repro import build_toolset, load_model
from repro.apps import build_fir
from repro.sim import SIM_KINDS

LEVEL_NOTES = {
    "interpretive": "decode + sequence + interpret, every fetch",
    "predecoded": "step 1: decode once, at load time",
    "compiled": "step 2: simulation table (the paper's simulator)",
    "static": "step 2 + statically scheduled columns",
    "unfolded": "step 3: generated code per instruction",
    "unfolded_static": "step 3 + simulation-loop unfolding",
}


def main():
    model = load_model("c62x")
    tools = build_toolset(model)
    app = build_fir("c62x", taps=16, samples=48)
    program = app.assemble(tools)
    print(
        "FIR: %s -> %d program words\n"
        % (app.description, program.word_count("pmem"))
    )

    baseline = None
    reference_state = None
    print("%-16s %12s %10s %s" % ("level", "cycles/s", "speedup", "what"))
    for kind in SIM_KINDS:
        simulator = tools.new_simulator(kind)
        simulator.load_program(program)
        start = time.perf_counter()
        stats = simulator.run()
        elapsed = time.perf_counter() - start
        app.verify(simulator.state)  # golden-model check
        rate = stats.cycles / elapsed
        if baseline is None:
            baseline = rate
        if reference_state is None:
            reference_state = simulator.state.snapshot()
        else:
            assert simulator.state.snapshot() == reference_state, (
                "accuracy violation at level %s" % kind
            )
        print(
            "%-16s %12.0f %9.1fx %s"
            % (kind, rate, rate / baseline, LEVEL_NOTES[kind])
        )

    print(
        "\nall levels produced bit-identical state over %d cycles "
        "(paper: 'without any loss in accuracy')" % stats.cycles
    )


if __name__ == "__main__":
    main()
