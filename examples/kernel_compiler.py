#!/usr/bin/env python
"""The whole loop: write a kernel in C-like source, compile it for two
very different DSPs, simulate, and profile.

The paper's conclusion points at retargetable compiler back-ends as the
next step after retargetable simulation; `repro.kcc` closes that loop
in miniature.  One kernel source compiles to the three-address tinydsp
*and* to the VLIW c62x (where the back-end pads the exposed delay
slots), runs on the compiled simulator of each, and both produce the
results predicted by an independent reference interpreter.
"""

from repro import build_toolset, load_model
from repro.kcc import compile_kernel, evaluate_kernel, parse_kernel
from repro.sim import create_simulator
from repro.tools.profiler import Profiler

KERNEL = """
array x[8] @ 0;
array y[8] @ 8;
int i = 0;
int acc = 0;
int t;
while (i != 8) {
    t = x[i] * 3;
    y[i] = t + 10;
    acc = acc + t;
    i = i + 1;
}
"""

INPUT = [4, -1, 7, 0, 2, -5, 9, 3]


def main():
    program = parse_kernel(KERNEL)

    # The golden answer, from the reference interpreter.
    golden = [0] * 64
    for address, value in enumerate(INPUT):
        golden[address] = value
    evaluate_kernel(program, golden)

    for target in ("tinydsp", "c62x"):
        assembly = compile_kernel(program, target)
        model = load_model(target)
        tools = build_toolset(model)
        obj = tools.assembler.assemble_text(assembly, name="kernel")
        simulator = create_simulator(model, "compiled")
        simulator.load_program(obj)
        for address, value in enumerate(INPUT):
            simulator.state.write_memory("dmem", address, value)
        profiler = Profiler(simulator)
        stats = simulator.run(max_cycles=1_000_000)

        result = simulator.state.dmem[8:16]
        assert result == golden[8:16], (target, result, golden[8:16])
        print(
            "%-8s %3d instructions of assembly, %5d cycles, y = %s"
            % (target, obj.word_count(model.config.program_memory),
               stats.cycles, result)
        )
        report = profiler.report()
        hot = report.annotate(tools.disassembler, obj, limit=3)
        print("         hottest instructions:")
        for line in hot:
            print("        ", line)
        print()

    print("one kernel source, two instruction sets, identical results "
          "(and both match the reference interpreter)")

    print("\nexcerpt of the generated c62x assembly:")
    for line in compile_kernel(program, "c62x").splitlines()[2:14]:
        print("   ", line)


if __name__ == "__main__":
    main()
