#!/usr/bin/env python
"""Watch instructions flow through the pipeline, cycle by cycle.

Uses the driver's watcher hook to print pipeline occupancy while a
short tinydsp program with a taken branch executes -- the flush of the
two younger stages (the pipeline operation the paper notes simple
instruction sequencers cannot express) is clearly visible as squashed
slots.
"""

from repro import build_toolset, load_model

PROGRAM = """
        .entry start
start:  ldi r1, 2
        ldi r2, -1
loop:   add r1, r1, r2
        brnz r1, loop      ; taken once, flushing IF/ID
        ldi r3, 7
        halt
"""


def main():
    model = load_model("tinydsp")
    tools = build_toolset(model)
    program = tools.assembler.assemble_text(PROGRAM)

    listing = {}
    for line in tools.disassembler.disassemble_program(program):
        address, text = line.split(":", 1)
        listing[int(address, 16)] = text.strip()

    simulator = tools.new_simulator("interpretive")
    simulator.load_program(program)
    pipeline = simulator.engine

    stages = model.pipeline.stages
    print("cycle  " + "".join("%-22s" % s for s in stages))
    print("-" * (7 + 22 * len(stages)))

    # Track which pc each slot was fetched from by watching fetches.
    fetch_log = []
    original_frontend = pipeline._frontend

    def logging_frontend(pc):
        slot = original_frontend(pc)
        fetch_log.append(pc)
        return slot

    pipeline._frontend = logging_frontend
    occupancy = [None] * model.pipeline.depth

    while not simulator.halted and simulator.cycles < 40:
        before = len(fetch_log)
        pipeline.step()
        occupancy.pop()
        occupancy.insert(0, fetch_log[-1] if len(fetch_log) > before
                         else None)
        # Detect squashes: slot present in occupancy but gone from pipe.
        cells = []
        for index in range(model.pipeline.depth):
            pc = occupancy[index]
            if pc is None:
                cells.append("%-22s" % "-")
            elif pipeline.slots[index] is None:
                cells.append("%-22s" % "(squashed)")
                occupancy[index] = None
            else:
                cells.append("%-22s" % listing.get(pc, "?"))
        print("%5d  %s" % (simulator.cycles, "".join(cells)))

    print("\nhalted; r1=%d r3=%d after %d cycles"
          % (simulator.state.R[1], simulator.state.R[3],
             simulator.cycles))


if __name__ == "__main__":
    main()
