#!/usr/bin/env python
"""Quickstart: load a shipped model, assemble a program, simulate it.

This walks the complete tool flow of the paper's Figure 5 on the small
``tinydsp`` model:

  machine description --(LISA compiler)--> model data base
  model data base --(generators)--> assembler / disassembler / simulators
  assembly --(assembler)--> object code
  object code --(simulation compiler)--> compiled simulation
"""

from repro import build_toolset, load_model

PROGRAM = """
        ; sum of the first N integers, the hard way
        .entry start
        .equ N, 10

start:  ldi r1, N          ; counter
        ldi r2, 0          ; accumulator
        ldi r3, -1
loop:   add r2, r2, r1     ; acc += counter
        add r1, r1, r3     ; counter -= 1
        brnz r1, loop
        st r2, 0           ; result -> dmem[0]
        halt
"""


def main():
    # 1. The LISA compiler turns the machine description into the model
    #    data base (shipped models are compiled on first use).
    model = load_model("tinydsp")
    print(model.describe())
    print()

    # 2. All target tools are generated from the model.
    tools = build_toolset(model)
    program = tools.assembler.assemble_text(PROGRAM, name="quickstart")
    print("assembled %d words, entry at 0x%x"
          % (program.word_count("pmem"), program.entry))
    print()

    print("disassembly (from the generated disassembler):")
    for line in tools.disassembler.disassemble_program(program):
        print("   ", line)
    print()

    # 3. Simulate: the interpretive simulator decodes on every fetch;
    #    the compiled simulator translates the program into a simulation
    #    table first and then runs it.
    for kind in ("interpretive", "compiled"):
        simulator = tools.new_simulator(kind)
        simulator.load_program(program)
        stats = simulator.run()
        print(
            "%-13s %4d cycles, %3d instructions, dmem[0] = %d"
            % (kind, stats.cycles, stats.instructions,
               simulator.state.dmem[0])
        )

    assert simulator.state.dmem[0] == sum(range(1, 11))
    print("\nresult verified: sum(1..10) == 55")


if __name__ == "__main__":
    main()
