#!/usr/bin/env python
"""Retargeting demo: describe a brand-new DSP, get its tools for free.

This is the paper's core promise.  We define "riscling" -- a small
accumulator machine that exists nowhere else -- as a LISA description
inside this script, and without writing a single line of
processor-specific tool code we obtain: an assembler, a disassembler,
an interpretive simulator, and a *compiled* simulator.

The model also shows the paper's non-orthogonal coding feature: the
``wide`` bit selects 8-bit vs 16-bit memory transfers for ``ldm``/``stm``
but selects post-increment for ``ldp`` -- one field, two meanings,
formally captured so the simulation compiler can specialise at
simulation-compile time.
"""

from repro import build_toolset, compile_lisa_source

RISCLING = r"""
MODEL riscling;

RESOURCE {
    PROGRAM_COUNTER uint32 PC;
    REGISTER int32 ACC;
    REGISTER uint16 PTR;
    REGISTER int X[4];
    MEMORY uint16 pmem[512];
    MEMORY int16 dmem[128];
    PIPELINE pipe = { FETCH; DECODE; EXEC };
}

CONFIG {
    WORDSIZE(16);
    PROGRAM_MEMORY(pmem);
    ROOT(insn);
    EXECUTE_STAGE(EXEC);
    BRANCH_POLICY(flush);
}

OPERATION xreg {
    DECLARE { LABEL n; }
    CODING { n[2] }
    SYNTAX { "x" n }
    EXPRESSION { X[n] }
}

OPERATION li IN pipe.EXEC {
    DECLARE { LABEL imm; }
    CODING { 0b0001 imm[11] }
    SYNTAX { "li" imm }
    BEHAVIOR { ACC = sext(imm, 11); }
}

OPERATION addx IN pipe.EXEC {
    DECLARE { GROUP src = { xreg }; }
    CODING { 0b0010 src 0bxxxxxxxxx }
    SYNTAX { "add" src }
    BEHAVIOR { ACC = ACC + src; }
}

OPERATION tox IN pipe.EXEC {
    DECLARE { GROUP dst = { xreg }; }
    CODING { 0b0011 dst 0bxxxxxxxxx }
    SYNTAX { "to" dst }
    BEHAVIOR { dst = ACC; }
}

OPERATION setp IN pipe.EXEC {
    DECLARE { LABEL addr; }
    CODING { 0b0100 addr[11] }
    SYNTAX { "setp" addr }
    BEHAVIOR { PTR = addr; }
}

OPERATION ldm IN pipe.EXEC {
    /* The 'wide' bit (root field) selects the transfer width here... */
    DECLARE { REFERENCE wide; }
    CODING { 0b0101 0b00000000000 }
    IF (wide == 0) {
        SYNTAX { "ldb" }
        BEHAVIOR { ACC = sext(dmem[zext(PTR, 7)] & 0xff, 8); }
    } ELSE {
        SYNTAX { "ldw" }
        BEHAVIOR { ACC = dmem[zext(PTR, 7)]; }
    }
}

OPERATION ldp IN pipe.EXEC {
    /* ...and post-increment here: one coding field, two meanings. */
    DECLARE { REFERENCE wide; }
    CODING { 0b0110 0b00000000000 }
    IF (wide == 0) {
        SYNTAX { "ldp" }
        BEHAVIOR { ACC = dmem[zext(PTR, 7)]; }
    } ELSE {
        SYNTAX { "ldp" "+" }
        BEHAVIOR {
            ACC = dmem[zext(PTR, 7)];
            PTR = PTR + 1;
        }
    }
}

OPERATION stm IN pipe.EXEC {
    CODING { 0b0111 0b00000000000 }
    SYNTAX { "stm" }
    BEHAVIOR {
        dmem[zext(PTR, 7)] = ACC;
        PTR = PTR + 1;
    }
}

OPERATION djnz IN pipe.EXEC {
    DECLARE { GROUP ctr = { xreg }; LABEL target; }
    CODING { 0b1000 ctr target[9] }
    SYNTAX { "djnz" ctr "," target }
    BEHAVIOR {
        ctr = ctr - 1;
        IF (ctr != 0) {
            PC = target;
            flush();
        }
    }
}

OPERATION halt_op IN pipe.EXEC {
    CODING { 0b1111 0b00000000000 }
    SYNTAX { "halt" }
    BEHAVIOR { halt(); }
}

OPERATION insn {
    DECLARE {
        GROUP op = { li || addx || tox || setp || ldm || ldp || stm
                     || djnz || halt_op };
        LABEL wide;
    }
    CODING { wide[1] op }
    SYNTAX { op }
    ACTIVATION { op }
}
"""

DEMO = """
        ; write 5 squares-by-addition into dmem[0..4]
        .entry start
start:  li 3
        to x1          ; outer counter... actually the value step
        li 5
        to x2          ; loop counter
        li 0
        setp 0
loop:   add x1         ; ACC += 3
        stm            ; store, PTR++
        djnz x2, loop
        halt
"""


def main():
    # One call: machine description in, model data base out.
    model = compile_lisa_source(RISCLING, "riscling.lisa")
    print(model.describe())
    print()

    tools = build_toolset(model)
    program = tools.assembler.assemble_text(DEMO, name="riscling-demo")

    print("generated disassembler output:")
    for line in tools.disassembler.disassemble_program(program):
        print("   ", line)
    print()

    # The non-orthogonal bit in action: same opcode, two mnemonics.
    for text in ("ldb", "ldw", "ldp", "ldp+"):
        word = tools.assembler.assemble_text(text).segments[0].words[0]
        print(
            "%-4s assembles to 0x%04x and disassembles back to %r"
            % (text, word, tools.disassembler.disassemble_word(word))
        )
    print()

    simulator = tools.new_simulator("compiled")
    simulator.load_program(program)
    stats = simulator.run()
    print(
        "ran %d cycles; dmem[0:5] = %s"
        % (stats.cycles, simulator.state.dmem[0:5])
    )
    assert simulator.state.dmem[0:5] == [3, 6, 9, 12, 15]
    print("retargeting worked: a compiled simulator for a DSP that did "
          "not exist ten seconds ago")


if __name__ == "__main__":
    main()
