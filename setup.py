"""Legacy setuptools shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on offline environments without the ``wheel``
package (pip falls back to ``setup.py develop`` when no build-system
table is declared).
"""

from setuptools import setup

setup()
