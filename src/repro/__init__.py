"""repro -- retargetable compiled simulation for DSPs.

Reproduction of "Retargeting of Compiled Simulators for Digital Signal
Processors Using a Machine Description Language" (Pees, Hoffmann, Meyr,
DATE 2000).

The package implements the paper's complete tool flow:

* a LISA-style machine description language front-end (:mod:`repro.lisa`),
* a behaviour-language compiler (:mod:`repro.behavior`),
* instruction-coding machinery with decode-tree generation
  (:mod:`repro.coding`),
* a cycle-accurate pipeline substrate (:mod:`repro.machine`),
* interpretive and compiled simulators (:mod:`repro.sim`),
* the simulation-compiler generator (:mod:`repro.simcc`),
* generated assembler / disassembler / loader (:mod:`repro.tools`),
* processor models and DSP applications (:mod:`repro.models`,
  :mod:`repro.apps`).

Quickstart::

    from repro import load_model, build_toolset

    model = load_model("tinydsp")
    tools = build_toolset(model)
    program = tools.assembler.assemble_text('''
        start:  ldi r1, 5
                ldi r2, 7
                add r3, r1, r2
                halt
    ''')
    sim = tools.new_simulator("compiled")
    sim.load_program(program)
    sim.run()
    assert sim.state.read_register("R", 3) == 12
"""

from repro.api import (
    Toolset,
    build_toolset,
    compile_lisa_file,
    compile_lisa_source,
    load_checkpoint,
    load_model,
    list_models,
)

__all__ = [
    "Toolset",
    "build_toolset",
    "compile_lisa_file",
    "compile_lisa_source",
    "load_checkpoint",
    "load_model",
    "list_models",
]

__version__ = "1.0.0"
