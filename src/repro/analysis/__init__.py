"""Simulation-compile-time program analysis.

Three passes over a (model, program) pair, sharing one report format:

1. **Effects** (:mod:`repro.analysis.effects`): per-instruction,
   per-stage read/write sets over architectural storage, resolved via
   the decode-time schedule and the behaviour code generator.
2. **CFG recovery** (:mod:`repro.analysis.cfg`): execute-packet
   boundaries, branches, delay slots, basic blocks; flags branches into
   packet middles/delay slots, out-of-segment targets, unreachable
   packets and dead writes.
3. **Hazards** (:mod:`repro.analysis.hazards`): slides the
   pipeline-depth window over the CFG and detects cross-cycle
   RAW/WAR/WAW conflicts, producing per-packet verdicts that gate
   static scheduling (``hazard_free`` / ``conflicting`` / ``unknown``).

:func:`analyze_program` runs all three; :func:`schedule_safety` is the
narrow entry point the simulation compiler uses to attach verdicts to
the simulation table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.cfg import ProgramCFG, build_cfg, check_cfg
from repro.analysis.effects import EffectsAnalyzer, packet_collisions
from repro.analysis.hazards import (
    CONFLICTING,
    HAZARD_FREE,
    UNKNOWN,
    analyze_hazards,
    hazard_free_region,
)
from repro.analysis.report import Finding, Report


@dataclass
class AnalysisResult:
    """The combined outcome of all analysis passes for one program."""

    report: Report
    safety: Dict[int, str]  # packet start pc -> hazard verdict
    cfg: ProgramCFG

    def verdict_counts(self):
        counts = {HAZARD_FREE: 0, CONFLICTING: 0, UNKNOWN: 0}
        for verdict in self.safety.values():
            counts[verdict] = counts.get(verdict, 0) + 1
        return counts

    def to_dict(self):
        payload = self.report.to_dict()
        payload["verdicts"] = self.verdict_counts()
        payload["safety"] = {
            "0x%x" % pc: verdict
            for pc, verdict in sorted(self.safety.items())
        }
        return payload


def analyze_program(model, program, packet_lint=True, ir_lint=True,
                    observer=None):
    """Run effects, CFG, hazard and IR analysis over one program.

    ``packet_lint`` additionally runs the VLIW write-collision check
    (the :mod:`repro.tools.lint` pass) into the same report;
    ``ir_lint`` runs the IR-level abstract-interpretation diagnostics
    (:func:`repro.analysis.absint.check_ir`: ``ir.trap`` /
    ``ir.dead-write``), which lowers the program through the simulation
    compiler.  ``observer`` records one phase span per pass and a
    ``hazard.verdict`` trace event per analysed packet.
    """
    from repro import obs as _obs

    report = Report()
    analyzer = EffectsAnalyzer(model)
    with _obs.span(observer, "analysis.cfg"):
        cfg = build_cfg(model, program, analyzer=analyzer)
    if packet_lint and model.is_vliw:
        with _obs.span(observer, "analysis.lint", packets=len(cfg.order)):
            for pc in cfg.order:
                packet = cfg.packets[pc]
                if packet.extent > 1:
                    packet_collisions(packet.members, report=report,
                                      packet_pc=packet.pc)
    check_cfg(cfg, report)
    with _obs.span(observer, "analysis.hazards"):
        safety = analyze_hazards(cfg, report=report)
    if ir_lint:
        from repro.analysis import absint

        with _obs.span(observer, "analysis.ir"):
            absint.check_ir(model, program, report)
    if observer is not None:
        for pc, verdict in sorted(safety.items()):
            observer.on_hazard_verdict(pc, verdict)
    return AnalysisResult(report=report, safety=safety, cfg=cfg)


def schedule_safety(model, program):
    """Hazard verdicts per packet start, as stored on simulation tables.

    This is the analysis the static scheduler consumes; findings are
    not collected (run :func:`analyze_program` for the full report).
    """
    cfg = build_cfg(model, program)
    return analyze_hazards(cfg)


__all__ = [
    "AnalysisResult",
    "EffectsAnalyzer",
    "Finding",
    "Report",
    "analyze_program",
    "build_cfg",
    "check_cfg",
    "schedule_safety",
    "hazard_free_region",
    "HAZARD_FREE",
    "CONFLICTING",
    "UNKNOWN",
]
