"""Abstract interpretation over SimIR: intervals and known bits.

The fast paths of this code base rest on facts about run-time values:
the native backend may only evaluate a packet in ``int64_t`` arithmetic
when every intermediate value provably fits, the self-modify guard only
needs its fetch interposer when a packet can actually store into
program memory, and a store's canonicalisation mask can be dropped when
the stored value is provably already canonical.  Before this module
those facts were computed by private, duplicated walkers (the old
``_fits``/``_bit_bound`` analysis in :mod:`repro.simcc.native.cgen`) or
simply assumed (the guard instrumented every program).  This module is
the one shared analysis they all consume.

Two abstract domains, combined as a reduced product:

* **Intervals**: every value is tracked as ``[lo, hi]`` with ``None``
  standing for an unbounded end.  Transfer functions mirror the
  concrete semantics of :mod:`repro.simcc.ir` (C-style truncating
  division, arithmetic shifts, 0/1 comparison results).
* **Known bits**: for provably non-negative values, a superset mask of
  the bits that may be set.  ``&``/``|``/``^``/shifts/``zext`` refine
  it, and the mask sharpens the interval upper bound -- e.g.
  ``(a & 0xF0) | (b & 0x0F)`` proves ``[0, 255]`` even when ``a`` and
  ``b`` are unbounded locals, which the interval domain alone cannot.

:func:`analyze_packet` runs both domains over one packet's per-stage IR
and produces a :class:`PacketProof`: the nativisability verdict (the
exact admission rule the old cgen analysis implemented), resource
read/write sets, the set of resources reachable by ``WriteElem`` stores
(the guard-elision fact), per-resource intervals of every stored value
(validated against concrete execution by the test suite), and any
provably-trapping operations (surfaced by ``repro-lint`` as ``IR002``).
Proofs serialise to marshal-compatible payloads and persist with the
cached table (:mod:`repro.simcc.cache`, payload format 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.simcc import ir

#: Native values must stay within [-(2**63 - 1), 2**63 - 1]; INT64_MIN
#: is excluded so ``-x`` and ``|x|`` are always representable.
SAFE_HI = (1 << 63) - 1
SAFE_LO = -SAFE_HI

#: Pipeline-control methods the native backend can map to C helpers.
CONTROL_METHODS = ("request_flush", "request_stall", "request_halt")

_BIT_CAP = 70  # bit-width cap for bitwise-op fallback bounds


# ---------------------------------------------------------------------------
# The abstract value: interval x known bits
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: ``[lo, hi]`` interval plus known bits.

    ``lo``/``hi`` are ``None`` for an unbounded end.  ``bits`` is a
    superset mask of the bits that may be set; it is only meaningful
    (non-None) when the value is provably non-negative.
    """

    lo: Optional[int]
    hi: Optional[int]
    bits: Optional[int] = None

    @property
    def bounded(self):
        return self.lo is not None and self.hi is not None

    def fits_int64(self):
        return (self.bounded
                and self.lo >= SAFE_LO and self.hi <= SAFE_HI)

    def within(self, lo, hi):
        return self.bounded and self.lo >= lo and self.hi <= hi

    def is_const(self, value):
        return self.lo == self.hi == value


def make(lo, hi, bits=None):
    """Construct a reduced :class:`AbsVal` (each domain refines the
    other: a bit mask caps the upper bound, a non-negative bounded
    interval induces a mask)."""
    if lo is not None and hi is not None and lo > hi:
        lo, hi = hi, lo  # defensive: callers pass corner sets
    if lo is None or lo < 0:
        bits = None
    else:
        if hi is not None:
            derived = (1 << hi.bit_length()) - 1
            bits = derived if bits is None else (bits & derived)
        if bits is not None:
            if hi is None or hi > bits:
                hi = bits
    return AbsVal(lo, hi, bits)


TOP = AbsVal(None, None)


def const(value):
    return make(value, value, value if value >= 0 else None)


def of_width(width, signed):
    lo, hi = ir._range_of(width, signed)
    return make(lo, hi)


def join(a, b):
    """Least upper bound of two abstract values."""
    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    bits = None
    if a.bits is not None and b.bits is not None:
        bits = a.bits | b.bits
    return make(lo, hi, bits)


def _corners(a, b, fn):
    if not (a.bounded and b.bounded):
        return TOP
    values = [fn(x, y) for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    return make(min(values), max(values))


def _bit_fallback(*vals):
    """The bitwise-operator fallback bound: a two's-complement width
    covering every operand corner (``a & b`` etc. never need more bits
    than the wider operand).  Mirrors the former cgen ``_bit_bound``."""
    bits = 1
    for val in vals:
        if not val.bounded:
            return TOP
        for value in (val.lo, val.hi):
            bits = max(bits, value.bit_length() + 1)
    lo, hi = ir._range_of(min(bits, _BIT_CAP), True)
    return make(lo, hi)


def transfer_unary(op, operand):
    if op == "-":
        if not operand.bounded:
            return TOP
        return make(-operand.hi, -operand.lo)
    if op == "~":
        if not operand.bounded:
            return TOP
        return make(-operand.hi - 1, -operand.lo - 1)
    return make(0, 1)  # "!"


def transfer_alu(op, a, b):
    """Abstract evaluation of one binary ALU node."""
    if op in ir._CMP_OPS or op in ir._BOOL_OPS:
        return make(0, 1)
    if op == "+":
        if not (a.bounded and b.bounded):
            return TOP
        return make(a.lo + b.lo, a.hi + b.hi)
    if op == "-":
        if not (a.bounded and b.bounded):
            return TOP
        return make(a.lo - b.hi, a.hi - b.lo)
    if op == "*":
        return _corners(a, b, lambda x, y: x * y)
    if op == "&":
        out = _bit_fallback(a, b)
        if a.bits is not None and b.bits is not None:
            return make(0, None, a.bits & b.bits)
        if a.bits is not None:
            return make(0, None, a.bits)
        if b.bits is not None:
            return make(0, None, b.bits)
        return out
    if op in ("|", "^"):
        if a.bits is not None and b.bits is not None:
            return make(0, None, a.bits | b.bits)
        return _bit_fallback(a, b)
    if op == "<<":
        if not (a.bounded and b.bounded):
            return TOP
        if b.hi > 64 and not a.is_const(0):
            return TOP  # rejected: the count may exceed what C handles
        b_min, b_max = max(b.lo, 0), max(min(b.hi, 64), 0)
        values = [x << y for x in (a.lo, a.hi) for y in (b_min, b_max)]
        bits = None
        if a.bits is not None and b.lo == b.hi and b.lo >= 0:
            bits = a.bits << b.lo
        return make(min(values), max(values), bits)
    if op == ">>":
        if not (a.bounded and b.bounded):
            return TOP
        b_min = max(b.lo, 0)
        b_max = min(max(b.hi, 0), _BIT_CAP)
        values = [x >> y for x in (a.lo, a.hi) for y in (b_min, b_max)]
        bits = None
        if a.bits is not None and b.lo == b.hi and b.lo >= 0:
            bits = a.bits >> min(b.lo, _BIT_CAP)
        return make(min(values), max(values), bits)
    if op == "/":
        if not a.bounded:
            return TOP
        magnitude = max(abs(a.lo), abs(a.hi))
        return make(-magnitude, magnitude)
    if op == "%":
        if not a.bounded:
            return TOP
        magnitude = max(abs(a.lo), abs(a.hi))
        if b.bounded:
            magnitude = min(magnitude, max(abs(b.lo), abs(b.hi)))
        return make(-magnitude, magnitude)
    return TOP


# ---------------------------------------------------------------------------
# Per-packet analysis
# ---------------------------------------------------------------------------


@dataclass
class PacketProof:
    """Per-packet facts proven by abstract interpretation.

    ``native`` is the int64-safety verdict the native backend gates on
    (``reason`` names the first failure).  ``reads``/``writes`` are the
    resource names touched; ``elem_stores`` the resources reachable by
    an element store (the guard-elision fact -- a program none of whose
    packets can ``WriteElem`` into program memory cannot self-modify
    from generated code).  ``cells`` maps each written resource to the
    joined ``(lo, hi)`` interval of every value stored into it (``None``
    ends mean unbounded); concrete runs must stay inside it.  ``traps``
    lists provably-faulting operations, ``raw_stores`` the ids of write
    ops whose value is provably canonical already (render-time only,
    not persisted).
    """

    native: bool
    reason: str = ""
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    elem_stores: FrozenSet[str] = frozenset()
    cells: Dict[str, Tuple[Optional[int], Optional[int]]] = \
        field(default_factory=dict)
    traps: Tuple[str, ...] = ()
    has_loop: bool = False
    raw_stores: FrozenSet[int] = field(default=frozenset(), repr=False,
                                       compare=False)

    def to_payload(self):
        """Marshal-compatible rendering (persisted with cached tables)."""
        return (
            1 if self.native else 0,
            self.reason,
            tuple(sorted(self.reads)),
            tuple(sorted(self.writes)),
            tuple(sorted(self.elem_stores)),
            tuple(sorted(
                (name, lo, hi) for name, (lo, hi) in self.cells.items()
            )),
            tuple(self.traps),
            1 if self.has_loop else 0,
        )

    @classmethod
    def from_payload(cls, payload):
        native, reason, reads, writes, stores, cells, traps, loop = payload
        return cls(
            native=bool(native),
            reason=str(reason),
            reads=frozenset(reads),
            writes=frozenset(writes),
            elem_stores=frozenset(stores),
            cells={str(name): (lo, hi) for name, lo, hi in cells},
            traps=tuple(traps),
            has_loop=bool(loop),
        )


class _Analysis:
    """Mutable accumulator threaded through one packet walk."""

    def __init__(self, model, pmem_name):
        self.model = model
        self.pmem_name = pmem_name
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.elem_stores: Set[str] = set()
        self.cells: Dict[str, AbsVal] = {}
        self.traps: List[str] = []
        self.raw_stores: Set[int] = set()
        self.has_loop = False
        self.failure: Optional[str] = None

    def fail(self, reason):
        if self.failure is None:
            self.failure = reason

    def trap(self, reason):
        self.traps.append(reason)

    def record_store(self, resource, stored):
        seen = self.cells.get(resource)
        self.cells[resource] = stored if seen is None else join(seen, stored)


def _resource_length(model, name):
    reg = model.registers.get(name)
    if reg is not None:
        return reg.count
    mem = model.memories.get(name)
    if mem is not None:
        return mem.size
    return None


def _require_fits(fact, acc):
    """Every intermediate value of a native packet must stay inside
    signed 64-bit; reject otherwise (soundness of C evaluation)."""
    if not fact.fits_int64():
        if fact.bounded:
            acc.fail("range [%d, %d] exceeds int64" % (fact.lo, fact.hi))
        else:
            acc.fail("value range is unbounded")
    return fact


def _eval_value(value, env, acc):
    """Abstract evaluation of one value node; records reads, native
    failures and provable traps on ``acc``."""
    model = acc.model
    if isinstance(value, ir.Const):
        return _require_fits(const(value.value), acc)
    if isinstance(value, ir.ReadReg):
        dtype = ir._resource_dtype(model, value.name)
        if dtype is None:
            acc.fail("unknown resource %r" % value.name)
            return TOP
        acc.reads.add(value.name)
        return of_width(dtype.width, dtype.signed)
    if isinstance(value, ir.ReadElem):
        dtype = ir._resource_dtype(model, value.resource)
        if dtype is None:
            acc.fail("unknown resource %r" % value.resource)
            return TOP
        acc.reads.add(value.resource)
        index = _eval_value(value.index, env, acc)
        _check_index(value.resource, index, acc)
        return of_width(dtype.width, dtype.signed)
    if isinstance(value, ir.ReadLocal):
        fact = env.get(value.name)
        if fact is None:
            # Well-formed IR defines locals before use (the verifier
            # enforces it); an unknown local is simply unbounded here.
            acc.fail("local %r read before assignment" % value.name)
            return TOP
        return fact
    if isinstance(value, ir.Unary):
        operand = _eval_value(value.operand, env, acc)
        return _require_fits(transfer_unary(value.op, operand), acc)
    if isinstance(value, ir.Alu):
        return _eval_alu(value, env, acc)
    if isinstance(value, ir.Intrinsic):
        return _eval_intrinsic(value, env, acc)
    if isinstance(value, ir.Select):
        _eval_value(value.cond, env, acc)
        if_true = _eval_value(value.if_true, env, acc)
        if_false = _eval_value(value.if_false, env, acc)
        return join(if_true, if_false)
    acc.fail("unsupported value node %r" % type(value).__name__)
    return TOP


def _check_index(resource, index, acc):
    length = _resource_length(acc.model, resource)
    if length is None or not index.bounded:
        return
    # Python list indexing wraps once: valid indices are [-length, length).
    if index.hi < -length or index.lo >= length:
        acc.trap(
            "index [%d, %d] is always outside %s[%d]"
            % (index.lo, index.hi, resource, length)
        )


def _eval_alu(value, env, acc):
    a = _eval_value(value.left, env, acc)
    b = _eval_value(value.right, env, acc)
    op = value.op
    if op not in ir._ALU_OPS:
        acc.fail("unsupported ALU op %r" % op)
        return TOP
    if op in ("/", "%") and b.is_const(0):
        acc.trap("division by a divisor that is always zero")
    if op in ("<<", ">>") and b.hi is not None and b.hi < 0:
        acc.trap("shift count is always negative")
    if op == "<<" and b.bounded and b.hi > 64 and not a.is_const(0):
        acc.fail("shift count may exceed 64")
        return TOP
    fact = transfer_alu(op, a, b)
    return _require_fits(fact, acc)


def _eval_intrinsic(value, env, acc):
    args = [_eval_value(arg, env, acc) for arg in value.args]
    name = value.name
    if name in ("sext", "zext", "sat"):
        if len(value.args) != 2 or not isinstance(value.args[1], ir.Const):
            acc.fail("%s needs a constant width" % name)
            return TOP
        width = value.args[1].value
        if not 1 <= width <= 64:
            acc.fail("%s width %r out of range" % (name, width))
            return TOP
        if name == "zext":
            out = of_width(width, False)
        else:
            out = of_width(width, True)
        # A no-op extension passes its (possibly tighter) input through.
        if args[0].within(out.lo, out.hi):
            return args[0]
        return out
    if name == "abs" and len(value.args) == 1:
        operand = args[0]
        if not operand.bounded:
            return make(0, None)
        lo = (0 if operand.lo <= 0 <= operand.hi
              else min(abs(operand.lo), abs(operand.hi)))
        return make(lo, max(abs(operand.lo), abs(operand.hi)))
    if name in ("min", "max") and len(value.args) == 2:
        a, b = args
        if not (a.bounded and b.bounded):
            return TOP
        if name == "min":
            return make(min(a.lo, b.lo), min(a.hi, b.hi))
        return make(max(a.lo, b.lo), max(a.hi, b.hi))
    acc.fail("unsupported intrinsic %r" % name)
    return TOP


def _stored_fact(op, value_fact):
    """The abstract value a write actually stores: canonicalisation
    wraps out-of-range values onto the full declared range."""
    if op.width is None:
        return value_fact
    lo, hi = ir._range_of(op.width, op.signed)
    if value_fact.within(lo, hi):
        return value_fact
    return make(lo, hi)


def _exec_ops(ops, env, acc):
    """Abstract execution of one micro-op sequence, updating ``env``
    (local name -> :class:`AbsVal`) in place."""
    for op in ops:
        if isinstance(op, ir.WriteReg):
            if ir._resource_dtype(acc.model, op.name) is None:
                acc.fail("unknown resource %r" % op.name)
                continue
            fact = _eval_value(op.value, env, acc)
            acc.writes.add(op.name)
            stored = _stored_fact(op, fact)
            if op.width is not None and stored is fact:
                acc.raw_stores.add(id(op))
            acc.record_store(op.name, stored)
        elif isinstance(op, ir.WriteElem):
            if op.resource == acc.pmem_name:
                acc.fail(
                    "writes program memory (guard must observe the store)"
                )
            if ir._resource_dtype(acc.model, op.resource) is None:
                acc.fail("unknown resource %r" % op.resource)
                continue
            index = _eval_value(op.index, env, acc)
            _check_index(op.resource, index, acc)
            fact = _eval_value(op.value, env, acc)
            acc.writes.add(op.resource)
            acc.elem_stores.add(op.resource)
            stored = _stored_fact(op, fact)
            if op.width is not None and stored is fact:
                acc.raw_stores.add(id(op))
            acc.record_store(op.resource, stored)
        elif isinstance(op, ir.WriteLocal):
            env[op.name] = _eval_value(op.value, env, acc)
        elif isinstance(op, ir.Control):
            if op.method not in CONTROL_METHODS:
                acc.fail("unsupported control %r" % op.method)
            for arg in op.args:
                _eval_value(arg, env, acc)
        elif isinstance(op, ir.Guard):
            _eval_value(op.cond, env, acc)
            then_env = dict(env)
            else_env = dict(env)
            _exec_ops(op.then_ops, then_env, acc)
            _exec_ops(op.else_ops, else_env, acc)
            merged = {}
            for name in then_env:
                if name in else_env:
                    merged[name] = join(then_env[name], else_env[name])
            env.clear()
            env.update(merged)
        elif isinstance(op, ir.Loop):
            acc.has_loop = True
            acc.fail("contains a run-time loop")
            _eval_value(op.cond, env, acc)
            _widen_loop_body(op.body, env, acc)
        elif isinstance(op, ir.Eval):
            _eval_value(op.value, env, acc)
        else:
            acc.fail("unsupported op %r" % type(op).__name__)


def _widen_loop_body(body, env, acc):
    """Sound summary of a loop body without iterating: everything the
    body may write goes to TOP, reads/stores are still recorded."""
    for op in ir.walk_ops(body):
        if isinstance(op, ir.WriteLocal):
            env[op.name] = TOP
        elif isinstance(op, ir.WriteReg):
            acc.writes.add(op.name)
            acc.record_store(op.name, TOP)
        elif isinstance(op, ir.WriteElem):
            if op.resource == acc.pmem_name:
                acc.fail(
                    "writes program memory (guard must observe the store)"
                )
            acc.writes.add(op.resource)
            acc.elem_stores.add(op.resource)
            acc.record_store(op.resource, TOP)
        for value in ir.op_values(op):
            for node in ir.walk_values(value):
                if isinstance(node, ir.ReadReg):
                    acc.reads.add(node.name)
                elif isinstance(node, ir.ReadElem):
                    acc.reads.add(node.resource)


def analyze_packet(funcs_by_stage, model, pmem_name):
    """Abstractly interpret one packet's per-stage IR functions.

    Returns a :class:`PacketProof`.  The nativisability verdict
    reproduces the admission rule of the retired cgen-private analysis
    (every intermediate value provably within signed 64-bit, no run-time
    loops, no program-memory stores, only mappable control requests) --
    with the known-bits refinement it can only admit *more* packets,
    never fewer.
    """
    acc = _Analysis(model, pmem_name)
    for stage_funcs in funcs_by_stage:
        for func in stage_funcs:
            _exec_ops(func.ops, {}, acc)
    return PacketProof(
        native=acc.failure is None,
        reason=acc.failure or "",
        reads=frozenset(acc.reads),
        writes=frozenset(acc.writes),
        elem_stores=frozenset(acc.elem_stores),
        cells={
            name: (fact.lo, fact.hi)
            for name, fact in sorted(acc.cells.items())
        },
        traps=tuple(acc.traps),
        has_loop=acc.has_loop,
        raw_stores=frozenset(acc.raw_stores),
    )


# ---------------------------------------------------------------------------
# Whole-table helpers (proof persistence consumers)
# ---------------------------------------------------------------------------


def analyze_table_ir(ir_by_stage, model):
    """Per-packet proofs for a table's lowered IR (``{pc: proof}``)."""
    pmem_name = model.config.program_memory
    return {
        pc: analyze_packet(funcs_by_stage, model, pmem_name)
        for pc, funcs_by_stage in ir_by_stage.items()
    }


def table_proofs(table, model):
    """The per-packet proofs behind a bound simulation table.

    Prefers proofs persisted with the (cached) portable table; falls
    back to analysing the table's lowered IR; returns ``None`` when the
    table carries neither (hand-built or legacy tables have no proof,
    so consumers must stay conservative).
    """
    proofs = getattr(table, "proofs", None)
    if proofs is not None:
        return proofs
    ir_by_stage = getattr(table, "ir_by_stage", None)
    if ir_by_stage:
        proofs = analyze_table_ir(ir_by_stage, model)
        try:
            table.proofs = proofs  # memoise on the table
        except AttributeError:
            pass
        return proofs
    return None


def table_store_resources(table, model):
    """Resources any packet may element-store into, or ``None`` when no
    proof is available (the guard must then assume the worst)."""
    proofs = table_proofs(table, model)
    if proofs is None:
        return None
    targets = set()
    for proof in proofs.values():
        targets |= proof.elem_stores
    return targets


# ---------------------------------------------------------------------------
# IR-level lint diagnostics (repro-lint)
# ---------------------------------------------------------------------------


def surviving_dead_writes(func):
    """Descriptions of dead writes DCE had to keep for trap parity.

    Re-runs the deadness scan of
    :func:`repro.simcc.ir.eliminate_dead_writes` *without* its trap-free
    gate and reports only the writes that gate blocked: their stored
    value is never observed, but evaluating it may fault, so the pass
    could not remove them.  Worth surfacing -- the dead computation
    usually hides a behaviour bug.
    """
    found = []
    ops = list(func.ops)
    for i, op in enumerate(ops):
        cell = None
        local_name = None
        if isinstance(op, (ir.WriteReg, ir.WriteElem)):
            cell = ir.write_cell(op)
            if cell is None or cell[1] == "*":
                continue
            trap_kept = not ir._trap_free(op.value) or (
                isinstance(op, ir.WriteElem)
                and not ir._trap_free(op.index)
            )
        elif isinstance(op, ir.WriteLocal):
            local_name = op.name
            trap_kept = not ir._trap_free(op.value)
        else:
            continue
        if not trap_kept:
            continue  # trap-free and live, or already removed by DCE
        dead = None
        for later in ops[i + 1:]:
            later_cells, later_locals = ir._op_reads(later)
            if cell is not None and any(
                ir._cells_touch(cell, read) for read in later_cells
            ):
                dead = False
                break
            if local_name is not None and local_name in later_locals:
                dead = False
                break
            if isinstance(later, ir.Control):
                if cell is not None:
                    dead = False
                    break
                continue
            if cell is not None \
                    and isinstance(later, (ir.WriteReg, ir.WriteElem)) \
                    and ir.write_cell(later) == cell:
                dead = True
                break
            if local_name is not None \
                    and isinstance(later, ir.WriteLocal) \
                    and later.name == local_name:
                dead = True
                break
        if dead is None:
            dead = local_name is not None
        if dead:
            target = cell[0] if cell is not None else local_name
            found.append(
                "dead write to %s survives elimination (its value may "
                "fault, so removing it would change trap behaviour)"
                % target
            )
    return found


def _insn_pc(name):
    # Lowered function names are "insn_%x_stage_%d" (portable tables).
    try:
        return int(name.split("_")[1], 16)
    except (IndexError, ValueError):
        return None


def check_ir(model, program, report, observer=None):
    """IR-level diagnostics over one program's lowered IR.

    Adds ``ir.trap`` warnings (IR002) for operations the abstract
    interpreter proves always fault, and ``ir.dead-write`` notes
    (IR003) for dead writes that survived elimination only for trap
    parity.  Lowers the program through the normal portable-table
    pipeline, so what is linted is exactly what executes.
    """
    from repro.simcc.portable import build_portable_table
    from repro.support.errors import ReproError

    try:
        table = build_portable_table(
            model, program, level="instantiated", observer=observer
        )
    except ReproError:
        # The program cannot be fully lowered (undecodable words,
        # behaviour outside the lowering subset, ...).  The CFG pass
        # already reports decode problems with their own findings, so
        # the IR-level lint simply has nothing to say here.
        return report
    pmem_name = model.config.program_memory
    by_pc = {}
    for func in table.functions:
        pc = _insn_pc(func.name)
        if pc is not None:
            by_pc.setdefault(pc, []).append(func)
    for pc in sorted(by_pc):
        funcs = by_pc[pc]
        proof = analyze_packet([funcs], model, pmem_name)
        for trap in proof.traps:
            report.add("warning", pc, "ir.trap",
                       "operation provably traps: %s" % trap)
        for func in funcs:
            for description in surviving_dead_writes(func):
                report.add("note", pc, "ir.dead-write", description)
    return report


def proofs_to_payload(proofs):
    return {pc: proof.to_payload() for pc, proof in proofs.items()}


def proofs_from_payload(payload):
    if payload is None:
        return None
    return {
        int(pc): PacketProof.from_payload(proof)
        for pc, proof in payload.items()
    }


__all__ = [
    "SAFE_HI",
    "SAFE_LO",
    "CONTROL_METHODS",
    "AbsVal",
    "TOP",
    "make",
    "const",
    "of_width",
    "join",
    "transfer_unary",
    "transfer_alu",
    "PacketProof",
    "analyze_packet",
    "analyze_table_ir",
    "check_ir",
    "surviving_dead_writes",
    "table_proofs",
    "table_store_resources",
    "proofs_to_payload",
    "proofs_from_payload",
]
