"""Control-flow recovery over assembled programs.

Decodes every program segment once and recovers the structure static
scheduling depends on: canonical execute-packet boundaries, branch
instructions with their resolution stages and constant targets,
delay-slot extents, and basic blocks.  On top of that structure the
checker flags the control-flow defects that make a program unsafe to
schedule statically (or plain wrong):

* branches into the middle of an execute packet (``cfg.packet-middle``,
  error: the fetched packet disagrees with the assembled one),
* branch targets outside every program segment (``cfg.out-of-segment``,
  error),
* branches into another branch's delay slots (``cfg.delay-slot``,
  warning: entry mid-delay-sequence executes a partial delay window),
* unreachable packets (``cfg.unreachable``, note),
* dead writes -- a cell written twice in a basic block with no
  intervening read (``cfg.dead-write``, note).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.effects import EffectsAnalyzer, cells_collide
from repro.coding.decoder import InstructionDecoder
from repro.machine.packets import packet_extent
from repro.support.errors import DecodeError


@dataclass(frozen=True)
class Branch:
    """One PC-writing instruction inside a packet."""

    address: int  # member address of the branching instruction
    stage: int  # pipeline stage index in which the PC write executes
    targets: Tuple[int, ...]  # constant targets (deduplicated, sorted)
    unknown_target: bool  # at least one PC write has a computed target
    conditional: bool  # every PC write sits under a run-time condition


@dataclass
class PacketNode:
    """One canonical execute packet (packet boundaries scanned from the
    segment base, the decomposition the fetch stream actually sees)."""

    pc: int
    extent: int
    members: tuple  # ((address, InstructionEffects), ...) decoded members
    undecoded: tuple  # member addresses that failed to decode (data?)
    branches: Tuple[Branch, ...]
    stage_reads: tuple  # per-stage merged read frozensets
    stage_writes: tuple  # per-stage merged write frozensets
    has_control: bool
    truncated: bool

    @property
    def end(self):
        return self.pc + self.extent


@dataclass
class ProgramCFG:
    """The recovered control-flow structure of one program."""

    model: object
    packets: Dict[int, PacketNode]  # canonical packet start -> node
    order: tuple  # canonical packet starts in address order
    segments: tuple  # ((base, limit), ...) program-memory segments
    entry: int

    @property
    def packet_starts(self):
        return frozenset(self.packets)

    def in_program(self, address):
        return any(base <= address < limit for base, limit in self.segments)

    def delay_cycles(self, branch):
        """Fetch cycles between issuing ``branch`` and the redirect
        taking effect: the delay-slot window in fetches."""
        if self.model.config.branch_policy == "flush":
            # The window is squashed when the branch resolves; there are
            # no architectural delay slots.
            return 0
        return branch.stage

    def delay_slot_addresses(self, packet, branch):
        """Addresses fetched into ``branch``'s delay-slot window."""
        addresses = []
        pc = packet.end
        for _ in range(self.delay_cycles(branch)):
            node = self.packets.get(pc)
            if node is None:
                break
            addresses.extend(range(node.pc, node.end))
            pc = node.end
        return addresses

    def basic_blocks(self):
        """Packets grouped into basic blocks: (leader pc, [PacketNode])."""
        leaders = set()
        for base, _ in self.segments:
            if base in self.packets:
                leaders.add(base)
        if self.entry in self.packets:
            leaders.add(self.entry)
        for packet in self.packets.values():
            for branch in packet.branches:
                for target in branch.targets:
                    if target in self.packets:
                        leaders.add(target)
                # Control transfers after the delay window; the packet
                # that follows it starts a new block.
                successor = packet.end
                for _ in range(self.delay_cycles(branch)):
                    node = self.packets.get(successor)
                    if node is None:
                        break
                    successor = node.end
                if successor in self.packets:
                    leaders.add(successor)
        blocks = []
        current = None
        for pc in self.order:
            if pc in leaders or current is None:
                current = (pc, [])
                blocks.append(current)
            current[1].append(self.packets[pc])
        return blocks


def build_cfg(model, program, analyzer=None):
    """Decode ``program`` and recover its :class:`ProgramCFG`."""
    if analyzer is None:
        analyzer = EffectsAnalyzer(model)
    decoder = InstructionDecoder(model)
    depth = model.pipeline.depth
    pc_name = model.pc_name

    packets = {}
    order = []
    segments = []
    for segment in program.segments_in(model.config.program_memory):
        words = segment.words
        base = segment.base
        limit = base + len(words)
        segments.append((base, limit))

        def read_word(address, _words=words, _base=base):
            return _words[address - _base]

        pc = base
        while pc < limit:
            extent = packet_extent(model, read_word, pc, limit)
            members = []
            undecoded = []
            branches = []
            truncated = False
            has_control = False
            for address in range(pc, pc + extent):
                try:
                    node = decoder.decode(read_word(address),
                                          address=address)
                except DecodeError:
                    undecoded.append(address)
                    continue
                effects = analyzer.effects_of(node)
                members.append((address, effects))
                truncated = truncated or effects.truncated
                has_control = has_control or effects.has_control
                branches.extend(
                    _branches_of(address, effects, pc_name)
                )
            stage_reads = []
            stage_writes = []
            for stage in range(depth):
                reads = set()
                writes = set()
                for _, effects in members:
                    reads |= effects.stages[stage].reads
                    writes |= effects.stages[stage].writes
                stage_reads.append(frozenset(reads))
                stage_writes.append(frozenset(writes))
            packets[pc] = PacketNode(
                pc=pc,
                extent=extent,
                members=tuple(members),
                undecoded=tuple(undecoded),
                branches=tuple(branches),
                stage_reads=tuple(stage_reads),
                stage_writes=tuple(stage_writes),
                has_control=has_control,
                truncated=truncated,
            )
            order.append(pc)
            pc += extent

    return ProgramCFG(
        model=model,
        packets=packets,
        order=tuple(order),
        segments=tuple(segments),
        entry=program.entry,
    )


def _branches_of(address, effects, pc_name):
    writes = effects.pc_write_stages()
    if not writes:
        return []
    by_stage = {}
    for stage, pc_write in writes:
        by_stage.setdefault(stage, []).append(pc_write)
    branches = []
    for stage, pc_writes in sorted(by_stage.items()):
        targets = sorted({
            w.target for w in pc_writes if w.target is not None
        })
        branches.append(Branch(
            address=address,
            stage=stage,
            targets=tuple(targets),
            unknown_target=any(w.target is None for w in pc_writes),
            conditional=all(w.conditional for w in pc_writes),
        ))
    return branches


# -- checks ------------------------------------------------------------------


def check_cfg(cfg, report):
    """Run the control-flow checks, recording findings on ``report``."""
    _check_branch_targets(cfg, report)
    _check_reachability(cfg, report)
    _check_dead_writes(cfg, report)


def _check_branch_targets(cfg, report):
    delay_spans = {}  # address -> branch address whose delay window holds it
    for packet in cfg.packets.values():
        for branch in packet.branches:
            for address in cfg.delay_slot_addresses(packet, branch):
                delay_spans.setdefault(address, branch.address)
    for packet in cfg.packets.values():
        for branch in packet.branches:
            for target in branch.targets:
                if not cfg.in_program(target):
                    report.add(
                        "error", branch.address, "cfg.out-of-segment",
                        "branch at 0x%x targets 0x%x, outside every "
                        "program segment" % (branch.address, target),
                    )
                    continue
                if target not in cfg.packets:
                    report.add(
                        "error", branch.address, "cfg.packet-middle",
                        "branch at 0x%x targets 0x%x, the middle of the "
                        "execute packet starting at 0x%x"
                        % (branch.address, target,
                           _enclosing_packet(cfg, target)),
                    )
                    continue
                owner = delay_spans.get(target)
                if owner is not None and owner != branch.address:
                    report.add(
                        "warning", branch.address, "cfg.delay-slot",
                        "branch at 0x%x targets 0x%x, inside the delay "
                        "slots of the branch at 0x%x"
                        % (branch.address, target, owner),
                    )


def _enclosing_packet(cfg, address):
    for packet in cfg.packets.values():
        if packet.pc <= address < packet.end:
            return packet.pc
    return address


def _check_reachability(cfg, report):
    if not cfg.packets:
        return
    # Architectural successors: fall-through (always, unless behind an
    # unconditional branch whose delay window has elapsed) plus constant
    # branch targets.  Unknown targets make everything reachable.
    if any(
        branch.unknown_target
        for packet in cfg.packets.values()
        for branch in packet.branches
    ):
        return
    reachable = set()
    worklist = []
    start = cfg.entry if cfg.entry in cfg.packets else (
        cfg.order[0] if cfg.order else None
    )
    if start is None:
        return
    worklist.append(start)
    while worklist:
        pc = worklist.pop()
        if pc in reachable or pc not in cfg.packets:
            continue
        reachable.add(pc)
        packet = cfg.packets[pc]
        for branch in packet.branches:
            for target in branch.targets:
                worklist.append(target)
        if _falls_through(cfg, packet):
            worklist.append(packet.end)
        else:
            # Delay slots still execute before the redirect lands.
            successor = packet.end
            for _ in range(max(
                (cfg.delay_cycles(branch)
                 for branch in packet.branches
                 if not branch.conditional and branch.targets),
                default=0,
            )):
                worklist.append(successor)
                node = cfg.packets.get(successor)
                if node is None:
                    break
                successor = node.end
    for pc in cfg.order:
        if pc not in reachable and cfg.packets[pc].members:
            report.add(
                "note", pc, "cfg.unreachable",
                "packet at 0x%x is unreachable from the entry point"
                % pc,
            )


def _falls_through(cfg, packet):
    """Whether execution can continue past ``packet`` sequentially
    (beyond any delay slots)."""
    for branch in packet.branches:
        if not branch.conditional and (branch.targets
                                       or branch.unknown_target):
            return False
    return True


def _check_dead_writes(cfg, report):
    for _, block in cfg.basic_blocks():
        pending = {}  # exact cell -> address of unread write
        for packet in block:
            reads = set()
            for _, effects in packet.members:
                reads |= effects.reads
            # Reads anywhere in the packet retire matching pending
            # writes (wildcard-aware, conservatively).
            for cell in list(pending):
                if any(cells_collide(cell, read) for read in reads):
                    del pending[cell]
            for address, effects in packet.members:
                for cell in sorted(effects.writes):
                    resource, element = cell
                    if resource == cfg.model.pc_name:
                        continue
                    if element == "*":
                        # Computed index: unknown cell, clear the slate
                        # for that resource.
                        for known in list(pending):
                            if known[0] == resource:
                                del pending[known]
                        continue
                    previous = pending.get(cell)
                    if previous is not None:
                        report.add(
                            "note", previous, "cfg.dead-write",
                            "write at 0x%x to %s is overwritten at 0x%x "
                            "before any read"
                            % (previous, "%s" % _cell_name(cell), address),
                        )
                    pending[cell] = address
        # Block ends: later blocks may read the pending values.


def _cell_name(cell):
    resource, element = cell
    if element is None:
        return resource
    return "%s[%s]" % (resource, element)


__all__ = [
    "Branch",
    "PacketNode",
    "ProgramCFG",
    "build_cfg",
    "check_cfg",
]
