"""Effects analysis: per-instruction, per-stage read and write sets.

The write-collision packet linter (:mod:`repro.tools.lint`) needed only
the write sets of one instruction; static scheduling needs much more:
*which pipeline stage* each access happens in, the *read* sets (for
RAW/WAR detection), whether the instruction may raise pipeline-control
requests, and the constant PC targets it can assign (for control-flow
recovery).  :class:`EffectsAnalyzer` computes all of it by lowering the
decode-time-resolved schedule into SimIR (:mod:`repro.simcc.ir`) and
reading the effects directly off the typed micro-operations -- the
*same* lowering the simulator backends execute, so the analysis sees
exactly the accesses the generated simulator performs.

Cells are identified as ``(resource, element)`` pairs: a
constant-folded element access becomes an exact cell ``("lsq", "0")``,
a scalar register ``("PC", None)``, and a computed index degrades to a
whole-resource wildcard ``("R", "*")``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.machine.schedule import build_schedule
from repro.support.errors import ReproError

#: Maximum sub-operation inline depth the lowering follows before
#: giving up and marking the effects conservative/truncated.
MAX_CALL_DEPTH = 16

_ELEMENT = re.compile(r"^s\.(\w+)\[(\-?\d+)\]$")
_SCALAR = re.compile(r"^s\.(\w+)$")
_WILDCARD = re.compile(r"^s\.(\w+)\[")
_ACCESS = re.compile(r"s\.(\w+)")
_CONST_INDEX = re.compile(r"\[(\-?\d+)\]")
_CONST_INT = re.compile(r"^\(*\-?\d+\)*$")


def classify_lvalue(lvalue_source):
    """Map a generated lvalue to a cell key: (resource, element|None|'*').

    Returns ``None`` for behaviour-local targets (not architectural).
    Retained for tools that classify rendered source text; the analyzer
    itself now reads cells off the IR.
    """
    match = _ELEMENT.match(lvalue_source)
    if match:
        return (match.group(1), match.group(2))
    match = _SCALAR.match(lvalue_source)
    if match:
        return (match.group(1), None)
    match = _WILDCARD.match(lvalue_source)
    if match:
        return (match.group(1), "*")
    return None


def scan_read_cells(source):
    """All architectural cells a generated expression reads.

    Scans resolved source text for ``s.<resource>`` accesses: a literal
    index yields an exact element cell, a computed index a wildcard,
    no index a scalar.  Nested accesses (``s.dmem[s.R[3]]``) yield both
    the outer wildcard and the inner element.
    """
    cells = set()
    for match in _ACCESS.finditer(source):
        rest = source[match.end():]
        if rest.startswith("["):
            index = _CONST_INDEX.match(rest)
            element = index.group(1) if index else "*"
            cells.add((match.group(1), element))
        else:
            cells.add((match.group(1), None))
    return cells


def cells_collide(a, b):
    """Whether two cells may denote the same storage."""
    if a[0] != b[0]:
        return False
    return a[1] == b[1] or a[1] == "*" or b[1] == "*"


def cell_text(cell, other=None):
    """Human-readable rendering of a cell (pairing wildcards with the
    other side's element when available)."""
    resource, element = cell
    if element == "*" and other is not None:
        element = other[1]
    if element is None:
        return resource
    if element == "*":
        return "%s[...]" % resource
    return "%s[%s]" % (resource, element)


def const_int(source):
    """The integer a generated value expression denotes, or None."""
    if _CONST_INT.match(source) and source.count("(") == source.count(")"):
        try:
            return int(source.strip("()"))
        except ValueError:
            return None
    return None


@dataclass(frozen=True)
class PCWrite:
    """One assignment to the program counter found in a behaviour."""

    target: Optional[int]  # constant target, or None when computed
    conditional: bool  # under a run-time IF/WHILE


@dataclass(frozen=True)
class StageEffects:
    """Merged effects of everything one instruction does in one stage."""

    reads: frozenset
    writes: frozenset
    control: bool  # calls flush/stall/halt
    pc_writes: Tuple[PCWrite, ...]

    @classmethod
    def empty(cls):
        return cls(frozenset(), frozenset(), False, ())


@dataclass(frozen=True)
class InstructionEffects:
    """Per-stage effects of one decoded instruction instance.

    ``truncated`` is set when lowering hit the inline-depth limit or an
    unresolvable construct; consumers must treat such instructions
    conservatively (the hazard pass reports ``unknown``).
    """

    stages: Tuple[StageEffects, ...]
    truncated: bool

    @property
    def reads(self):
        cells = set()
        for stage in self.stages:
            cells |= stage.reads
        return cells

    @property
    def writes(self):
        cells = set()
        for stage in self.stages:
            cells |= stage.writes
        return cells

    @property
    def has_control(self):
        return any(stage.control for stage in self.stages)

    def pc_write_stages(self):
        """(stage index, PCWrite) pairs, shallowest stage first."""
        return [
            (index, write)
            for index, stage in enumerate(self.stages)
            for write in stage.pc_writes
        ]


class _StageAccumulator:
    __slots__ = ("reads", "writes", "control", "pc_writes")

    def __init__(self):
        self.reads = set()
        self.writes = set()
        self.control = False
        self.pc_writes = []

    def freeze(self):
        return StageEffects(
            reads=frozenset(self.reads),
            writes=frozenset(self.writes),
            control=self.control,
            pc_writes=tuple(self.pc_writes),
        )


class EffectsAnalyzer:
    """Computes :class:`InstructionEffects` for decoded instructions.

    Lowers the decode-time-resolved schedule into SimIR (only selected
    IF/SWITCH variants count, sub-operation invocations are inlined
    exactly as the code generator inlines them) and accumulates reads,
    writes, control requests and constant PC targets off the micro-ops;
    conditional accesses inside run-time guards are included
    conservatively.
    """

    def __init__(self, model, codegen=None):
        from repro.behavior.codegen import BehaviorCodegen

        self._model = model
        self._codegen = codegen if codegen is not None else \
            BehaviorCodegen(model)
        self._pc_name = model.pc_name

    @property
    def model(self):
        return self._model

    def effects_of(self, node):
        """Per-stage effects of one decoded instruction instance."""
        from repro.simcc import ir

        depth = self._model.pipeline.depth
        accs = [_StageAccumulator() for _ in range(depth)]
        truncated = False
        lowerer = ir.Lowerer(self._model, self._codegen._variant_cache,
                             depth_limit=MAX_CALL_DEPTH)
        for item in build_schedule(node, self._model):
            try:
                ops = lowerer.lower_statements(
                    item.behavior.statements, item.node
                )
            except ReproError:
                truncated = True  # unresolvable or too deep: conservative
                continue
            self._accumulate(ops, accs[item.stage], False, ir)
        return InstructionEffects(
            stages=tuple(acc.freeze() for acc in accs),
            truncated=truncated,
        )

    def written_cells(self, node):
        """All storage cells the instruction may write (any stage)."""
        return set(self.effects_of(node).writes)

    # -- the accumulator -----------------------------------------------------

    def _accumulate(self, ops, acc, cond, ir):
        """Fold one lowered micro-op sequence into a stage accumulator.

        ``cond`` marks ops nested under a run-time guard/loop (their PC
        writes are conditional; their reads/writes still count, which is
        the conservative inclusion the hazard pass relies on).
        """
        for op in ops:
            if isinstance(op, (ir.WriteReg, ir.WriteElem)):
                cell = ir.write_cell(op)
                acc.writes.add(cell)
                if isinstance(op, ir.WriteElem):
                    acc.reads |= ir.read_cells(op.index)
                acc.reads |= ir.read_cells(op.value)
                if op.augmented:
                    acc.reads.add(cell)
                elif cell == (self._pc_name, None):
                    acc.pc_writes.append(PCWrite(
                        target=self._const_target(op.value, ir),
                        conditional=cond,
                    ))
            elif isinstance(op, ir.WriteLocal):
                acc.reads |= ir.read_cells(op.value)
            elif isinstance(op, ir.Control):
                acc.control = True
                for arg in op.args:
                    acc.reads |= ir.read_cells(arg)
            elif isinstance(op, ir.Guard):
                acc.reads |= ir.read_cells(op.cond)
                self._accumulate(op.then_ops, acc, True, ir)
                self._accumulate(op.else_ops, acc, True, ir)
            elif isinstance(op, ir.Loop):
                acc.reads |= ir.read_cells(op.cond)
                self._accumulate(op.body, acc, True, ir)
            elif isinstance(op, ir.Eval):
                acc.reads |= ir.read_cells(op.value)

    @staticmethod
    def _const_target(value, ir):
        """The constant a PC write assigns, or None when computed.

        Folds just this value (never whole op sequences: folding away a
        constant-false guard would silently shrink the write sets the
        hazard pass depends on).
        """
        folded = ir._fold_value(value, ir.PassStats())
        return folded.value if isinstance(folded, ir.Const) else None


def packet_collisions(members, report=None, packet_pc=None):
    """Write-set collisions between the members of one execute packet.

    ``members`` is a sequence of ``(address, InstructionEffects)``
    pairs.  Returns the findings as a list; when ``report`` is given the
    findings are also recorded there (check id ``packet.collision``).
    """
    from repro.analysis.report import Finding

    findings = []
    seen = set()
    indexed = [(addr, fx.writes) for addr, fx in members]
    for i, (addr_a, cells_a) in enumerate(indexed):
        for addr_b, cells_b in indexed[i + 1:]:
            for cell_a in sorted(cells_a):
                for cell_b in sorted(cells_b):
                    if not cells_collide(cell_a, cell_b):
                        continue
                    message = (
                        "packet at 0x%x: parallel instructions at 0x%x "
                        "and 0x%x both write %s"
                        % (packet_pc if packet_pc is not None else addr_a,
                           addr_a, addr_b, cell_text(cell_a, cell_b))
                    )
                    if message in seen:
                        continue
                    seen.add(message)
                    if report is not None:
                        report.add("warning", addr_a, "packet.collision",
                                   message)
                    findings.append(Finding("warning", addr_a,
                                            "packet.collision", message))
    return findings


__all__ = [
    "MAX_CALL_DEPTH",
    "EffectsAnalyzer",
    "InstructionEffects",
    "StageEffects",
    "PCWrite",
    "classify_lvalue",
    "scan_read_cells",
    "cells_collide",
    "cell_text",
    "const_int",
    "packet_collisions",
]
