"""Effects analysis: per-instruction, per-stage read and write sets.

The write-collision packet linter (:mod:`repro.tools.lint`) needed only
the write sets of one instruction; static scheduling needs much more:
*which pipeline stage* each access happens in, the *read* sets (for
RAW/WAR detection), whether the instruction may raise pipeline-control
requests, and the constant PC targets it can assign (for control-flow
recovery).  :class:`EffectsAnalyzer` computes all of it in one walk
over the decode-time-resolved schedule, and the packet linter now
delegates here so there is exactly one effects walker in the tree.

Cells are identified by the code generator's resolved access text:
a constant-folded element access (``s.lsq[0]``) becomes an exact cell
``("lsq", "0")``, a scalar register ``("PC", None)``, and a computed
index degrades to a whole-resource wildcard ``("R", "*")``.  Reusing
the code generator for resolution guarantees the analysis sees exactly
the accesses the generated simulator performs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.behavior import ast as bast
from repro.behavior.runtime import CONTROL_INTRINSICS
from repro.machine.schedule import build_schedule
from repro.support.errors import ReproError

#: Maximum sub-operation invocation depth the walker follows before
#: giving up and marking the effects conservative/truncated.
MAX_CALL_DEPTH = 16

_ELEMENT = re.compile(r"^s\.(\w+)\[(\-?\d+)\]$")
_SCALAR = re.compile(r"^s\.(\w+)$")
_WILDCARD = re.compile(r"^s\.(\w+)\[")
_ACCESS = re.compile(r"s\.(\w+)")
_CONST_INDEX = re.compile(r"\[(\-?\d+)\]")
_CONST_INT = re.compile(r"^\(*\-?\d+\)*$")


def classify_lvalue(lvalue_source):
    """Map a generated lvalue to a cell key: (resource, element|None|'*').

    Returns ``None`` for behaviour-local targets (not architectural).
    """
    match = _ELEMENT.match(lvalue_source)
    if match:
        return (match.group(1), match.group(2))
    match = _SCALAR.match(lvalue_source)
    if match:
        return (match.group(1), None)
    match = _WILDCARD.match(lvalue_source)
    if match:
        return (match.group(1), "*")
    return None


def scan_read_cells(source):
    """All architectural cells a generated expression reads.

    Scans resolved source text for ``s.<resource>`` accesses: a literal
    index yields an exact element cell, a computed index a wildcard,
    no index a scalar.  Nested accesses (``s.dmem[s.R[3]]``) yield both
    the outer wildcard and the inner element.
    """
    cells = set()
    for match in _ACCESS.finditer(source):
        rest = source[match.end():]
        if rest.startswith("["):
            index = _CONST_INDEX.match(rest)
            element = index.group(1) if index else "*"
            cells.add((match.group(1), element))
        else:
            cells.add((match.group(1), None))
    return cells


def cells_collide(a, b):
    """Whether two cells may denote the same storage."""
    if a[0] != b[0]:
        return False
    return a[1] == b[1] or a[1] == "*" or b[1] == "*"


def cell_text(cell, other=None):
    """Human-readable rendering of a cell (pairing wildcards with the
    other side's element when available)."""
    resource, element = cell
    if element == "*" and other is not None:
        element = other[1]
    if element is None:
        return resource
    if element == "*":
        return "%s[...]" % resource
    return "%s[%s]" % (resource, element)


def const_int(source):
    """The integer a generated value expression denotes, or None."""
    if _CONST_INT.match(source) and source.count("(") == source.count(")"):
        try:
            return int(source.strip("()"))
        except ValueError:
            return None
    return None


@dataclass(frozen=True)
class PCWrite:
    """One assignment to the program counter found in a behaviour."""

    target: Optional[int]  # constant target, or None when computed
    conditional: bool  # under a run-time IF/WHILE


@dataclass(frozen=True)
class StageEffects:
    """Merged effects of everything one instruction does in one stage."""

    reads: frozenset
    writes: frozenset
    control: bool  # calls flush/stall/halt
    pc_writes: Tuple[PCWrite, ...]

    @classmethod
    def empty(cls):
        return cls(frozenset(), frozenset(), False, ())


@dataclass(frozen=True)
class InstructionEffects:
    """Per-stage effects of one decoded instruction instance.

    ``truncated`` is set when the walker hit the recursion limit or an
    unresolvable construct; consumers must treat such instructions
    conservatively (the hazard pass reports ``unknown``).
    """

    stages: Tuple[StageEffects, ...]
    truncated: bool

    @property
    def reads(self):
        cells = set()
        for stage in self.stages:
            cells |= stage.reads
        return cells

    @property
    def writes(self):
        cells = set()
        for stage in self.stages:
            cells |= stage.writes
        return cells

    @property
    def has_control(self):
        return any(stage.control for stage in self.stages)

    def pc_write_stages(self):
        """(stage index, PCWrite) pairs, shallowest stage first."""
        return [
            (index, write)
            for index, stage in enumerate(self.stages)
            for write in stage.pc_writes
        ]


class _StageAccumulator:
    __slots__ = ("reads", "writes", "control", "pc_writes")

    def __init__(self):
        self.reads = set()
        self.writes = set()
        self.control = False
        self.pc_writes = []

    def freeze(self):
        return StageEffects(
            reads=frozenset(self.reads),
            writes=frozenset(self.writes),
            control=self.control,
            pc_writes=tuple(self.pc_writes),
        )


class EffectsAnalyzer:
    """Computes :class:`InstructionEffects` for decoded instructions.

    Walks the decode-time-resolved schedule (only selected IF/SWITCH
    variants count), recursing into sub-operation invocations exactly as
    the code generator inlines them; conditional accesses inside
    run-time IFs are included conservatively.
    """

    def __init__(self, model, codegen=None):
        from repro.behavior.codegen import BehaviorCodegen

        self._model = model
        self._codegen = codegen if codegen is not None else \
            BehaviorCodegen(model)
        self._pc_name = model.pc_name

    @property
    def model(self):
        return self._model

    def effects_of(self, node):
        """Per-stage effects of one decoded instruction instance."""
        depth = self._model.pipeline.depth
        accs = [_StageAccumulator() for _ in range(depth)]
        truncated = [False]
        for item in build_schedule(node, self._model):
            self._walk(item.behavior.statements, item.node,
                       accs[item.stage], 0, False, truncated)
        return InstructionEffects(
            stages=tuple(acc.freeze() for acc in accs),
            truncated=truncated[0],
        )

    def written_cells(self, node):
        """All storage cells the instruction may write (any stage)."""
        return set(self.effects_of(node).writes)

    # -- the walker ----------------------------------------------------------

    def _walk(self, statements, node, acc, depth, cond, truncated):
        if depth > MAX_CALL_DEPTH:
            truncated[0] = True
            return
        for stmt in statements:
            self._statement(stmt, node, acc, depth, cond, truncated)

    def _statement(self, stmt, node, acc, depth, cond, truncated):
        if isinstance(stmt, bast.Assign):
            self._assign(stmt, node, acc, cond, truncated)
        elif isinstance(stmt, bast.If):
            self._reads(stmt.condition, node, acc, truncated)
            self._walk(stmt.then_body, node, acc, depth, True, truncated)
            if stmt.else_body:
                self._walk(stmt.else_body, node, acc, depth, True, truncated)
        elif isinstance(stmt, bast.While):
            self._reads(stmt.condition, node, acc, truncated)
            self._walk(stmt.body, node, acc, depth, True, truncated)
        elif isinstance(stmt, bast.Block):
            self._walk(stmt.body, node, acc, depth, cond, truncated)
        elif isinstance(stmt, bast.LocalDecl):
            if stmt.init is not None:
                self._reads(stmt.init, node, acc, truncated)
        elif isinstance(stmt, bast.ExprStmt):
            self._expr_statement(stmt.expression, node, acc, depth, cond,
                                 truncated)
        # Other statement kinds have no architectural effects.

    def _assign(self, stmt, node, acc, cond, truncated):
        try:
            target_src, _ = self._codegen._lvalue(stmt.target, node)
        except ReproError:
            truncated[0] = True  # unresolvable target: be conservative
            return
        cell = classify_lvalue(target_src)
        value_src = self._render(stmt.value, node, acc, truncated)
        if cell is not None:
            acc.writes.add(cell)
            # A computed target index reads its index cells.
            acc.reads |= scan_read_cells(target_src) - {cell}
            if stmt.op != "=":
                acc.reads.add(cell)
            if cell == (self._pc_name, None) and stmt.op == "=":
                target = const_int(value_src) if value_src else None
                acc.pc_writes.append(PCWrite(target=target,
                                             conditional=cond))
        elif stmt.op != "=":
            pass  # local augmented assign: no architectural read

    def _expr_statement(self, expr, node, acc, depth, cond, truncated):
        if isinstance(expr, bast.Call):
            if expr.name in CONTROL_INTRINSICS:
                acc.control = True
                for arg in expr.args:
                    self._reads(arg, node, acc, truncated)
                return
            child = self._resolve_child(expr.name, node)
            if child is not None:
                variant = self._variant(child)
                for behavior in variant.behaviors:
                    self._walk(behavior.statements, child, acc,
                               depth + 1, cond, truncated)
                return
        self._reads(expr, node, acc, truncated)

    def _resolve_child(self, name, node):
        child = node.children.get(name)
        if child is None and name in node.operation.references:
            kind, payload = node.lookup(name)
            child = payload if kind == "child" else None
        return child

    def _variant(self, child):
        return self._codegen._variant(child)

    # -- expression rendering ------------------------------------------------

    def _render(self, expr, node, acc, truncated):
        """Render an expression via the code generator and record its
        reads; returns the source text, or None when unresolvable."""
        try:
            source = self._codegen._expr(expr, node)
        except ReproError:
            truncated[0] = True
            return None
        acc.reads |= scan_read_cells(source)
        return source

    def _reads(self, expr, node, acc, truncated):
        self._render(expr, node, acc, truncated)


def packet_collisions(members, report=None, packet_pc=None):
    """Write-set collisions between the members of one execute packet.

    ``members`` is a sequence of ``(address, InstructionEffects)``
    pairs.  Returns the findings as a list; when ``report`` is given the
    findings are also recorded there (check id ``packet.collision``).
    """
    from repro.analysis.report import Finding

    findings = []
    seen = set()
    indexed = [(addr, fx.writes) for addr, fx in members]
    for i, (addr_a, cells_a) in enumerate(indexed):
        for addr_b, cells_b in indexed[i + 1:]:
            for cell_a in sorted(cells_a):
                for cell_b in sorted(cells_b):
                    if not cells_collide(cell_a, cell_b):
                        continue
                    message = (
                        "packet at 0x%x: parallel instructions at 0x%x "
                        "and 0x%x both write %s"
                        % (packet_pc if packet_pc is not None else addr_a,
                           addr_a, addr_b, cell_text(cell_a, cell_b))
                    )
                    if message in seen:
                        continue
                    seen.add(message)
                    if report is not None:
                        report.add("warning", addr_a, "packet.collision",
                                   message)
                    findings.append(Finding("warning", addr_a,
                                            "packet.collision", message))
    return findings


__all__ = [
    "MAX_CALL_DEPTH",
    "EffectsAnalyzer",
    "InstructionEffects",
    "StageEffects",
    "PCWrite",
    "classify_lvalue",
    "scan_read_cells",
    "cells_collide",
    "cell_text",
    "const_int",
    "packet_collisions",
]
