"""Cross-cycle pipeline hazard analysis.

Static scheduling (paper Section 3) composes the operations of all
instructions in flight into one flat column.  That composition is only
provably order-insensitive when no two in-flight instructions touch the
same storage out of program order -- a *hazard-free region*.  This pass
slides the pipeline-depth window over the recovered CFG and checks, for
every pair of packets that can be co-resident ``d`` fetches apart,
whether any access pair violates program order under the simulator's
timing model (deepest stage executes first within a cycle):

* **RAW**: the older packet writes a cell in stage ``s_w`` and the
  younger reads it in ``s_r``; the read sees the *old* value iff
  ``s_w > d + s_r``.
* **WAR**: the older reads in ``s_r`` and the younger writes in
  ``s_w``; the read sees the *new* value iff ``d + s_w < s_r``.
* **WAW**: both write; the writes land out of program order iff
  ``s_w_old > d + s_w_young``.

The boundary cases are exact: equal effective time means the older
instruction sits in the deeper stage and executes first, which *is*
program order (this is how the c62x model's ``lsq`` pipeline-register
idiom stays hazard-free at distance 1).

Program-counter cells are exempt -- PC writes are control flow, handled
by the CFG pass -- and windows are enumerated through constant-target
branches, including their delay slots, so loop back edges are covered.

Every canonical packet receives a verdict: ``hazard_free`` (proven),
``conflicting`` (a concrete hazard pair was found) or ``unknown``
(undecodable member, truncated effects, or an unknown branch target in
flight).  The simulation compiler attaches the verdict map to the
table; the static scheduler composes columns only over proven regions.
"""

from __future__ import annotations

HAZARD_FREE = "hazard_free"
CONFLICTING = "conflicting"
UNKNOWN = "unknown"

VERDICTS = (HAZARD_FREE, CONFLICTING, UNKNOWN)


def analyze_hazards(cfg, report=None):
    """Verdict per canonical packet start; findings land on ``report``."""
    verdicts = {}
    for pc, packet in cfg.packets.items():
        if packet.truncated or packet.undecoded:
            verdicts[pc] = UNKNOWN
        else:
            verdicts[pc] = HAZARD_FREE

    depth = cfg.model.pipeline.depth
    stage_names = cfg.model.pipeline.stages
    pc_name = cfg.model.pc_name
    checked = set()
    for pc in cfg.order:
        for succ_pc, distance, certain in _in_flight(cfg, pc, depth):
            if not certain:
                if verdicts.get(succ_pc) == HAZARD_FREE:
                    verdicts[succ_pc] = UNKNOWN
                if verdicts.get(pc) == HAZARD_FREE:
                    verdicts[pc] = UNKNOWN
                continue
            key = (pc, succ_pc, distance)
            if key in checked:
                continue
            checked.add(key)
            conflicts = _pair_conflicts(
                cfg.packets[pc], cfg.packets[succ_pc], distance,
                pc_name, stage_names,
            )
            if not conflicts:
                continue
            for kind, cell_desc, older_stage, younger_stage in conflicts:
                if verdicts.get(pc) != UNKNOWN:
                    verdicts[pc] = CONFLICTING
                if verdicts.get(succ_pc) != UNKNOWN:
                    verdicts[succ_pc] = CONFLICTING
                if report is not None:
                    report.add(
                        "warning", min(pc, succ_pc), "hazard.%s" % kind,
                        "cross-cycle %s hazard on %s between 0x%x "
                        "(stage %s) and 0x%x (stage %s), issued %d "
                        "cycle(s) apart"
                        % (kind.upper(), cell_desc, pc, older_stage,
                           succ_pc, younger_stage, distance),
                    )
    return verdicts


def hazard_free_region(verdicts, pcs):
    """Whether every (non-bubble) pc of a window is proven hazard-free."""
    return all(
        pc is None or verdicts.get(pc) == HAZARD_FREE for pc in pcs
    )


# -- window enumeration ------------------------------------------------------


def _in_flight(cfg, start, depth):
    """Packets that can be in flight with ``start``.

    Yields ``(pc, distance, certain)`` for every packet fetchable
    ``distance`` cycles after ``start`` (1 <= distance < depth) along
    some fetch path: the sequential stream, redirected by constant-
    target branches after their delay windows.  ``certain`` is False
    past an unknown-target branch, where the fetch stream cannot be
    enumerated.

    Under a flush branch policy the instructions fetched between an
    unconditional branch and its resolution are squashed before they
    execute, so they are not reported along the taken path.
    """
    results = []
    flush_policy = cfg.model.config.branch_policy == "flush"
    seen = set()

    def visit(cur_pc, distance, pending):
        if distance >= depth:
            return
        state = (cur_pc, distance, pending)
        if state in seen:
            return
        seen.add(state)
        packet = cfg.packets.get(cur_pc)
        if packet is None:
            # Mid-packet entry or off the program: the CFG checker
            # reports it; the fetch stream past it is not enumerable.
            if cfg.in_program(cur_pc):
                results.append((cur_pc, distance, False))
            return
        squashed = flush_policy and any(
            fire > distance and not conditional
            for fire, _, conditional in pending
        )
        if distance > 0 and not squashed:
            results.append((cur_pc, distance, True))
        for branch in packet.branches:
            fire = distance + branch.stage + 1
            if branch.unknown_target:
                if fire < depth:
                    results.append((cur_pc, fire, False))
                continue
            for target in branch.targets:
                pending = pending + ((fire, target, branch.conditional),)
        next_distance = distance + 1
        firing = [entry for entry in pending if entry[0] == next_distance]
        rest = tuple(
            entry for entry in pending if entry[0] > next_distance
        )
        for _, target, _ in firing:
            visit(target, next_distance, rest)
        if not firing or all(cond for _, _, cond in firing):
            visit(cur_pc + packet.extent, next_distance, rest)

    visit(start, 0, ())
    return results


# -- pairwise conflict detection ---------------------------------------------


def _occupied(stages):
    return [
        (index, cells) for index, cells in enumerate(stages) if cells
    ]


def _overlap(cells_a, cells_b, pc_name):
    from repro.analysis.effects import cell_text, cells_collide

    for cell_a in sorted(cells_a):
        if cell_a[0] == pc_name:
            continue
        for cell_b in sorted(cells_b):
            if cell_b[0] == pc_name:
                continue
            if cells_collide(cell_a, cell_b):
                return cell_text(cell_a, cell_b)
    return None


def _pair_conflicts(older, younger, distance, pc_name, stage_names):
    """Conflicts between ``older`` and ``younger`` issued ``distance``
    cycles apart.  Returns (kind, cell, older stage, younger stage)."""
    conflicts = []
    older_writes = _occupied(older.stage_writes)
    older_reads = _occupied(older.stage_reads)
    younger_writes = _occupied(younger.stage_writes)
    younger_reads = _occupied(younger.stage_reads)

    for s_w, writes in older_writes:
        for s_r, reads in younger_reads:
            if s_w > distance + s_r:
                cell = _overlap(writes, reads, pc_name)
                if cell is not None:
                    conflicts.append(
                        ("raw", cell, stage_names[s_w], stage_names[s_r])
                    )
    for s_r, reads in older_reads:
        for s_w, writes in younger_writes:
            if distance + s_w < s_r:
                cell = _overlap(reads, writes, pc_name)
                if cell is not None:
                    conflicts.append(
                        ("war", cell, stage_names[s_r], stage_names[s_w])
                    )
    for s_old, writes_old in older_writes:
        for s_young, writes_young in younger_writes:
            if s_old > distance + s_young:
                cell = _overlap(writes_old, writes_young, pc_name)
                if cell is not None:
                    conflicts.append(
                        ("waw", cell, stage_names[s_old],
                         stage_names[s_young])
                    )
    return conflicts


__all__ = [
    "HAZARD_FREE",
    "CONFLICTING",
    "UNKNOWN",
    "VERDICTS",
    "analyze_hazards",
    "hazard_free_region",
]
