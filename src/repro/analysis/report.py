"""Shared report format for the simulation-compile-time analyzers.

Every pass (effects, CFG recovery, hazard detection, packet lint, model
diagnostics) funnels its findings into one :class:`Report`, so the CLI,
the JSON emitter and the tests see a single, stable shape.

Determinism is part of the contract: findings are deduplicated on
insertion (a hazard pair discovered along two fetch paths, or a
collision reported from both members, collapses to one finding) and
:meth:`Report.sorted_findings` orders by ``(address, message)``, so a
report is usable as a golden file across runs and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Recognised severities, most severe first.  ``error`` findings always
#: fail a lint run, ``warning`` findings fail under ``--Werror``,
#: ``note`` findings are informational only.
SEVERITIES = ("error", "warning", "note")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Stable diagnostic codes for IR-level checks, assigned on insertion
#: from the producing check name.  Codes are part of the JSON contract
#: (``repro-lint --json``) and must never be renumbered; new checks get
#: new codes.
DIAGNOSTIC_CODES = {
    "cfg.unreachable": "IR001",
    "ir.trap": "IR002",
    "ir.dead-write": "IR003",
}


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, anchored to a program address.

    ``check`` is a stable machine-readable identifier of the producing
    check (``hazard.raw``, ``cfg.packet-middle``, ``packet.collision``,
    ...); ``address`` is ``None`` for program-wide findings.  ``code``
    is the stable short diagnostic code (``IR002``, ...) for checks
    that have one, else empty.
    """

    severity: str
    address: Optional[int]
    check: str
    message: str
    code: str = ""

    def __str__(self):
        where = "<program>" if self.address is None else "0x%x" % self.address
        if self.code:
            return "%s: %s: [%s] %s" % (
                where, self.severity, self.code, self.message
            )
        return "%s: %s: %s" % (where, self.severity, self.message)

    def to_dict(self):
        return {
            "severity": self.severity,
            "address": self.address,
            "check": self.check,
            "code": self.code,
            "message": self.message,
        }


def _sort_key(finding):
    # Program-wide findings first, then by address, then message; the
    # severity tie-break keeps an error ahead of a same-text warning.
    return (
        -1 if finding.address is None else finding.address,
        finding.message,
        _SEVERITY_RANK.get(finding.severity, len(SEVERITIES)),
        finding.check,
    )


class Report:
    """A deduplicating, deterministically ordered collection of findings."""

    def __init__(self):
        self._findings = []
        self._seen = set()

    def add(self, severity, address, check, message):
        if severity not in SEVERITIES:
            raise ValueError("unknown severity %r" % severity)
        finding = Finding(severity, address, check, message,
                          code=DIAGNOSTIC_CODES.get(check, ""))
        if finding not in self._seen:
            self._seen.add(finding)
            self._findings.append(finding)
        return finding

    def extend(self, other):
        for finding in other.sorted_findings():
            self.add(finding.severity, finding.address, finding.check,
                     finding.message)

    # -- access ---------------------------------------------------------------

    def sorted_findings(self):
        """All findings, ordered by ``(address, message)``."""
        return sorted(self._findings, key=_sort_key)

    def by_severity(self, severity):
        return [f for f in self.sorted_findings() if f.severity == severity]

    @property
    def errors(self):
        return self.by_severity("error")

    @property
    def warnings(self):
        return self.by_severity("warning")

    @property
    def notes(self):
        return self.by_severity("note")

    def __len__(self):
        return len(self._findings)

    def __iter__(self):
        return iter(self.sorted_findings())

    # -- outcomes -------------------------------------------------------------

    def exit_code(self, werror=False):
        """Severity-based process exit code: 1 on errors (or warnings
        under ``--Werror``), 0 otherwise."""
        if self.errors:
            return 1
        if werror and self.warnings:
            return 1
        return 0

    def counts(self):
        return {
            severity: len(self.by_severity(severity))
            for severity in SEVERITIES
        }

    def to_dict(self):
        return {
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }


__all__ = ["DIAGNOSTIC_CODES", "SEVERITIES", "Finding", "Report"]
