"""High-level convenience API tying the tool flow together.

This is the entry point a downstream user sees: compile a LISA model,
get a generated toolset (assembler, disassembler, simulation compiler,
simulators), and run programs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict

from repro.lisa.semantics import compile_source
from repro.support.errors import ReproError


def default_cache_dir():
    """The default on-disk location for the simulation-table cache.

    ``REPRO_CACHE_DIR`` overrides; otherwise a per-user cache directory.
    """
    configured = os.environ.get("REPRO_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "simtab"
    )


def open_cache(path=None, max_memory_entries=8):
    """Open (creating lazily on first store) a persistent cache for
    compiled simulation tables.

    Pass the returned object as the ``cache=`` argument of
    :meth:`Toolset.new_simulator` /
    :func:`repro.sim.create_simulator`: simulation compilation then
    runs at most once per (model, program, level) across processes.
    """
    from repro.simcc.cache import SimulationCache

    return SimulationCache(
        path if path is not None else default_cache_dir(),
        max_memory_entries=max_memory_entries,
    )


def load_checkpoint(path):
    """Load a simulation checkpoint file (see :mod:`repro.resilience`).

    Returns a :class:`repro.resilience.checkpoint.Checkpoint`; pass it
    to :meth:`repro.sim.base.Simulator.restore` (after loading the same
    program) to resume, on any simulator kind.
    """
    from repro.resilience.checkpoint import Checkpoint

    return Checkpoint.load(path)


def compile_lisa_source(source, filename="<string>"):
    """Compile LISA source text into a machine-model data base."""
    return compile_source(source, filename)


def compile_lisa_file(path):
    """Compile a LISA description file into a machine-model data base."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return compile_source(source, str(path))


def list_models():
    """Names of the processor models shipped with the package."""
    from repro.models import MODEL_REGISTRY

    return sorted(MODEL_REGISTRY)


def load_model(name):
    """Load (and cache) one of the shipped processor models by name."""
    from repro.models import load_model as _load

    return _load(name)


@dataclass
class Toolset:
    """The generated tool suite for one machine model.

    Mirrors the paper's Figure 5: from the model data base we generate
    the assembler/disassembler, the instruction decoder, and the
    processor-specific simulation compiler; simulators are built on
    demand via :meth:`new_simulator`.
    """

    model: object
    _cache: Dict[str, object] = field(default_factory=dict)

    @property
    def decoder(self):
        if "decoder" not in self._cache:
            from repro.coding.decoder import InstructionDecoder

            self._cache["decoder"] = InstructionDecoder(self.model)
        return self._cache["decoder"]

    @property
    def encoder(self):
        if "encoder" not in self._cache:
            from repro.coding.encoder import InstructionEncoder

            self._cache["encoder"] = InstructionEncoder(self.model)
        return self._cache["encoder"]

    @property
    def assembler(self):
        if "assembler" not in self._cache:
            from repro.tools.asm import Assembler

            self._cache["assembler"] = Assembler(self.model)
        return self._cache["assembler"]

    @property
    def disassembler(self):
        if "disassembler" not in self._cache:
            from repro.tools.disasm import Disassembler

            self._cache["disassembler"] = Disassembler(self.model)
        return self._cache["disassembler"]

    @property
    def simulation_compiler(self):
        if "simcc" not in self._cache:
            from repro.simcc.generator import generate_simulation_compiler

            self._cache["simcc"] = generate_simulation_compiler(self.model)
        return self._cache["simcc"]

    def new_simulator(self, kind="compiled", cache=None, jobs=None,
                      verify_schedule=False, observer=None,
                      on_self_modify=None, backend="auto", tiering="off"):
        """Create a fresh simulator.

        ``kind`` is one of ``interpretive``, ``predecoded`` (compiled
        level 1), ``compiled`` (level 2, dynamic scheduling), ``static``
        (level 2, static scheduling) or ``unfolded`` (level 3, operation
        instantiation).

        ``cache`` (see :func:`open_cache`) makes load-time simulation
        compilation persistent across runs; ``jobs`` parallelises cold
        compiles.  ``verify_schedule`` (static kinds) raises instead of
        falling back to dynamic scheduling on unproven windows.
        ``observer`` (see :func:`new_observer` / :mod:`repro.obs`)
        enables trace events, compile-phase spans and metrics.
        ``on_self_modify`` arms the program-memory write guard with a
        degradation policy (``error``, ``recompile`` or ``interpret``;
        see :mod:`repro.resilience`).  ``backend`` (table-based kinds)
        selects the execution backend -- ``auto``, ``python``,
        ``module`` or ``native`` (compiled C bursts; falls back to the
        Python path when no C toolchain is available).  ``tiering``
        (``off``/``auto``/``aggressive`` or a
        :class:`repro.sim.tiering.TierPolicy`) enables adaptive tiered
        execution: profile-hot windows are promoted to richer
        representations mid-run (see :mod:`repro.sim.tiering`).
        """
        from repro.sim import create_simulator

        return create_simulator(self.model, kind, cache=cache, jobs=jobs,
                                verify_schedule=verify_schedule,
                                observer=observer,
                                on_self_modify=on_self_modify,
                                backend=backend, tiering=tiering)

    def new_observer(self, program=None, **kwargs):
        """Create a :class:`repro.obs.Observer` for this model.

        When ``program`` is given, the observer folds per-address
        dispatch counts into per-opcode counts at run end using the
        generated disassembler.  Remaining keyword arguments pass
        through to the :class:`~repro.obs.Observer` constructor.
        """
        from repro import obs

        if program is not None and "labeler" not in kwargs:
            kwargs["labeler"] = obs.opcode_labeler(self.model, program)
        return obs.Observer(**kwargs)

    def dump_ir(self, program):
        """The lowered, post-pass SimIR of every execute packet.

        Returns the same human-readable text ``repro-sim --dump-ir``
        prints: per packet, the per-member, per-stage micro-operation
        functions exactly as the simulation backends consume them --
        the ground truth for debugging retargeting issues.
        """
        from repro.simcc.ir import dump_program_ir

        return dump_program_ir(self.model, program)

    def analyze(self, program, packet_lint=True, observer=None):
        """Run the static analysis passes over an assembled program.

        Returns a :class:`repro.analysis.AnalysisResult` holding the
        findings report, the per-packet hazard verdicts, and the
        recovered control-flow graph.
        """
        from repro.analysis import analyze_program

        return analyze_program(self.model, program,
                               packet_lint=packet_lint, observer=observer)


def build_toolset(model):
    """Build the generated tool suite for ``model``."""
    if model is None:
        raise ReproError("build_toolset needs a compiled machine model")
    return Toolset(model)


def analyze_program(model, program, packet_lint=True, observer=None):
    """Run the static analysis passes over an assembled program.

    Convenience re-export of :func:`repro.analysis.analyze_program`.
    """
    from repro.analysis import analyze_program as _analyze

    return _analyze(model, program, packet_lint=packet_lint,
                    observer=observer)
