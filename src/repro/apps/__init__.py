"""Benchmark applications: the paper's three DSP workloads.

The paper evaluates on a FIR filter, the ADPCM G.721 codec and the GSM
full-rate speech encoder.  Here (see DESIGN.md, "Substitutions"):

* :mod:`repro.apps.fir` -- a real FIR filter in target assembly for all
  three shipped models,
* :mod:`repro.apps.adpcm` -- an IMA/DVI-style ADPCM encoder+decoder
  (branch-free, VLIW-friendly) for the c62x,
* :mod:`repro.apps.gsm` -- the dominant GSM 06.10 kernels (windowing +
  autocorrelation + LTP lag search), scaled with unrolled sections until
  the program nearly fills program memory,
* :mod:`repro.apps.generator` -- a deterministic synthetic program
  generator with a self-checking checksum (size / branch-density sweeps).

Every application carries expected memory contents computed by a golden
pure-Python model (:mod:`repro.apps.golden`); ``verify(state)`` is the
paper's accuracy check.
"""

from repro.apps.base import Application
from repro.apps.fir import build_fir
from repro.apps.adpcm import build_adpcm
from repro.apps.gsm import build_gsm
from repro.apps.generator import build_synthetic

__all__ = [
    "Application",
    "build_fir",
    "build_adpcm",
    "build_gsm",
    "build_synthetic",
]
