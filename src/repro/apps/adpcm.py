"""ADPCM codec in c62x assembly (the paper's second benchmark).

The paper uses the ITU G.721 codec; we implement an IMA/DVI-style ADPCM
encoder *and* decoder (same structure: adaptive quantiser + predictor +
table lookups; see DESIGN.md "Substitutions").  The quantiser is written
branch-free -- conditions become cmplt/cmpgt results combined with
multiplies and masks -- which is both how one writes fast C6x code and a
good workout for the VLIW model's exposed latencies.

Memory map (dmem):

====================  =========
step-size table       0
index-adjust table    96
input samples         128
encoder codes         2048
encoder reconstr.     4096
decoder output        6144
====================  =========
"""

from __future__ import annotations

from repro.apps.base import Application, lcg_samples
from repro.apps.golden import (
    INDEX_TABLE,
    STEP_TABLE,
    adpcm_decode_reference,
    adpcm_encode_reference,
)
from repro.support.errors import ReproError

STEP_BASE = 0
INDEX_BASE = 96
IN_BASE = 128
CODE_BASE = 2048
RECON_BASE = 4096
DEC_BASE = 6144


def _word_lines(values, per_line=10):
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append("        .word " + ", ".join(str(v) for v in chunk))
    return "\n".join(lines)


# The branch-free predictor update shared by encoder and decoder:
# vpdiff is in b7, the sign bit in a3; valpred (a13) and index (a14) are
# updated and clamped.  Expects the code in a8 and the step tables based
# at b14/b13; clobbers b1-b9.
_PREDICTOR_UPDATE = """
        sub b8, a0, a3         ; mask = -sign
        xor b9, b7, b8
        add b9, b9, a3         ; two's-complement negate when sign set
        add a13, a13, b9       ; valpred += signed vpdiff
        sshl b9, a13, 16
        shr a13, b9, 16        ; clamp valpred to 16 bits
        add b1, b13, a8        ; &indextab[code]
        ldw b3, b1, 0
        nop
        nop
        nop
        nop
        add a14, a14, b3       ; index += indextab[code]
        cmplt b2, a14, a0
        addk b2, -1
        and a14, a14, b2       ; clamp low: index < 0 -> 0
        cmpgt b2, a14, b15
        mv b4, b2
        addk b4, -1
        and a14, a14, b4       ; clamp high: index > 88 -> 0 ...
        sub b4, a0, b2
        and b5, b15, b4
        or a14, a14, b5        ; ... then or in 88
"""


def build_adpcm(model_name="c62x", samples=128, seed=23, amplitude=12000):
    """Build the ADPCM encode+decode application (c62x only)."""
    if model_name != "c62x":
        raise ReproError("the ADPCM codec is only generated for the c62x")
    pcm = lcg_samples(seed, samples, amplitude)
    codes, recon = adpcm_encode_reference(pcm)
    decoded = adpcm_decode_reference(codes)
    assert decoded == recon  # decoder mirrors the encoder's predictor

    source = """
        .entry start
        .section dmem
%(step_words)s
        .org %(index_base)d
%(index_words)s
        .org %(in_base)d
%(in_words)s
        .section pmem

start:  mvk b14, %(step_base)d
        mvk b13, %(index_base)d
        mvk b12, %(in_base)d
        mvk b11, %(code_base)d
        mvk b10, %(recon_base)d
        mvk b15, 88
        mvk a12, %(samples)d
        mvk a13, 0             ; valpred
        mvk a14, 0             ; index

; ---------------- encoder ----------------
eloop:  ldw b2, b12, 0         ; sample
        addk b12, 1
        add b1, b14, a14       ; &steptab[index]
        ldw b3, b1, 0          ; step
        nop
        nop
        sub a2, b2, a13        ; diff = sample - valpred
        cmplt a3, a2, a0       ; sign
        abs a2, a2
        nop
        mv b4, b3
        addk b4, -1
        cmpgt a4, a2, b4       ; bit2 = diff >= step
        mpy a5, a4, b3
        shr b5, b3, 1          ; step1
        sub a2, a2, a5         ; diff -= bit2*step
        mv b4, b5
        addk b4, -1
        cmpgt a6, a2, b4       ; bit1 = diff >= step1
        mpy a5, a6, b5
        shr b6, b3, 2          ; step2
        sub a2, a2, a5         ; diff -= bit1*step1
        mv b4, b6
        addk b4, -1
        cmpgt a7, a2, b4       ; bit0 = diff >= step2
        shl a8, a3, 3          ; code = sign<<3 | bit2<<2 | bit1<<1 | bit0
        shl a9, a4, 2
        add a8, a8, a9
        shl a9, a6, 1
        add a8, a8, a9
        add a8, a8, a7
        shr b7, b3, 3          ; vpdiff = step>>3 + bits * step terms
        mpy a5, a4, b3
        mpy a9, a6, b5
        add b7, b7, a5
        mpy a5, a7, b6
        add b7, b7, a9
        nop
        add b7, b7, a5
%(update)s
        stw a8, b11, 0         ; emit code
        addk b11, 1
        stw a13, b10, 0        ; emit reconstructed sample
        addk b10, 1
        addk a12, -1
        bnz a12, eloop
        nop
        nop
        nop
        nop
        nop

; ---------------- decoder ----------------
        mvk a13, 0
        mvk a14, 0
        mvk b12, %(code_base)d
        mvk b10, %(dec_base)d
        mvk a12, %(samples)d
dloop:  ldw a8, b12, 0         ; code
        addk b12, 1
        add b1, b14, a14
        ldw b3, b1, 0          ; step
        nop
        nop
        shr a3, a8, 3          ; sign (codes are 4-bit)
        shr a4, a8, 2
        mvk b4, 1
        and a4, a4, b4         ; bit2
        shr a6, a8, 1
        and a6, a6, b4         ; bit1
        and a7, a8, b4         ; bit0
        shr b5, b3, 1
        shr b6, b3, 2
        shr b7, b3, 3
        mpy a5, a4, b3
        mpy a9, a6, b5
        add b7, b7, a5
        mpy a5, a7, b6
        add b7, b7, a9
        nop
        add b7, b7, a5         ; vpdiff
%(update)s
        stw a13, b10, 0
        addk b10, 1
        addk a12, -1
        bnz a12, dloop
        nop
        nop
        nop
        nop
        nop
        halt
""" % {
        "step_words": _word_lines(STEP_TABLE),
        "index_words": _word_lines(INDEX_TABLE),
        "in_words": _word_lines(pcm),
        "step_base": STEP_BASE,
        "index_base": INDEX_BASE,
        "in_base": IN_BASE,
        "code_base": CODE_BASE,
        "recon_base": RECON_BASE,
        "dec_base": DEC_BASE,
        "samples": samples,
        "update": _PREDICTOR_UPDATE,
    }

    app = Application(
        name="adpcm_c62x",
        model_name="c62x",
        source=source,
        description=(
            "IMA ADPCM encode + decode of %d samples (branch-free "
            "quantiser)" % samples
        ),
    )
    app.expected_memory = "dmem"
    app.output_base = CODE_BASE
    app.expect("dmem", CODE_BASE, codes)
    app.expect("dmem", RECON_BASE, recon)
    app.expect("dmem", DEC_BASE, decoded)
    return app
