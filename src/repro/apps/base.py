"""Common application container and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.support.errors import ReproError


def lcg(seed):
    """A tiny deterministic pseudo-random generator (31-bit LCG).

    Used instead of :mod:`random` so that generated programs and their
    golden results are reproducible byte-for-byte across Python versions.
    """
    state = (seed & 0x7FFFFFFF) or 1

    def next_value():
        nonlocal state
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        return state

    return next_value


def lcg_samples(seed, count, amplitude):
    """``count`` deterministic samples in [-amplitude, amplitude]."""
    rng = lcg(seed)
    return [(rng() % (2 * amplitude + 1)) - amplitude for _ in range(count)]


@dataclass
class Application:
    """A target application plus its golden expectations.

    ``expected`` maps memory resource names to {address: value} dicts;
    :meth:`verify` compares them against a post-run processor state --
    the paper's "without any loss in accuracy" check, grounded in an
    independent pure-Python implementation.
    """

    name: str
    model_name: str
    source: str
    expected: Dict[str, Dict[int, int]] = field(default_factory=dict)
    description: str = ""
    max_cycles: int = 200_000_000

    def expect(self, memory, base, values):
        slot = self.expected.setdefault(memory, {})
        for offset, value in enumerate(values):
            slot[base + offset] = value

    def verify(self, state):
        """Raise ReproError on any mismatch against the golden results."""
        mismatches = []
        for memory, cells in self.expected.items():
            for address, expected_value in cells.items():
                actual = state.read_memory(memory, address)
                if actual != expected_value:
                    mismatches.append(
                        "%s[%d] = %d, expected %d"
                        % (memory, address, actual, expected_value)
                    )
        if mismatches:
            raise ReproError(
                "application %r failed verification:\n  %s"
                % (self.name, "\n  ".join(mismatches[:20]))
            )
        return True

    def assemble(self, toolset):
        return toolset.assembler.assemble_text(self.source, name=self.name)
