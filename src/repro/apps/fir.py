"""FIR filter in target assembly for every shipped model.

The first of the paper's three benchmark applications.  The same
filtering problem (identical samples, taps, and golden output) is
generated for the c62x (VLIW with exposed delay slots), the c54x
(accumulator/MAC style) and the tinydsp (three-address RISC style), so
the retargeting experiment (E7) compares like with like.
"""

from __future__ import annotations

from repro.apps.base import Application, lcg_samples
from repro.apps.golden import fir_reference
from repro.support.errors import ReproError


def _word_lines(values, per_line=8):
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append("        .word " + ", ".join(str(v) for v in chunk))
    return "\n".join(lines)


def build_fir(model_name="c62x", taps=16, samples=64, seed=11,
              amplitude=None):
    """Build a FIR application for ``model_name``.

    ``amplitude`` bounds sample/coefficient magnitude; defaults keep the
    accumulator inside 16 bits on the c54x (whose store writes the low
    accumulator half) and inside 32 bits elsewhere.
    """
    if amplitude is None:
        amplitude = 30 if model_name == "c54x" else 1000
    x = lcg_samples(seed, samples, amplitude)
    h = lcg_samples(seed + 1, taps, amplitude)
    y = fir_reference(x, h)
    if model_name == "c62x":
        app = _fir_c62x(x, h, taps, samples)
    elif model_name == "c54x":
        app = _fir_c54x(x, h, taps, samples)
    elif model_name == "tinydsp":
        app = _fir_tinydsp(x, h, taps, samples)
    else:
        raise ReproError("no FIR generator for model %r" % model_name)
    app.expect(app.expected_memory, app.output_base, y)
    app.description = (
        "%d-tap FIR over %d samples (amplitude %d)"
        % (taps, samples, amplitude)
    )
    return app


def _fir_c62x(x, h, taps, samples):
    """VLIW FIR: explicit delay-slot scheduling, one memory op/packet."""
    x_base = 0
    h_base = 4096
    y_base = 6000
    padded = [0] * (taps - 1) + x
    source = """
        .entry start
        .section dmem
%(x_words)s
        .org %(h_base)d
%(h_words)s
        .section pmem
start:  mvk a3, %(x_start)d    ; x read start for n = 0 (walks down)
     || mvk b3, %(y_base)d     ; output pointer
        mvk b1, %(samples)d    ; outer count
outer:  mv a4, a3
     || mvk b4, %(h_base)d
        mvk a1, %(taps)d
     || mvk a7, 0
inner:  ldw a5, a4, 0          ; x[n-k]   -- 4 delay slots
        ldw b5, b4, 0          ; h[k]
     || addk a4, -1
        addk b4, 1
        nop
        nop
        mpy a6, a5, b5         ; -- 1 delay slot
        nop
        add a7, a7, a6
        addk a1, -1
        bnz a1, inner          ; -- 5 delay slots
        nop
        nop
        nop
        nop
        nop
        stw a7, b3, 0
        addk b3, 1
     || addk a3, 1
        addk b1, -1
        bnz b1, outer
        nop
        nop
        nop
        nop
        nop
        halt
""" % {
        "x_words": _word_lines(padded),
        "h_words": _word_lines(h),
        "h_base": h_base,
        "x_start": x_base + taps - 1,
        "y_base": y_base,
        "samples": samples,
        "taps": taps,
    }
    app = Application(name="fir_c62x", model_name="c62x", source=source)
    app.expected_memory = "dmem"
    app.output_base = y_base
    return app


def _fir_c54x(x, h, taps, samples):
    """Accumulator FIR: the LT/MAC/BANZ idiom the C54x was built for."""
    x_base = 0
    h_base = 160
    y_base = 200
    padded = [0] * (taps - 1) + x
    if len(padded) > h_base or h_base + taps > y_base:
        raise ReproError("c54x FIR layout overflow: shrink taps/samples")
    if y_base + samples > 256:
        raise ReproError(
            "c54x FIR output exceeds the STM-addressable window"
        )
    source = """
        .entry start
        .section dmem
%(x_words)s
        .org %(h_base)d
%(h_words)s
        .section pmem
start:  stm %(x_start)d, ar1   ; x pointer (walks down per tap)
        stm %(h_base)d, ar2    ; h pointer
        stm %(y_base)d, ar3    ; y pointer
        stm %(outer)d, ar4     ; outer iterations - 1 (BANZ style)
outer:  ld 0, a
        stm %(inner)d, ar0     ; inner iterations - 1
inner:  lt *ar1-
        mac *ar2+, a
        banz inner, ar0
        stl a, *ar3+
        adar ar1, %(x_step)d   ; back to start of window, plus one
        adar ar2, -%(taps)d    ; rewind coefficients
        banz outer, ar4
        halt
""" % {
        "x_words": _word_lines(padded),
        "h_words": _word_lines(h),
        "h_base": h_base,
        "x_start": x_base + taps - 1,
        "y_base": y_base,
        "outer": samples - 1,
        "inner": taps - 1,
        "taps": taps,
        "x_step": taps + 1,
    }
    app = Application(name="fir_c54x", model_name="c54x", source=source)
    app.expected_memory = "dmem"
    app.output_base = y_base
    return app


def _fir_tinydsp(x, h, taps, samples):
    """Three-address FIR with register-indirect addressing."""
    x_base = 0
    h_base = 128
    y_base = 168
    padded = [0] * (taps - 1) + x
    if len(padded) > h_base or h_base + taps > y_base \
            or y_base + samples > 256:
        raise ReproError("tinydsp FIR layout overflow: shrink taps/samples")
    source = """
        .entry start
        .section dmem
%(x_words)s
        .org %(h_base)d
%(h_words)s
        .section pmem
start:  ldi r0, 1              ; permanent +1
        ldi r6, 0              ; n
outer:  ldi r1, %(x_start)d
        add r1, r1, r6         ; x read start for this n
        ldi r2, %(h_base)d
        ldi r3, 0              ; accumulator
        ldi r4, %(taps)d
inner:  ld r5, *1              ; x[n-k]
        ld r7, *2              ; h[k]
        mul r5, r5, r7
        add r3, r3, r5
        sub r1, r1, r0
        add r2, r2, r0
        sub r4, r4, r0
        brnz r4, inner
        ldi r5, %(y_base)d
        add r5, r5, r6
        st r3, *5
        add r6, r6, r0
        ldi r5, %(samples)d
        sub r5, r5, r6
        brnz r5, outer
        halt
""" % {
        "x_words": _word_lines(padded),
        "h_words": _word_lines(h),
        "h_base": h_base,
        "x_start": x_base + taps - 1,
        "y_base": y_base,
        "samples": samples,
        "taps": taps,
    }
    app = Application(name="fir_tinydsp", model_name="tinydsp", source=source)
    app.expected_memory = "dmem"
    app.output_base = y_base
    return app
