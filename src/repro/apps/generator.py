"""Deterministic synthetic program generator.

Produces self-checking programs of a requested size and branch density:
every generated instruction feeds an architectural checksum whose
expected value is computed alongside generation, so a single memory cell
proves that the whole program executed correctly on any simulator.

Used by the compilation-speed sweep (E1 needs programs of many sizes)
and the scheduling ablation (E6 sweeps branch density: on a flushing
pipeline like tinydsp every taken branch is a control hazard that forces
the statically scheduled simulator back to its dynamic path, while on
the exposed-pipeline c62x branches are ordinary operations).
"""

from __future__ import annotations

from repro.apps.base import Application, lcg
from repro.apps.golden import wrap32
from repro.support.errors import ReproError

_TINY_OUT = 250
_C62X_OUT = 0


def build_synthetic(model_name="c62x", target_words=512, branch_density=0.0,
                    loop_iterations=16, seed=101):
    """Build a synthetic checksum program.

    ``target_words`` sizes the loop body; ``branch_density`` is the
    approximate fraction of body instructions that are taken branches
    (to the fall-through point, so the checksum is unaffected but the
    control machinery is exercised); the body repeats
    ``loop_iterations`` times.
    """
    if not 0.0 <= branch_density <= 0.5:
        raise ReproError("branch_density must be in [0, 0.5]")
    if model_name == "tinydsp":
        return _synthetic_tinydsp(
            target_words, branch_density, loop_iterations, seed
        )
    if model_name == "c62x":
        return _synthetic_c62x(
            target_words, branch_density, loop_iterations, seed
        )
    raise ReproError("no synthetic generator for model %r" % model_name)


def _body_ops(rng, count, amplitude):
    """Random checksum op stream: (kind, constant) pairs."""
    ops = []
    for _ in range(count):
        choice = rng() % 3
        constant = (rng() % (2 * amplitude + 1)) - amplitude
        ops.append(("add", constant) if choice == 0 else
                   ("xor", constant) if choice == 1 else
                   ("shl", 1))
    return ops


def _apply_ops(ops, iterations):
    checksum = 0
    for _ in range(iterations):
        for kind, constant in ops:
            if kind == "add":
                checksum = wrap32(checksum + constant)
            elif kind == "xor":
                checksum = wrap32(checksum ^ constant)
            else:
                checksum = wrap32(checksum << 1)
    return checksum


def _synthetic_tinydsp(target_words, branch_density, loop_iterations, seed):
    rng = lcg(seed)
    # Prologue+epilogue overhead: 5 words; each checksum op costs two
    # words (ldi + op) except shl (one); branches cost one.
    lines = []
    ops = []
    words = 0
    label_index = 0
    budget = max(8, target_words - 8)
    threshold = int(branch_density * 0x7FFFFFFF)
    while words < budget:
        if rng() < threshold and words + 1 < budget:
            # Unconditional taken branch to the fall-through point: a
            # pure control hazard (flush + refetch) with no data effect.
            lines.append("        br tbl%d" % label_index)
            lines.append("tbl%d:" % label_index)
            label_index += 1
            words += 1
            continue
        choice = rng() % 3
        constant = (rng() % 255) - 127
        if choice == 0 and words + 2 <= budget:
            lines.append("        ldi r2, %d" % constant)
            lines.append("        add r3, r3, r2")
            ops.append(("add", constant))
            words += 2
        elif choice == 1 and words + 2 <= budget:
            lines.append("        ldi r2, %d" % constant)
            lines.append("        xor r3, r3, r2")
            ops.append(("xor", constant))
            words += 2
        else:
            lines.append("        shl r3, r3, 1")
            ops.append(("shl", 1))
            words += 1
    checksum = _apply_ops(ops, loop_iterations)
    if loop_iterations > 127:
        raise ReproError("tinydsp synthetic loops are limited to 127")
    source = """
        .entry start
start:  ldi r0, 1
        ldi r3, 0
        ldi r6, %(iters)d
body:
%(body)s
        sub r6, r6, r0
        brnz r6, body
        st r3, %(out)d
        halt
""" % {"iters": loop_iterations, "body": "\n".join(lines), "out": _TINY_OUT}
    app = Application(
        name="synthetic_tinydsp_w%d_b%03d"
        % (target_words, int(branch_density * 100)),
        model_name="tinydsp",
        source=source,
        description="synthetic checksum loop (%d body words, %.0f%% "
        "branches, %d iterations)"
        % (target_words, branch_density * 100, loop_iterations),
    )
    app.expected_memory = "dmem"
    app.output_base = _TINY_OUT
    app.expect("dmem", _TINY_OUT, [checksum])
    return app


def _synthetic_c62x(target_words, branch_density, loop_iterations, seed):
    rng = lcg(seed)
    lines = []
    ops = []
    words = 0
    label_index = 0
    budget = max(16, target_words - 16)
    threshold = int(branch_density * 0x7FFFFFFF)
    while words < budget:
        if rng() < threshold and words + 7 <= budget:
            # A taken branch targeting the word right after its five
            # delay slots: the slots execute exactly once, so the
            # checksum is unaffected.  Exactly five single-word
            # instructions fill the slots.
            lines.append("        b cbl%d" % label_index)
            words += 1
            slot_words = 0
            while slot_words < 5:
                if slot_words <= 3 and rng() % 2:
                    slot_words += _emit_c62x_op(lines, ops, rng)
                else:
                    lines.append("        shl a15, a15, 1")
                    ops.append(("shl", 1))
                    slot_words += 1
            words += slot_words
            lines.append("cbl%d:" % label_index)
            label_index += 1
            continue
        words += _emit_c62x_op(lines, ops, rng)
    checksum = _apply_ops(ops, loop_iterations)
    source = """
        .entry start
start:  mvk a15, 0
        mvk a1, %(iters)d
body:
%(body)s
        addk a1, -1
        bnz a1, body
        nop
        nop
        nop
        nop
        nop
        mvk b8, %(out)d
        stw a15, b8, 0
        halt
""" % {"iters": loop_iterations, "body": "\n".join(lines), "out": _C62X_OUT}
    app = Application(
        name="synthetic_c62x_w%d_b%03d"
        % (target_words, int(branch_density * 100)),
        model_name="c62x",
        source=source,
        description="synthetic checksum loop (%d body words, %.0f%% "
        "branches, %d iterations)"
        % (target_words, branch_density * 100, loop_iterations),
    )
    app.expected_memory = "dmem"
    app.output_base = _C62X_OUT
    app.expect("dmem", _C62X_OUT, [checksum])
    return app


def _emit_c62x_op(lines, ops, rng):
    choice = rng() % 3
    constant = (rng() % 65535) - 32767
    if choice == 0:
        lines.append("        mvk b2, %d" % constant)
        lines.append("        add a15, a15, b2")
        ops.append(("add", constant))
        return 2
    if choice == 1:
        lines.append("        mvk b2, %d" % constant)
        lines.append("        xor a15, a15, b2")
        ops.append(("xor", constant))
        return 2
    lines.append("        shl a15, a15, 1")
    ops.append(("shl", 1))
    return 1
