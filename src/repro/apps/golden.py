"""Golden pure-Python reference models for the benchmark kernels.

These are *independent* implementations of the DSP algorithms with the
exact integer semantics of the target programs (32-bit wrapping
accumulation, 16-bit saturation where the assembly saturates).  A
simulator run is correct iff its memory matches these results.
"""

from __future__ import annotations


def wrap32(value):
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def sat16(value):
    if value > 32767:
        return 32767
    if value < -32768:
        return -32768
    return value


def fir_reference(samples, taps):
    """FIR with 32-bit wrapping accumulation of 16x16 products."""
    output = []
    for n in range(len(samples)):
        acc = 0
        for k, coefficient in enumerate(taps):
            if n - k >= 0:
                acc = wrap32(acc + samples[n - k] * coefficient)
        output.append(acc)
    return output


# -- IMA/DVI-style ADPCM ------------------------------------------------------

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def adpcm_encode_reference(samples):
    """Branch-free IMA ADPCM encoder matching the target assembly.

    Returns (codes, reconstructed) where ``reconstructed`` is the
    predictor state after each sample (what a decoder would produce).
    """
    valpred = 0
    index = 0
    codes = []
    reconstructed = []
    for sample in samples:
        step = STEP_TABLE[index]
        diff = sample - valpred
        sign = 1 if diff < 0 else 0
        diff = abs(diff)

        bit2 = 1 if diff >= step else 0
        diff -= bit2 * step
        step1 = step >> 1
        bit1 = 1 if diff >= step1 else 0
        diff -= bit1 * step1
        step2 = step >> 2
        bit0 = 1 if diff >= step2 else 0

        code = sign * 8 + bit2 * 4 + bit1 * 2 + bit0
        vpdiff = (step >> 3) + bit2 * step + bit1 * step1 + bit0 * step2
        valpred = valpred + vpdiff - 2 * sign * vpdiff
        valpred = sat16(valpred)

        index = index + INDEX_TABLE[code]
        if index < 0:
            index = 0
        if index > 88:
            index = 88

        codes.append(code)
        reconstructed.append(valpred)
    return codes, reconstructed


def adpcm_decode_reference(codes):
    """IMA ADPCM decoder matching the encoder's predictor arithmetic."""
    valpred = 0
    index = 0
    output = []
    for code in codes:
        step = STEP_TABLE[index]
        sign = (code >> 3) & 1
        bit2 = (code >> 2) & 1
        bit1 = (code >> 1) & 1
        bit0 = code & 1
        vpdiff = (step >> 3) + bit2 * step + bit1 * (step >> 1) \
            + bit0 * (step >> 2)
        valpred = valpred + vpdiff - 2 * sign * vpdiff
        valpred = sat16(valpred)
        index = index + INDEX_TABLE[code]
        if index < 0:
            index = 0
        if index > 88:
            index = 88
        output.append(valpred)
    return output


# -- GSM-like kernels -----------------------------------------------------------


def autocorrelation_reference(samples, max_lag):
    """acf[k] = sum_i s[i] * s[i+k], 32-bit wrapping (GSM 06.10 step)."""
    acf = []
    for lag in range(max_lag + 1):
        acc = 0
        for i in range(len(samples) - lag):
            acc = wrap32(acc + samples[i] * samples[i + lag])
        acf.append(acc)
    return acf


def ltp_search_reference(signal, sub_start, sub_len, min_lag, max_lag):
    """Long-term-predictor lag search: arg max of cross-correlation.

    ``score(lag) = sum_j signal[sub_start+j] * signal[sub_start+j-lag]``
    over the subframe.  Returns (best_lag, best_score); ties resolve to
    the smallest lag (the assembly uses a strict greater-than update
    against an INT_MIN seed).
    """
    best_lag = min_lag
    best_score = -(1 << 31)
    for lag in range(min_lag, max_lag + 1):
        acc = 0
        for j in range(sub_len):
            acc = wrap32(
                acc + signal[sub_start + j] * signal[sub_start + j - lag]
            )
        if acc > best_score:
            best_score = acc
            best_lag = lag
    return best_lag, best_score


def hann_window_reference(samples, q15_window):
    """Pointwise windowing: (s[i] * w[i]) >> 15, like GSM pre-processing."""
    return [wrap32(s * w) >> 15 for s, w in zip(samples, q15_window)]
