"""GSM-like speech-encoder kernels in c62x assembly (third benchmark).

The paper benchmarks the full GSM 06.10 speech encoder, which "nearly
requires the whole internal memory space of the DSP".  We implement its
dominant signal-processing kernels over one 160-sample frame --

1. pre-processing window (pointwise Q15 multiply),
2. LPC autocorrelation (lags 0..8),
3. long-term-predictor lag search (cross-correlation argmax, lags
   40..120, branch-free best-update),

-- and then scale the program towards the paper's memory-filling size
with deterministic straight-line checksum sections whose expected value
is computed alongside generation (see DESIGN.md "Substitutions").

Memory map (dmem): window coefficients 0, samples 512, windowed frame
1024, acf[0..8] 2048, [best_lag, best_score] 2060, filler checksum 2080.
"""

from __future__ import annotations

from repro.apps.base import Application, lcg, lcg_samples
from repro.apps.golden import (
    autocorrelation_reference,
    hann_window_reference,
    ltp_search_reference,
    wrap32,
)
from repro.support.errors import ReproError

FRAME = 160
MAX_ACF_LAG = 8
SUB_START = 120
SUB_LEN = 40
MIN_LAG = 40
MAX_LAG = 120

WCOEF_BASE = 0
SAMPLE_BASE = 512
WINDOWED_BASE = 1024
ACF_BASE = 2048
LTP_BASE = 2060
CHECKSUM_BASE = 2080


def _word_lines(values, per_line=10):
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append("        .word " + ", ".join(str(v) for v in chunk))
    return "\n".join(lines)


def _triangle_window(length, peak=32767):
    """An integer triangular Q15 window (deterministic, no floats)."""
    half = (length - 1) / 2.0
    return [
        int(peak * (1.0 - abs(i - half) / half)) if half else peak
        for i in range(length)
    ]


_MAC_LOOP = """
%(label)s:
        ldw a5, a4, 0
        ldw b5, b4, 0
     || addk a4, 1
        addk b4, 1
        nop
        nop
        mpy a6, a5, b5
        nop
        add a7, a7, a6
        addk a1, -1
        bnz a1, %(label)s
        nop
        nop
        nop
        nop
        nop
"""


def _filler_section(words_needed, seed):
    """Straight-line checksum filler: returns (lines, final_checksum).

    The instruction mix (constant loads, adds, xors, shifts on a15/b2)
    mimics scalar DSP glue code; the checksum makes every instruction
    architecturally observable so nothing can be optimised away --
    matching values prove the whole section really executed.
    """
    rng = lcg(seed)
    lines = []
    checksum = 0
    b2 = 0
    while len(lines) < words_needed:
        choice = rng() % 4
        if choice == 0 or not lines:
            b2 = (rng() % 65536) - 32768
            lines.append("        mvk b2, %d" % b2)
        elif choice == 1:
            lines.append("        add a15, a15, b2")
            checksum = wrap32(checksum + b2)
        elif choice == 2:
            lines.append("        xor a15, a15, b2")
            checksum = wrap32(checksum ^ b2)
        else:
            lines.append("        shl a15, a15, 1")
            checksum = wrap32(checksum << 1)
    return "\n".join(lines), checksum


def build_gsm(model_name="c62x", seed=37, amplitude=4000,
              target_words=2048):
    """Build the GSM-kernel application (c62x only)."""
    if model_name != "c62x":
        raise ReproError("the GSM kernels are only generated for the c62x")
    samples = lcg_samples(seed, FRAME, amplitude)
    wcoef = _triangle_window(FRAME)
    windowed = hann_window_reference(samples, wcoef)
    acf = autocorrelation_reference(windowed, MAX_ACF_LAG)
    best_lag, best_score = ltp_search_reference(
        windowed, SUB_START, SUB_LEN, MIN_LAG, MAX_LAG
    )

    core = """
        .entry start
        .section dmem
%(wcoef_words)s
        .org %(sample_base)d
%(sample_words)s
        .section pmem

start:
; ---------------- windowing: windowed[i] = (s[i]*w[i]) >> 15 -----------
        mvk a4, %(sample_base)d
        mvk b4, %(wcoef_base)d
        mvk b3, %(windowed_base)d
        mvk a1, %(frame)d
wloop:  ldw a5, a4, 0
        ldw b5, b4, 0
     || addk a4, 1
        addk b4, 1
        nop
        nop
        mpy a6, a5, b5
        nop
        shr a6, a6, 15
        stw a6, b3, 0
        addk b3, 1
        addk a1, -1
        bnz a1, wloop
        nop
        nop
        nop
        nop
        nop

; ---------------- autocorrelation acf[k], k = 0..%(max_lag)d ------------
        mvk a3, %(n_lags)d     ; lag counter
        mvk b9, 0              ; current lag
        mvk b8, %(acf_base)d   ; output pointer
kloop:  mvk a4, %(windowed_base)d
        mvk a1, %(frame)d
        sub a1, a1, b9         ; inner count = FRAME - k
        mvk b4, %(windowed_base)d
        add b4, b4, b9
        mvk a7, 0
%(acf_inner)s
        stw a7, b8, 0
        addk b8, 1
        addk b9, 1
        addk a3, -1
        bnz a3, kloop
        nop
        nop
        nop
        nop
        nop

; ---------------- LTP lag search, lags %(min_lag)d..%(max_lag_ltp)d ------
        mvk b9, %(min_lag)d    ; lag
        mvk a2, %(lag_count)d
        mvk a10, 0
        mvkh a10, 32768        ; best score = INT_MIN
        mvk a11, 0             ; best lag
lloop:  mvk a4, %(sub_base)d
        mvk b4, %(sub_base)d
        sub b4, b4, b9
        mvk a1, %(sub_len)d
        mvk a7, 0
%(ltp_inner)s
        cmpgt b2, a7, a10      ; better score?
        sub b3, a0, b2         ; mask = -gt
        mv b6, b2
        addk b6, -1            ; nmask = gt-1
        and a10, a10, b6
        and b7, a7, b3
        or a10, a10, b7        ; best score select
        and a11, a11, b6
        and b7, b9, b3
        or a11, a11, b7        ; best lag select
        addk b9, 1
        addk a2, -1
        bnz a2, lloop
        nop
        nop
        nop
        nop
        nop
        mvk b8, %(ltp_base)d
        stw a11, b8, 0
        addk b8, 1
        stw a10, b8, 0

; ---------------- straight-line scaling sections -------------------------
        mvk a15, 0
%(filler)s
        mvk b8, %(chk_base)d
        stw a15, b8, 0
        halt
"""
    params = {
        "wcoef_words": _word_lines(wcoef),
        "sample_words": _word_lines(samples),
        "wcoef_base": WCOEF_BASE,
        "sample_base": SAMPLE_BASE,
        "windowed_base": WINDOWED_BASE,
        "acf_base": ACF_BASE,
        "ltp_base": LTP_BASE,
        "chk_base": CHECKSUM_BASE,
        "frame": FRAME,
        "max_lag": MAX_ACF_LAG,
        "n_lags": MAX_ACF_LAG + 1,
        "min_lag": MIN_LAG,
        "max_lag_ltp": MAX_LAG,
        "lag_count": MAX_LAG - MIN_LAG + 1,
        "sub_base": WINDOWED_BASE + SUB_START,
        "sub_len": SUB_LEN,
        "acf_inner": _MAC_LOOP % {"label": "ailoop"},
        "ltp_inner": _MAC_LOOP % {"label": "liloop"},
        "filler": "",
    }
    core_words = _count_instruction_words(core % params)
    filler_words = max(0, target_words - core_words - 4)
    filler_lines, checksum = _filler_section(filler_words, seed + 1)
    params["filler"] = filler_lines
    source = core % params

    app = Application(
        name="gsm_c62x",
        model_name="c62x",
        source=source,
        description=(
            "GSM 06.10 kernels (window + autocorrelation + LTP search) "
            "over a %d-sample frame, scaled to ~%d program words"
            % (FRAME, target_words)
        ),
    )
    app.expected_memory = "dmem"
    app.output_base = ACF_BASE
    app.expect("dmem", WINDOWED_BASE, windowed)
    app.expect("dmem", ACF_BASE, acf)
    app.expect("dmem", LTP_BASE, [best_lag, best_score])
    app.expect("dmem", CHECKSUM_BASE, [checksum])
    return app


def _count_instruction_words(source):
    """Count program-memory words the assembly will occupy."""
    count = 0
    in_pmem = True
    for raw in source.splitlines():
        line = raw.split(";")[0].strip()
        if not line:
            continue
        if line.startswith(".section"):
            in_pmem = line.endswith("pmem")
            continue
        if line.startswith("."):
            continue
        if line.endswith(":"):
            continue
        if ":" in line:
            line = line.split(":", 1)[1].strip()
            if not line:
                continue
        if line.startswith("||"):
            line = line[2:].strip()
        if in_pmem and line:
            count += 1
    return count
