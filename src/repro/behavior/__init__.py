"""The C-like behaviour language embedded in BEHAVIOR/EXPRESSION sections.

Two independent back-ends execute behaviours:

* :mod:`repro.behavior.evaluator` -- a tree-walking interpreter used by
  the interpretive simulator (everything resolved at run-time),
* :mod:`repro.behavior.codegen` -- a Python source generator used by the
  simulation compiler (operands constant-folded, variants resolved at
  simulation-compile time).

Having two implementations that must agree bit-for-bit is both the
paper's accuracy claim ("without any loss in accuracy") and a strong
internal consistency check.
"""

from repro.behavior.ast import (
    Assign,
    Binary,
    Block,
    Call,
    ExprStmt,
    If,
    Index,
    IntLit,
    LocalDecl,
    Name,
    Ternary,
    Unary,
    While,
)
from repro.behavior.parser import parse_expression, parse_statements

__all__ = [
    "Assign",
    "Binary",
    "Block",
    "Call",
    "ExprStmt",
    "If",
    "Index",
    "IntLit",
    "LocalDecl",
    "Name",
    "Ternary",
    "Unary",
    "While",
    "parse_expression",
    "parse_statements",
]
