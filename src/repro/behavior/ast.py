"""AST for the behaviour language.

The tree is deliberately small: integer expressions, assignments,
conditionals and while loops.  Identifiers are unresolved at this level;
binding to operands, resources and intrinsics happens in the back-ends,
because the same behaviour is executed generically by the interpretive
simulator and specialised per program instruction by the simulation
compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.support.diagnostics import SourceLocation, UNKNOWN_LOCATION


@dataclass(frozen=True)
class Node:
    pass


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class IntLit(Node):
    value: int
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class Name(Node):
    """An unresolved identifier (operand, resource, local or constant)."""

    name: str
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class Index(Node):
    """``base[index]`` -- register-file or memory element access."""

    base: str
    index: Node
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class Unary(Node):
    op: str  # one of: - ~ !
    operand: Node
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class Binary(Node):
    op: str
    left: Node
    right: Node
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class Ternary(Node):
    condition: Node
    if_true: Node
    if_false: Node
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class Call(Node):
    """``name(args...)`` -- intrinsic call or group-behaviour invocation."""

    name: str
    args: tuple
    location: SourceLocation = UNKNOWN_LOCATION


# -- statements --------------------------------------------------------------


@dataclass(frozen=True)
class Assign(Node):
    """``target op= value`` where target is a Name or Index."""

    target: Node
    op: str  # "=", "+=", "-=", ...
    value: Node
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class ExprStmt(Node):
    expression: Node
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class LocalDecl(Node):
    """``int name = init;`` -- declares a behaviour-local variable."""

    type_name: str
    name: str
    init: Optional[Node]
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class If(Node):
    condition: Node
    then_body: tuple
    else_body: tuple
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class While(Node):
    condition: Node
    body: tuple
    location: SourceLocation = UNKNOWN_LOCATION


@dataclass(frozen=True)
class Block(Node):
    body: tuple
    location: SourceLocation = UNKNOWN_LOCATION


def walk(node):
    """Yield ``node`` and every descendant node, depth-first."""
    yield node
    for field_name in getattr(node, "__dataclass_fields__", {}):
        value = getattr(node, field_name)
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)


def referenced_names(nodes):
    """All identifiers referenced by the given statement/expression nodes."""
    names = set()
    for root in nodes:
        for node in walk(root):
            if isinstance(node, Name):
                names.add(node.name)
            elif isinstance(node, Index):
                names.add(node.base)
            elif isinstance(node, Call):
                names.add(node.name)
    return names
