"""Operation instantiation: behaviours become specialised code via SimIR.

Given a behaviour and a fully decoded operation instance, the code
generator *lowers* into the typed micro-operation IR
(:mod:`repro.simcc.ir`) in which

* coding-field operands are folded to integer constants,
* group operands are replaced by the selected sub-operation's inlined
  EXPRESSION (e.g. ``dst`` becomes a read/write of ``R[3]``),
* decode-time IF/SWITCH variants have already been resolved away,
* resource writes carry the declared width of their target,

then runs the IR pass pipeline (constant folding, canonicalisation
coalescing, dead-write elimination, helper hoisting) and renders the
result through one of the IR backends.  The paper generates C++ here;
we generate Python and ``compile``/``exec`` it, preserving the
structure (generate once per program instruction, then run the
compiled artefact).  The arithmetic must agree bit-for-bit with
:mod:`repro.behavior.evaluator` -- both canonicalise writes through
:func:`repro.support.bitutils.canonicalize`.
"""

from __future__ import annotations

from repro.support.bitutils import canonical_source


def canonical_write_source(dtype, value_source):
    """Source text canonicalising ``value_source`` into ``dtype``.

    Thin wrapper over :func:`repro.support.bitutils.canonical_source`,
    the single source of truth for the write-canonicalisation formula.
    """
    return canonical_source(value_source, dtype.width, dtype.signed)


class BehaviorCodegen:
    """Generates specialised Python callables for decoded behaviours.

    The façade the simulation layers program against: lowering, pass
    pipeline and backend selection live in :mod:`repro.simcc.ir`; this
    class wires them together and owns the decode-variant cache shared
    with the analysis passes.
    """

    def __init__(self, model, variant_cache=None):
        self._model = model
        self._variant_cache = variant_cache if variant_cache is not None else {}

    # -- public entry points ---------------------------------------------

    def lower_function(self, name, scheduled_items, optimize=True,
                       stats=None):
        """Lower (node, behaviour) pairs into one optimised
        :class:`~repro.simcc.ir.IRFunction`.

        ``scheduled_items`` run back to back (one stage's micro-ops, or
        a whole statically scheduled column).  With ``optimize=False``
        the raw lowered form is returned (the IR dump uses this to show
        before/after).
        """
        from repro.simcc import ir

        lowerer = ir.Lowerer(self._model, self._variant_cache)
        func = ir.IRFunction(name=name, ops=lowerer.lower_items(scheduled_items))
        if optimize:
            func = ir.run_passes(func, self._model, stats=stats)
        return func

    def function_source(self, name, scheduled_items, bind=None):
        """A complete ``def`` executing the given scheduled behaviours.

        ``bind`` maps the state/control parameters to default-argument
        expressions (for closure-free binding); None produces a plain
        ``(s, c)`` signature for emitted modules.
        """
        from repro.simcc import ir

        func = self.lower_function(name, scheduled_items)
        return ir.render_function_source(func, bind=bind)

    def compile_function(self, name, scheduled_items, state, control):
        """Generate, compile and return a no-argument callable bound to
        ``state`` and ``control`` via default arguments."""
        from repro.simcc import ir

        func = self.lower_function(name, scheduled_items)
        return ir.PythonExecBackend().compile_function(func, state, control)
