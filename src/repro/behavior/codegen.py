"""Python code generation for behaviours: the *operation instantiation*
step of compiled simulation.

Given a behaviour and a fully decoded operation instance, the generator
emits specialised Python source in which

* coding-field operands are folded to integer literals,
* group operands are replaced by the selected sub-operation's inlined
  EXPRESSION (e.g. ``dst`` becomes ``s.R[3]``),
* decode-time IF/SWITCH variants have already been resolved away,
* resource writes carry inline canonicalisation for the declared width.

The paper generates C++ here; we generate Python and ``compile``/``exec``
it, preserving the structure (generate once per program instruction,
then run the compiled artefact).  The arithmetic must agree bit-for-bit
with :mod:`repro.behavior.evaluator`.
"""

from __future__ import annotations

from repro.behavior import ast
from repro.behavior.runtime import (
    CODEGEN_GLOBALS,
    CODEGEN_INTRINSIC_NAMES,
    CONTROL_INTRINSICS,
)
from repro.support.errors import BehaviorError

_LOCAL_PREFIX = "_l_"

_CMP_OPS = frozenset(["==", "!=", "<", ">", "<=", ">="])
_PLAIN_OPS = frozenset(["+", "-", "*", "&", "|", "^", "<<", ">>"])


def canonical_write_source(dtype, value_source):
    """Source text canonicalising ``value_source`` into ``dtype``."""
    if dtype.signed:
        half = 1 << (dtype.width - 1)
        return "((%s + %d) & %d) - %d" % (value_source, half, dtype.mask, half)
    return "(%s) & %d" % (value_source, dtype.mask)


class BehaviorCodegen:
    """Generates specialised Python source for decoded behaviours."""

    def __init__(self, model, variant_cache=None):
        self._model = model
        self._variant_cache = variant_cache if variant_cache is not None else {}

    # -- public entry points ---------------------------------------------

    def function_source(self, name, scheduled_items, bind=None):
        """A complete ``def`` executing the given scheduled behaviours.

        ``scheduled_items`` is an iterable of (node, behavior) pairs that
        run back to back (one stage's micro-ops, or a whole statically
        scheduled column).  ``bind`` maps the state/control parameters to
        default-argument expressions (for closure-free binding); None
        produces a plain ``(s, c)`` signature for emitted modules.
        """
        if bind is None:
            header = "def %s(s, c):" % name
        else:
            header = "def %s(s=%s, c=%s):" % (name, bind[0], bind[1])
        lines = [header]
        body = []
        for node, behavior in scheduled_items:
            body.extend(self.statements_source(behavior.statements, node, 1))
        if not body:
            body = ["    pass"]
        lines.extend(body)
        return "\n".join(lines) + "\n"

    def compile_function(self, name, scheduled_items, state, control):
        """Generate, compile and return a no-argument callable bound to
        ``state`` and ``control`` via default arguments."""
        source = self.function_source(name, scheduled_items, bind=("__state", "__ctrl"))
        namespace = dict(CODEGEN_GLOBALS)
        namespace["__state"] = state
        namespace["__ctrl"] = control
        exec(compile(source, "<generated:%s>" % name, "exec"), namespace)
        return namespace[name]

    # -- statements --------------------------------------------------------

    def statements_source(self, statements, node, indent):
        lines = []
        for stmt in statements:
            lines.extend(self._stmt(stmt, node, indent))
        if not lines:
            lines = ["    " * indent + "pass"]
        return lines

    def _stmt(self, stmt, node, indent):
        pad = "    " * indent
        if isinstance(stmt, ast.Assign):
            return [pad + self._assign_source(stmt, node)]
        if isinstance(stmt, ast.ExprStmt):
            return self._expr_stmt(stmt.expression, node, indent)
        if isinstance(stmt, ast.LocalDecl):
            init = "0"
            if stmt.init is not None:
                init = self._expr(stmt.init, node)
            return [pad + "%s%s = %s" % (_LOCAL_PREFIX, stmt.name, init)]
        if isinstance(stmt, ast.If):
            lines = [pad + "if %s:" % self._expr(stmt.condition, node)]
            lines.extend(self.statements_source(stmt.then_body, node, indent + 1))
            if stmt.else_body:
                lines.append(pad + "else:")
                lines.extend(
                    self.statements_source(stmt.else_body, node, indent + 1)
                )
            return lines
        if isinstance(stmt, ast.While):
            lines = [pad + "while %s:" % self._expr(stmt.condition, node)]
            lines.extend(self.statements_source(stmt.body, node, indent + 1))
            return lines
        if isinstance(stmt, ast.Block):
            return self.statements_source(stmt.body, node, indent)
        raise BehaviorError("cannot generate code for %r" % (stmt,), None)

    def _expr_stmt(self, expr, node, indent):
        pad = "    " * indent
        if isinstance(expr, ast.Call):
            control_method = CONTROL_INTRINSICS.get(expr.name)
            if control_method is not None:
                args = ", ".join(self._expr(a, node) for a in expr.args)
                return [pad + "c.%s(%s)" % (control_method, args)]
            operand = self._operand(expr.name, node)
            if operand is not None and operand[0] == "child":
                # Inline the selected sub-operation's behaviours.
                child = operand[1]
                variant = self._variant(child)
                lines = []
                for behavior in variant.behaviors:
                    lines.extend(
                        self.statements_source(behavior.statements, child,
                                               indent)
                    )
                return lines or [pad + "pass"]
            if expr.name in CODEGEN_INTRINSIC_NAMES:
                return []  # pure call in statement position: no effect
        # Generic expression statement: evaluate for completeness.
        return [pad + self._expr(expr, node)]

    def _assign_source(self, stmt, node):
        value_src = self._expr(stmt.value, node)
        target_src, dtype = self._lvalue(stmt.target, node)
        if stmt.op != "=":
            value_src = self._binary_source(
                stmt.op[:-1], target_src, "(%s)" % value_src
            )
        if dtype is None:  # local variable: unbounded
            return "%s = %s" % (target_src, value_src)
        return "%s = %s" % (target_src, canonical_write_source(dtype, value_src))

    def _lvalue(self, target, node):
        """Return (target source, dtype-or-None for locals)."""
        if isinstance(target, ast.Name):
            name = target.name
            operand = self._operand(name, node)
            if operand is not None:
                kind, payload = operand
                if kind == "label":
                    raise BehaviorError(
                        "cannot assign to coding field %r" % name,
                        target.location,
                    )
                child = payload
                variant = self._variant(child)
                if variant.expression is None:
                    raise BehaviorError(
                        "operand %r (operation %r) has no EXPRESSION to "
                        "assign through" % (name, child.operation.name),
                        target.location,
                    )
                return self._lvalue(variant.expression.expression, child)
            reg = self._model.registers.get(name)
            if reg is not None and not reg.is_file:
                return "s.%s" % name, reg.dtype
            # Anything else writable by name is a behaviour-local.
            return _LOCAL_PREFIX + name, None
        if isinstance(target, ast.Index):
            base = target.base
            index_src = self._expr(target.index, node)
            reg = self._model.registers.get(base)
            if reg is not None and reg.is_file:
                return "s.%s[%s]" % (base, index_src), reg.dtype
            mem = self._model.memories.get(base)
            if mem is not None:
                return "s.%s[%s]" % (base, index_src), mem.dtype
            raise BehaviorError(
                "cannot index-assign to %r" % base, target.location
            )
        raise BehaviorError("invalid assignment target %r" % (target,), None)

    # -- expressions --------------------------------------------------------

    def _variant(self, node):
        # Keyed by identity, with the node pinned in the entry: ids are
        # only unique among live objects, and analysis passes feed this
        # cache transient nodes whose ids would otherwise be recycled.
        key = id(node)
        entry = self._variant_cache.get(key)
        if entry is None or entry[0] is not node:
            entry = (node, node.variant(self._model))
            self._variant_cache[key] = entry
        return entry[1]

    def _operand(self, name, node):
        if name in node.fields:
            return ("label", node.fields[name])
        if name in node.children:
            return ("child", node.children[name])
        if name in node.operation.references:
            return node.lookup(name)
        return None

    def _expr(self, expr, node):
        if isinstance(expr, ast.IntLit):
            return repr(expr.value)
        if isinstance(expr, ast.Name):
            return self._name_source(expr, node)
        if isinstance(expr, ast.Index):
            base = expr.base
            model = self._model
            reg = model.registers.get(base)
            mem = model.memories.get(base)
            if (reg is not None and reg.is_file) or mem is not None:
                return "s.%s[%s]" % (base, self._expr(expr.index, node))
            raise BehaviorError(
                "%r is not an indexable resource" % base, expr.location
            )
        if isinstance(expr, ast.Unary):
            inner = self._expr(expr.operand, node)
            if expr.op == "-":
                return "(-%s)" % inner
            if expr.op == "~":
                return "(~%s)" % inner
            return "(0 if %s else 1)" % inner
        if isinstance(expr, ast.Binary):
            return self._binary(expr, node)
        if isinstance(expr, ast.Ternary):
            return "((%s) if (%s) else (%s))" % (
                self._expr(expr.if_true, node),
                self._expr(expr.condition, node),
                self._expr(expr.if_false, node),
            )
        if isinstance(expr, ast.Call):
            return self._call_source(expr, node)
        raise BehaviorError("cannot generate code for %r" % (expr,), None)

    def _name_source(self, expr, node):
        name = expr.name
        operand = self._operand(name, node)
        if operand is not None:
            kind, payload = operand
            if kind == "label":
                return repr(payload)  # constant folding of coding fields
            child = payload
            variant = self._variant(child)
            if variant.expression is None:
                raise BehaviorError(
                    "operand %r (operation %r) has no EXPRESSION"
                    % (name, child.operation.name),
                    expr.location,
                )
            return "(%s)" % self._expr(variant.expression.expression, child)
        reg = self._model.registers.get(name)
        if reg is not None:
            if reg.is_file:
                raise BehaviorError(
                    "register file %r used without index" % name,
                    expr.location,
                )
            return "s.%s" % name
        if name in self._model.config.defines:
            return repr(self._model.config.defines[name])
        # Otherwise this must be a behaviour-local variable.
        return _LOCAL_PREFIX + name

    def _binary(self, expr, node):
        left = self._expr(expr.left, node)
        right = self._expr(expr.right, node)
        return self._binary_source(expr.op, left, right)

    def _binary_source(self, op, left, right):
        if op in _PLAIN_OPS:
            return "(%s %s %s)" % (left, op, right)
        if op in _CMP_OPS:
            return "(1 if %s %s %s else 0)" % (left, op, right)
        if op == "/":
            return "__idiv(%s, %s)" % (left, right)
        if op == "%":
            return "__imod(%s, %s)" % (left, right)
        if op == "&&":
            return "(1 if (%s and %s) else 0)" % (left, right)
        if op == "||":
            return "(1 if (%s or %s) else 0)" % (left, right)
        raise BehaviorError("unknown binary operator %r" % op, None)

    def _call_source(self, expr, node):
        mangled = CODEGEN_INTRINSIC_NAMES.get(expr.name)
        if mangled is not None:
            args = ", ".join(self._expr(a, node) for a in expr.args)
            return "%s(%s)" % (mangled, args)
        control_method = CONTROL_INTRINSICS.get(expr.name)
        if control_method is not None:
            args = ", ".join(self._expr(a, node) for a in expr.args)
            return "c.%s(%s)" % (control_method, args)
        operand = self._operand(expr.name, node)
        if operand is not None and operand[0] == "child":
            raise BehaviorError(
                "sub-operation call %r() is only allowed as a standalone "
                "statement" % expr.name,
                expr.location,
            )
        raise BehaviorError(
            "unknown callable %r in behaviour" % expr.name, expr.location
        )
