"""Tree-walking evaluator for behaviour ASTs.

This back-end does *everything at run-time*: operand values are looked
up in the decoded node, group operands delegate to the selected
sub-operation's EXPRESSION, and IF/SWITCH variants are resolved on each
execution (unless a variant cache is supplied -- the compiled level-2
simulator reuses the evaluator with pre-resolved variants).

The arithmetic must agree bit-for-bit with the code generator
(:mod:`repro.behavior.codegen`); both use unbounded Python integers with
C-style division and 0/1 booleans, and canonicalise on resource writes.
"""

from __future__ import annotations

from repro.behavior import ast
from repro.behavior.runtime import (
    CONTROL_INTRINSICS,
    PURE_INTRINSICS,
    idiv,
    imod,
)
from repro.support.errors import BehaviorError, SimulationError

_MAX_LOOP_ITERATIONS = 1 << 22


class EvalContext:
    """Execution context for one behaviour invocation.

    ``variant_cache`` maps DecodedNode id -> (node, resolved variant);
    pass a persistent dict to move variant resolution to compile time
    (level 2), or None to resolve on every execution (interpretive).
    The entry pins the node: ids are only unique among live objects,
    and the same dict may be shared with a
    :class:`repro.behavior.codegen.BehaviorCodegen`.
    """

    __slots__ = ("state", "control", "model", "variant_cache")

    def __init__(self, state, control, model, variant_cache=None):
        self.state = state
        self.control = control
        self.model = model
        self.variant_cache = variant_cache

    def variant_of(self, node):
        cache = self.variant_cache
        if cache is None:
            return node.variant(self.model)
        key = id(node)
        entry = cache.get(key)
        if entry is None or entry[0] is not node:
            entry = (node, node.variant(self.model))
            cache[key] = entry
        return entry[1]


def execute_behavior(statements, node, ctx):
    """Execute behaviour ``statements`` in the context of ``node``."""
    _exec_statements(statements, node, ctx, {})


def evaluate_expression(expression, node, ctx):
    """Evaluate a single expression in the context of ``node``."""
    return _eval(expression, node, ctx, {})


# -- statements ---------------------------------------------------------------


def _exec_statements(statements, node, ctx, local_vars):
    for stmt in statements:
        _exec_one(stmt, node, ctx, local_vars)


def _exec_one(stmt, node, ctx, local_vars):
    if isinstance(stmt, ast.Assign):
        _exec_assign(stmt, node, ctx, local_vars)
    elif isinstance(stmt, ast.ExprStmt):
        _eval(stmt.expression, node, ctx, local_vars)
    elif isinstance(stmt, ast.LocalDecl):
        value = 0
        if stmt.init is not None:
            value = _eval(stmt.init, node, ctx, local_vars)
        local_vars[stmt.name] = value
    elif isinstance(stmt, ast.If):
        if _eval(stmt.condition, node, ctx, local_vars):
            _exec_statements(stmt.then_body, node, ctx, local_vars)
        else:
            _exec_statements(stmt.else_body, node, ctx, local_vars)
    elif isinstance(stmt, ast.While):
        iterations = 0
        while _eval(stmt.condition, node, ctx, local_vars):
            _exec_statements(stmt.body, node, ctx, local_vars)
            iterations += 1
            if iterations >= _MAX_LOOP_ITERATIONS:
                raise SimulationError(
                    "behaviour while-loop exceeded %d iterations"
                    % _MAX_LOOP_ITERATIONS
                )
    elif isinstance(stmt, ast.Block):
        _exec_statements(stmt.body, node, ctx, local_vars)
    else:
        raise BehaviorError("unknown statement %r" % (stmt,), None)


def _exec_assign(stmt, node, ctx, local_vars):
    value = _eval(stmt.value, node, ctx, local_vars)
    if stmt.op != "=":
        current = _eval(stmt.target, node, ctx, local_vars)
        value = _apply_binary(stmt.op[:-1], current, value)
    _store(stmt.target, value, node, ctx, local_vars)


def _store(target, value, node, ctx, local_vars):
    if isinstance(target, ast.Name):
        name = target.name
        if name in local_vars:
            local_vars[name] = value
            return
        operand = _resolve_operand(name, node)
        if operand is not None:
            kind, payload = operand
            if kind == "label":
                raise BehaviorError(
                    "cannot assign to coding field %r" % name, target.location
                )
            child = payload
            child_variant = ctx.variant_of(child)
            if child_variant.expression is None:
                raise BehaviorError(
                    "operand %r (operation %r) has no EXPRESSION to assign "
                    "through" % (name, child.operation.name),
                    target.location,
                )
            _store(
                child_variant.expression.expression, value, child, ctx, {}
            )
            return
        state = ctx.state
        reg = ctx.model.registers.get(name)
        if reg is not None and not reg.is_file:
            setattr(state, name, reg.dtype.canonical(value))
            return
        raise BehaviorError(
            "cannot assign to %r" % name, target.location
        )
    if isinstance(target, ast.Index):
        base = target.base
        index = _eval(target.index, node, ctx, local_vars)
        model = ctx.model
        reg = model.registers.get(base)
        if reg is not None and reg.is_file:
            _checked_store(
                getattr(ctx.state, base), index, reg.dtype.canonical(value),
                base,
            )
            return
        mem = model.memories.get(base)
        if mem is not None:
            _checked_store(
                getattr(ctx.state, base), index, mem.dtype.canonical(value),
                base,
            )
            return
        raise BehaviorError(
            "cannot index-assign to %r" % base, target.location
        )
    raise BehaviorError("invalid assignment target %r" % (target,), None)


def _checked_store(storage, index, value, name):
    if index < 0 or index >= len(storage):
        raise SimulationError(
            "index %d out of range for %r (size %d)" % (index, name,
                                                        len(storage))
        )
    storage[index] = value


# -- expressions --------------------------------------------------------------


def _resolve_operand(name, node):
    """Resolve ``name`` as an operand of ``node`` (or via REFERENCE)."""
    if name in node.fields:
        return ("label", node.fields[name])
    if name in node.children:
        return ("child", node.children[name])
    if name in node.operation.references:
        return node.lookup(name)
    return None


def _eval(expr, node, ctx, local_vars):
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.Name):
        return _eval_name(expr, node, ctx, local_vars)
    if isinstance(expr, ast.Index):
        return _eval_index(expr, node, ctx, local_vars)
    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, node, ctx, local_vars)
    if isinstance(expr, ast.Unary):
        value = _eval(expr.operand, node, ctx, local_vars)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        return 0 if value else 1  # "!"
    if isinstance(expr, ast.Ternary):
        if _eval(expr.condition, node, ctx, local_vars):
            return _eval(expr.if_true, node, ctx, local_vars)
        return _eval(expr.if_false, node, ctx, local_vars)
    if isinstance(expr, ast.Call):
        return _eval_call(expr, node, ctx, local_vars)
    raise BehaviorError("unknown expression %r" % (expr,), None)


def _eval_name(expr, node, ctx, local_vars):
    name = expr.name
    if name in local_vars:
        return local_vars[name]
    operand = _resolve_operand(name, node)
    if operand is not None:
        kind, payload = operand
        if kind == "label":
            return payload
        child = payload
        child_variant = ctx.variant_of(child)
        if child_variant.expression is None:
            raise BehaviorError(
                "operand %r (operation %r) has no EXPRESSION"
                % (name, child.operation.name),
                expr.location,
            )
        return _eval(child_variant.expression.expression, child, ctx, {})
    model = ctx.model
    reg = model.registers.get(name)
    if reg is not None:
        if reg.is_file:
            raise BehaviorError(
                "register file %r used without index" % name, expr.location
            )
        return getattr(ctx.state, name)
    if name in model.config.defines:
        return model.config.defines[name]
    raise BehaviorError("unknown name %r in behaviour" % name, expr.location)


def _eval_index(expr, node, ctx, local_vars):
    base = expr.base
    index = _eval(expr.index, node, ctx, local_vars)
    model = ctx.model
    reg = model.registers.get(base)
    storage = None
    if reg is not None and reg.is_file:
        storage = getattr(ctx.state, base)
    else:
        mem = model.memories.get(base)
        if mem is not None:
            storage = getattr(ctx.state, base)
    if storage is None:
        raise BehaviorError(
            "%r is not an indexable resource" % base, expr.location
        )
    if index < 0 or index >= len(storage):
        raise SimulationError(
            "index %d out of range for %r (size %d)"
            % (index, base, len(storage))
        )
    return storage[index]


def _apply_binary(op, left, right):
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return idiv(left, right)
    if op == "%":
        return imod(left, right)
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    raise BehaviorError("unknown binary operator %r" % op, None)


def _eval_binary(expr, node, ctx, local_vars):
    op = expr.op
    if op == "&&":
        left = _eval(expr.left, node, ctx, local_vars)
        if not left:
            return 0
        return 1 if _eval(expr.right, node, ctx, local_vars) else 0
    if op == "||":
        left = _eval(expr.left, node, ctx, local_vars)
        if left:
            return 1
        return 1 if _eval(expr.right, node, ctx, local_vars) else 0
    left = _eval(expr.left, node, ctx, local_vars)
    right = _eval(expr.right, node, ctx, local_vars)
    return _apply_binary(op, left, right)


def _eval_call(expr, node, ctx, local_vars):
    name = expr.name
    pure = PURE_INTRINSICS.get(name)
    if pure is not None:
        args = [_eval(a, node, ctx, local_vars) for a in expr.args]
        return pure(*args)
    control_method = CONTROL_INTRINSICS.get(name)
    if control_method is not None:
        args = [_eval(a, node, ctx, local_vars) for a in expr.args]
        getattr(ctx.control, control_method)(*args)
        return 0
    # Child-behaviour invocation: run the selected sub-operation's
    # behaviours inline, in the child's operand context.
    operand = _resolve_operand(name, node)
    if operand is not None and operand[0] == "child":
        child = operand[1]
        child_variant = ctx.variant_of(child)
        for behavior in child_variant.behaviors:
            _exec_statements(behavior.statements, child, ctx, {})
        return 0
    raise BehaviorError("unknown callable %r in behaviour" % name,
                        expr.location)
