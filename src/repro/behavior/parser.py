"""Parser for the behaviour language.

Operates on token lists produced by :mod:`repro.lisa.lexer` (BEHAVIOR and
EXPRESSION section bodies are captured as raw token slices by the LISA
parser).

Statement grammar::

    stmt  := type_kw ident [ = expr ] ;          (local declaration)
           | IF ( expr ) body [ ELSE body ]
           | WHILE ( expr ) body
           | { stmt* }
           | lvalue assign_op expr ;
           | expr ;
    body  := stmt | { stmt* }

Expression grammar is classic C precedence (without comma and without
pointer operators); ``?:`` is right-associative.
"""

from __future__ import annotations

from repro.behavior import ast
from repro.support.errors import BehaviorError

_TYPE_KEYWORDS = frozenset(
    ["int", "uint", "long", "ulong", "short", "ushort", "char", "uchar", "bit"]
)

_ASSIGN_OPS = frozenset(
    ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="]
)

# Binary operator precedence, loosest first (C-like).
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_IF_KEYWORDS = ("IF", "if")
_ELSE_KEYWORDS = ("ELSE", "else")
_WHILE_KEYWORDS = ("WHILE", "while")


class _Cursor:
    def __init__(self, tokens):
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead=0):
        index = self._index + ahead
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def next(self):
        token = self.peek()
        if token is None:
            raise BehaviorError("unexpected end of behaviour code")
        self._index += 1
        return token

    def at_end(self):
        return self._index >= len(self._tokens)

    def at_punct(self, text):
        token = self.peek()
        return token is not None and token.is_punct(text)

    def at_ident(self, *texts):
        token = self.peek()
        return token is not None and token.kind == "ident" and (
            not texts or token.text in texts
        )

    def accept_punct(self, text):
        if self.at_punct(text):
            return self.next()
        return None

    def expect_punct(self, text):
        token = self.peek()
        if token is None or not token.is_punct(text):
            raise BehaviorError(
                "expected %r, found %s" % (text, token),
                None if token is None else token.location,
            )
        return self.next()

    def expect_ident(self):
        token = self.peek()
        if token is None or token.kind != "ident":
            raise BehaviorError(
                "expected identifier, found %s" % token,
                None if token is None else token.location,
            )
        return self.next()


class BehaviorParser:
    """Parses behaviour statements/expressions from a token slice."""

    def __init__(self, tokens):
        self._cursor = _Cursor(tokens)

    def parse_statements(self):
        statements = []
        while not self._cursor.at_end():
            statements.append(self._parse_statement())
        return tuple(statements)

    def parse_expression_only(self):
        expr = self._parse_expression()
        if not self._cursor.at_end():
            token = self._cursor.peek()
            raise BehaviorError(
                "unexpected trailing token %s in expression" % token,
                token.location,
            )
        return expr

    # -- statements -----------------------------------------------------

    def _parse_statement(self):
        c = self._cursor
        token = c.peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.kind == "ident" and token.text in _TYPE_KEYWORDS:
            return self._parse_local_decl()
        if c.at_ident(*_IF_KEYWORDS):
            return self._parse_if()
        if c.at_ident(*_WHILE_KEYWORDS):
            return self._parse_while()
        return self._parse_assignment_or_expr()

    def _parse_block(self):
        c = self._cursor
        start = c.expect_punct("{")
        body = []
        while not c.at_punct("}"):
            if c.at_end():
                raise BehaviorError("unterminated block", start.location)
            body.append(self._parse_statement())
        c.expect_punct("}")
        return ast.Block(tuple(body), start.location)

    def _parse_local_decl(self):
        c = self._cursor
        type_token = c.next()
        name_token = c.expect_ident()
        init = None
        if c.accept_punct("="):
            init = self._parse_expression()
        c.expect_punct(";")
        return ast.LocalDecl(
            type_token.text, name_token.text, init, type_token.location
        )

    def _parse_if(self):
        c = self._cursor
        start = c.next()  # IF
        c.expect_punct("(")
        condition = self._parse_expression()
        c.expect_punct(")")
        then_body = self._parse_body()
        else_body = ()
        if c.at_ident(*_ELSE_KEYWORDS):
            c.next()
            if c.at_ident(*_IF_KEYWORDS):
                else_body = (self._parse_if(),)
            else:
                else_body = self._parse_body()
        return ast.If(condition, then_body, else_body, start.location)

    def _parse_while(self):
        c = self._cursor
        start = c.next()  # WHILE
        c.expect_punct("(")
        condition = self._parse_expression()
        c.expect_punct(")")
        body = self._parse_body()
        return ast.While(condition, body, start.location)

    def _parse_body(self):
        if self._cursor.at_punct("{"):
            block = self._parse_block()
            return block.body
        return (self._parse_statement(),)

    def _parse_assignment_or_expr(self):
        c = self._cursor
        start = c.peek()
        expr = self._parse_expression()
        token = c.peek()
        if token is not None and token.kind == "punct" and token.text in _ASSIGN_OPS:
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise BehaviorError(
                    "assignment target must be a name or an indexed name",
                    token.location,
                )
            c.next()
            value = self._parse_expression()
            c.expect_punct(";")
            return ast.Assign(expr, token.text, value, start.location)
        c.expect_punct(";")
        return ast.ExprStmt(expr, start.location)

    # -- expressions ----------------------------------------------------

    def _parse_expression(self):
        return self._parse_ternary()

    def _parse_ternary(self):
        condition = self._parse_binary(0)
        if self._cursor.accept_punct("?"):
            if_true = self._parse_expression()
            self._cursor.expect_punct(":")
            if_false = self._parse_expression()
            return ast.Ternary(condition, if_true, if_false)
        return condition

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        operators = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while True:
            token = self._cursor.peek()
            if token is None or token.kind != "punct" or token.text not in operators:
                return left
            self._cursor.next()
            right = self._parse_binary(level + 1)
            left = ast.Binary(token.text, left, right, token.location)

    def _parse_unary(self):
        c = self._cursor
        token = c.peek()
        if token is not None and token.kind == "punct" and token.text in ("-", "~", "!"):
            c.next()
            operand = self._parse_unary()
            return ast.Unary(token.text, operand, token.location)
        if token is not None and token.is_punct("+"):
            c.next()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self):
        c = self._cursor
        token = c.peek()
        if token is None:
            raise BehaviorError("unexpected end of expression")
        if token.kind == "int":
            c.next()
            return ast.IntLit(token.value, token.location)
        if token.is_punct("("):
            c.next()
            expr = self._parse_expression()
            c.expect_punct(")")
            return expr
        if token.kind == "ident":
            c.next()
            if c.at_punct("("):
                c.next()
                args = []
                if not c.at_punct(")"):
                    args.append(self._parse_expression())
                    while c.accept_punct(","):
                        args.append(self._parse_expression())
                c.expect_punct(")")
                return ast.Call(token.text, tuple(args), token.location)
            if c.at_punct("["):
                c.next()
                index = self._parse_expression()
                c.expect_punct("]")
                return ast.Index(token.text, index, token.location)
            return ast.Name(token.text, token.location)
        raise BehaviorError(
            "unexpected token %s in expression" % token, token.location
        )


def parse_statements(tokens):
    """Parse a BEHAVIOR body (token slice) into a tuple of statements."""
    return BehaviorParser(list(tokens)).parse_statements()


def parse_expression(tokens):
    """Parse an EXPRESSION body / condition (token slice) into one node."""
    return BehaviorParser(list(tokens)).parse_expression_only()
