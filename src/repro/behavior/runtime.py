"""Run-time support for behaviour execution.

Both behaviour back-ends (tree-walking evaluator and Python code
generator) share these primitives, so they agree bit-for-bit by
construction of the arithmetic; simulators differ only in *when* work
happens, which is the paper's entire point.

Intrinsics visible to behaviour code:

======== ===================================================== =========
name     meaning                                               kind
======== ===================================================== =========
sext     ``sext(v, w)`` sign-extend low ``w`` bits of ``v``    pure
zext     ``zext(v, w)`` zero-extend (mask to ``w`` bits)       pure
sat      ``sat(v, w)``  clamp to signed ``w``-bit range        pure
abs      absolute value                                        pure
min/max  two-argument minimum / maximum                        pure
flush    squash younger in-flight instructions                 control
stall    ``stall(n)`` freeze fetch for ``n`` cycles            control
halt     request end of simulation (pipeline drains)           control
======== ===================================================== =========
"""

from __future__ import annotations

from repro.support.bitutils import mask as _mask
from repro.support.bitutils import saturate_signed, sign_extend


def idiv(a, b):
    """C-style integer division (truncation toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def imod(a, b):
    """C-style remainder: sign follows the dividend."""
    return a - idiv(a, b) * b


def _sext(value, width):
    return sign_extend(value, width)


def _zext(value, width):
    return value & _mask(width)


PURE_INTRINSICS = {
    "sext": _sext,
    "zext": _zext,
    "sat": saturate_signed,
    "abs": abs,
    "min": min,
    "max": max,
}

# Intrinsics that act on the pipeline control context.  Each maps to a
# method of the control object passed to behaviours.
CONTROL_INTRINSICS = {
    "flush": "request_flush",
    "stall": "request_stall",
    "halt": "request_halt",
}

INTRINSIC_NAMES = frozenset(PURE_INTRINSICS) | frozenset(CONTROL_INTRINSICS)

# Names injected into the globals of generated behaviour code.
CODEGEN_GLOBALS = {
    "__sext": _sext,
    "__zext": _zext,
    "__sat": saturate_signed,
    "__abs": abs,
    "__min": min,
    "__max": max,
    "__idiv": idiv,
    "__imod": imod,
}

# Spelling of each pure intrinsic inside generated code.
CODEGEN_INTRINSIC_NAMES = {
    "sext": "__sext",
    "zext": "__zext",
    "sat": "__sat",
    "abs": "__abs",
    "min": "__min",
    "max": "__max",
}
