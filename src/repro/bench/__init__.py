"""Shared experiment harness for the benchmark suite.

Each module in ``benchmarks/`` regenerates one artefact of the paper's
evaluation (see DESIGN.md's per-experiment index); this package holds
the measurement plumbing they share, so a benchmark file only declares
*what* to measure.
"""

from repro.bench.harness import (
    PAPER,
    BenchmarkResult,
    compilation_speed,
    load_app_program,
    paper_reference,
    run_and_verify,
    simulation_speed,
    speedup,
    standard_apps,
)

__all__ = [
    "PAPER",
    "BenchmarkResult",
    "compilation_speed",
    "load_app_program",
    "paper_reference",
    "run_and_verify",
    "simulation_speed",
    "speedup",
    "standard_apps",
]
