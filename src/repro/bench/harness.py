"""Measurement helpers for the paper's experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.api import build_toolset, load_model
from repro.apps import build_adpcm, build_fir, build_gsm
from repro.sim import create_simulator

# Paper-reported numbers (DATE 2000, Section 6.1), for side-by-side
# reporting in benchmark output and EXPERIMENTS.md.
PAPER = {
    "compilation_speed_insn_per_s": (530, 560),
    "interpretive_cycles_per_s": (2_000, 9_000),
    "compiled_cycles_per_s": (288_000, 403_000),
    "speedup_fir": 170,
    "speedup_adpcm": 127,  # figure 7 middle bar (approximate reading)
    "speedup_gsm": 47,
    "model_translation_s": 35.0,
}


def paper_reference(key):
    return PAPER[key]


@dataclass
class BenchmarkResult:
    """One measured row of an experiment."""

    experiment: str
    workload: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def row(self):
        parts = ["%-12s %-28s" % (self.experiment, self.workload)]
        for key, value in self.metrics.items():
            if isinstance(value, float):
                parts.append("%s=%.4g" % (key, value))
            else:
                parts.append("%s=%s" % (key, value))
        return "  ".join(parts)


def standard_apps(gsm_words=4096, fir_taps=16, fir_samples=48,
                  adpcm_samples=256):
    """The paper's three benchmark applications, on the c62x."""
    return [
        build_fir("c62x", taps=fir_taps, samples=fir_samples),
        build_adpcm(samples=adpcm_samples),
        build_gsm(target_words=gsm_words),
    ]


def load_app_program(app, toolset=None):
    """Assemble an application; returns (model, program)."""
    model = load_model(app.model_name)
    tools = toolset or build_toolset(model)
    return model, app.assemble(tools)


def compilation_speed(app, level="sequenced"):
    """Measure simulation-compilation speed (paper Figure 6).

    Returns a dict with program size, compile wall-clock and the
    instructions/second figure the paper reports.
    """
    model, program = load_app_program(app)
    kind = "compiled" if level == "sequenced" else "unfolded"
    simulator = create_simulator(model, kind)
    start = time.perf_counter()
    simulator.load_program(program)
    elapsed = time.perf_counter() - start
    instructions = simulator.table.instruction_count
    return {
        "words": program.word_count(model.config.program_memory),
        "compile_s": elapsed,
        "insn_per_s": instructions / elapsed if elapsed else float("inf"),
    }


def simulation_speed(app, kind, max_cycles=200_000_000, verify=True,
                     min_runtime=0.0):
    """Measure simulation speed in cycles/second (paper Figure 7 input).

    Load (simulation compilation) is excluded from the timing, matching
    the paper's split between Figures 6 and 7.  With ``min_runtime`` the
    run is repeated (reset + rerun) until the accumulated wall-clock
    exceeds the threshold, for stable numbers on fast simulators.
    """
    model, program = load_app_program(app)
    simulator = create_simulator(model, kind)
    simulator.load_program(program)
    total_cycles = 0
    total_time = 0.0
    runs = 0
    while True:
        start = time.perf_counter()
        stats = simulator.run(max_cycles)
        total_time += time.perf_counter() - start
        total_cycles += stats.cycles
        runs += 1
        if verify:
            app.verify(simulator.state)
        if total_time >= min_runtime:
            break
        simulator.reset()
    return {
        "cycles": total_cycles // runs,
        "runs": runs,
        "run_s": total_time / runs,
        "cycles_per_s": total_cycles / total_time if total_time else
        float("inf"),
    }


def speedup(app, baseline_kind="interpretive", kind="compiled",
            min_runtime=0.0):
    """Speed-up of ``kind`` over ``baseline_kind`` for one application."""
    base = simulation_speed(app, baseline_kind, min_runtime=min_runtime)
    fast = simulation_speed(app, kind, min_runtime=min_runtime)
    return {
        "baseline_cps": base["cycles_per_s"],
        "fast_cps": fast["cycles_per_s"],
        "speedup": fast["cycles_per_s"] / base["cycles_per_s"],
        "cycles": base["cycles"],
    }


def run_and_verify(app, kind="compiled", max_cycles=200_000_000):
    """Run an application to completion and verify against the golden
    model; returns the simulator for inspection."""
    model, program = load_app_program(app)
    simulator = create_simulator(model, kind)
    simulator.load_program(program)
    simulator.run(max_cycles)
    app.verify(simulator.state)
    return simulator
