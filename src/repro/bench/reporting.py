"""Experiment-report output for the benchmark suite.

pytest captures stdout, so each experiment writes its table both to
stdout (visible with ``pytest -s``) and to ``benchmarks/results/<exp>.txt``
so the regenerated figures survive a quiet run.  Headline machine-
readable results (``BENCH_*.json``) go through :func:`publish_json`,
which also drops a copy at the repository root so CI artifacts and
readers need not dig into ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os


def results_dir():
    base = os.environ.get("REPRO_RESULTS_DIR")
    if base is None:
        base = os.path.join(os.getcwd(), "benchmarks", "results")
    os.makedirs(base, exist_ok=True)
    return base


def publish_json(name, payload):
    """Write a headline ``BENCH_*.json`` result.

    The canonical copy lands in :func:`results_dir`; a second copy goes
    to the current working directory (the repository root under the
    standard ``pytest benchmarks/`` invocation).  The root copy is best
    effort -- an unwritable directory must not fail the experiment.
    """
    text = json.dumps(payload, indent=2) + "\n"
    path = os.path.join(results_dir(), name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    root_copy = os.path.abspath(os.path.join(os.getcwd(), name))
    if root_copy != os.path.abspath(path):
        try:
            with open(root_copy, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError:
            pass
    return path


class ExperimentReport:
    """Collects and emits one experiment's rows."""

    def __init__(self, experiment_id, title, paper_note=""):
        self.experiment_id = experiment_id
        self.title = title
        self.paper_note = paper_note
        self.lines = []

    def add(self, line):
        self.lines.append(line)

    def add_row(self, **fields):
        self.lines.append(
            "  ".join("%s=%s" % (k, _fmt(v)) for k, v in fields.items())
        )

    def emit(self):
        header = "== %s: %s ==" % (self.experiment_id, self.title)
        body = [header]
        if self.paper_note:
            body.append("paper: %s" % self.paper_note)
        body.extend(self.lines)
        text = "\n".join(body) + "\n"
        print("\n" + text)
        path = os.path.join(
            results_dir(), "%s.txt" % self.experiment_id.lower()
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return text


def _fmt(value):
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)
