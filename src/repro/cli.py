"""Command-line entry points.

``repro-lisa``
    Compile and inspect LISA machine descriptions.
``repro-asm``
    Assemble / disassemble target programs.
``repro-sim``
    Run programs on any simulator kind.
``repro-kcc``
    Compile kernel-language source to target assembly.
``repro-lint``
    Static analysis of an assembled program (packet collisions,
    control-flow defects, cross-cycle pipeline hazards).
``repro-trace``
    Run a program fully instrumented and export the trace (Chrome
    trace-event format for Perfetto, JSON-lines, OpenMetrics, or a
    text summary) plus the metrics snapshot.
``repro-profile``
    Run a program in profile mode (native bursts stay enabled) and
    emit the profile-guided hot-region report as JSON.

Every command that compiles a model prints the model's compile
diagnostics to stderr; ``--Werror`` turns diagnosed warnings into a
nonzero exit.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.api import build_toolset, compile_lisa_file, list_models, load_model
from repro.sim import SIM_BACKENDS, SIM_KINDS, create_simulator
from repro.support.errors import ReproError, SimulationTimeout
from repro.tools.objfile import Program


def _resolve_model(spec):
    """A model name from the registry, or a path to a .lisa file."""
    if spec in list_models():
        return load_model(spec)
    try:
        return compile_lisa_file(spec)
    except OSError as exc:
        raise ReproError("cannot read model %r: %s" % (spec, exc)) from exc


def _add_werror(parser):
    parser.add_argument(
        "--Werror", dest="werror", action="store_true",
        help="treat warnings as errors (nonzero exit)",
    )


def _print_model_diagnostics(parser, model, werror):
    """Print model compile diagnostics to stderr; under ``--Werror``,
    exit nonzero when any of them is a warning."""
    sink = getattr(model, "diagnostics", None)
    if not sink:
        return
    for diagnostic in sink:
        print(diagnostic, file=sys.stderr)
    if werror and getattr(sink, "warnings", ()):
        parser.exit(
            1,
            "error: model diagnostics contain warnings (--Werror)\n",
        )


def _load_program(model, path):
    """Load an object file, or assemble ``.asm``/``.s`` source."""
    if path.endswith((".asm", ".s")):
        return build_toolset(model).assembler.assemble_file(path)
    return Program.load(path)


def _add_trace_flags(parser):
    from repro.obs import OBSERVER_MODES, TRACE_FORMATS

    parser.add_argument(
        "--trace", metavar="PATH",
        help="record trace events and phase spans and write them to "
        "PATH (see --trace-format)",
    )
    parser.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default="chrome",
        help="trace file format: 'chrome' loads in Perfetto / "
        "chrome://tracing, 'jsonl' is one JSON record per line, "
        "'openmetrics' is the Prometheus/OpenMetrics text exposition "
        "of the metrics snapshot, 'summary' is a human-readable "
        "report (default: chrome)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the metrics snapshot (counters, gauges, "
        "histograms) as JSON to PATH",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH",
        help="write the profile-guided hot-region report (packets and "
        "windows ranked by attributed cycles) as JSON to PATH; "
        "observer-compatible with native bursts",
    )
    parser.add_argument(
        "--observe", choices=OBSERVER_MODES, default=None,
        help="observer mode: 'trace' records per-cycle events (forces "
        "the per-cycle Python path on the native backend), 'profile' "
        "keeps full metrics plus per-packet cycle attribution while "
        "native bursts stay enabled, 'counters' is metrics only "
        "(default: inferred -- trace when --trace is given, profile "
        "otherwise)",
    )
    parser.add_argument(
        "--flight-recorder", type=int, default=None, metavar="N",
        const=256, nargs="?",
        help="keep a ring of the last N trace events (default 256) and "
        "attach them to the exception of a failing run for "
        "post-mortems",
    )


def _make_observer(args, model, program):
    """An observer when any trace/metrics output was requested."""
    from repro import obs

    wants = (args.trace or args.metrics_out
             or getattr(args, "profile_out", None)
             or getattr(args, "flight_recorder", None) is not None
             or getattr(args, "observe", None))
    if not wants:
        return None
    mode = getattr(args, "observe", None)
    if mode is None:
        mode = obs.TRACE_MODE if args.trace else obs.PROFILE_MODE
    observer = obs.Observer(
        labeler=obs.opcode_labeler(model, program), mode=mode,
    )
    capacity = getattr(args, "flight_recorder", None)
    if capacity is not None:
        observer.enable_flight_recorder(capacity)
    return observer


def _write_observer_outputs(observer, args, process_name):
    from repro import obs

    if observer is None:
        return
    if args.trace:
        obs.write_trace(observer, args.trace,
                        trace_format=args.trace_format,
                        process_name=process_name)
        print("wrote %s (%s)" % (args.trace, args.trace_format),
              file=sys.stderr)
    if args.metrics_out:
        obs.write_metrics(observer, args.metrics_out)
        print("wrote %s" % args.metrics_out, file=sys.stderr)
    profile_out = getattr(args, "profile_out", None)
    if profile_out:
        report = obs.hot_region_report(observer)
        with open(profile_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % profile_out, file=sys.stderr)
    observer.close()


def lisa_main(argv=None):
    """repro-lisa: compile a model and print its summary."""
    parser = argparse.ArgumentParser(
        prog="repro-lisa",
        description="Compile a LISA machine description into a model "
        "data base and report on it.",
    )
    parser.add_argument(
        "model",
        help="shipped model name (%s) or path to a .lisa file"
        % ", ".join(list_models()),
    )
    parser.add_argument(
        "--emit-simulator",
        metavar="PROGRAM",
        help="emit a standalone compiled-simulator module for the given "
        "assembled program (.dspo) to stdout",
    )
    parser.add_argument(
        "--time", action="store_true",
        help="report model translation time (experiment E3)",
    )
    parser.add_argument(
        "--dump-db", action="store_true",
        help="dump the model data base as JSON to stdout",
    )
    _add_werror(parser)
    args = parser.parse_args(argv)
    try:
        start = time.perf_counter()
        model = _resolve_model(args.model)
        elapsed = time.perf_counter() - start
        if args.dump_db:
            from repro.lisa.database import model_to_json

            print(model_to_json(model))
            return 0
        _print_model_diagnostics(parser, model, args.werror)
        if args.emit_simulator:
            # Only the module on stdout, so `> simulator.py` yields a
            # runnable file; the report moves to stderr.
            print(model.describe(), file=sys.stderr)
            if args.time:
                print("model translation time: %.3f s" % elapsed,
                      file=sys.stderr)
            from repro.simcc import emit_simulator_module

            program = Program.load(args.emit_simulator)
            print(emit_simulator_module(model, program))
        else:
            print(model.describe())
            if args.time:
                print("model translation time: %.3f s" % elapsed)
    except ReproError as exc:
        parser.exit(1, "error: %s\n" % exc)
    return 0


def asm_main(argv=None):
    """repro-asm: assemble or disassemble target programs."""
    parser = argparse.ArgumentParser(
        prog="repro-asm",
        description="Retargetable assembler/disassembler generated from "
        "a machine description.",
    )
    parser.add_argument("model", help="model name or .lisa path")
    parser.add_argument("source", help="assembly source file, or .dspo "
                        "with --disassemble")
    parser.add_argument("-o", "--output", help="object file to write "
                        "(.dspo)")
    parser.add_argument(
        "-d", "--disassemble", action="store_true",
        help="treat the input as an object file and disassemble it",
    )
    _add_werror(parser)
    args = parser.parse_args(argv)
    try:
        model = _resolve_model(args.model)
        _print_model_diagnostics(parser, model, args.werror)
        tools = build_toolset(model)
        if args.disassemble:
            program = Program.load(args.source)
            for line in tools.disassembler.disassemble_program(program):
                print(line)
            return 0
        program = tools.assembler.assemble_file(args.source)
        print(
            "assembled %d program words, %d data words, entry 0x%x"
            % (
                program.word_count(model.config.program_memory),
                program.word_count() -
                program.word_count(model.config.program_memory),
                program.entry,
            )
        )
        if args.output:
            program.save(args.output)
            print("wrote %s" % args.output)
    except ReproError as exc:
        parser.exit(1, "error: %s\n" % exc)
    return 0


def sim_main(argv=None):
    """repro-sim: run a program on a chosen simulator kind."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Run a target program on an interpretive or compiled "
        "simulator.",
    )
    parser.add_argument("model", help="model name or .lisa path")
    parser.add_argument("program", help="object file (.dspo) or assembly "
                        "source (.asm/.s)")
    parser.add_argument(
        "-k", "--kind", default="compiled", choices=SIM_KINDS,
        help="simulator kind (default: compiled)",
    )
    parser.add_argument(
        "--backend", default=None, choices=SIM_BACKENDS,
        help="execution backend for the table-based kinds: 'native' "
        "compiles proven packets to C and bursts whole pipeline "
        "windows per call; when no C compiler is available it falls "
        "back to the Python path (one native.fallback trace event, "
        "exit status unchanged) rather than failing (default: auto; "
        "with --resume, the backend stamped into the checkpoint)",
    )
    parser.add_argument(
        "--tiering", default=None, choices=("off", "auto", "aggressive"),
        help="adaptive tiered execution for the table-based kinds: "
        "start at the cheap base tier and promote profile-hot windows "
        "to unfolded tables -- and, where the analysis proofs admit, "
        "to compiled native bursts -- mid-run; 'aggressive' polls "
        "earlier and promotes more (default: off; with --resume, the "
        "mode stamped into the checkpoint)",
    )
    parser.add_argument(
        "--tier-report", metavar="PATH",
        help="with --tiering: write the versioned, cycle-stamped "
        "promotion/demotion timeline as JSON to PATH",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=50_000_000,
        help="abort after this many cycles",
    )
    parser.add_argument(
        "--dump", action="append", default=[], metavar="MEM:ADDR[:LEN]",
        help="print memory cells after the run (repeatable)",
    )
    parser.add_argument(
        "--dump-ir", action="store_true",
        help="print the lowered, post-pass SimIR of every execute "
        "packet instead of simulating (for debugging retargeting "
        "issues)",
    )
    parser.add_argument(
        "--dump-c", action="store_true",
        help="print the C the native backend renders for every packet "
        "instead of simulating (packets failing the native analysis "
        "print their fallback reason; no C compiler required)",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print timing statistics",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR"),
        help="persist compiled simulation tables under DIR so repeat "
        "runs skip simulation compilation (default: $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the simulation-table cache even if --cache-dir "
        "or $REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="parallelise simulation compilation over N workers "
        "(-1 = one per CPU)",
    )
    parser.add_argument(
        "--verify-schedule", action="store_true",
        help="with -k static/unfolded_static: fail instead of falling "
        "back to dynamic scheduling when a pipeline window is not "
        "proven hazard-free",
    )
    parser.add_argument(
        "--verify-ir", action="store_true",
        help="verify SimIR well-formedness before and after every "
        "optimisation pass (also enabled by REPRO_VERIFY_IR=1); a "
        "violation fails the run naming the offending pass",
    )
    parser.add_argument(
        "--on-self-modify", default="off",
        choices=("off", "error", "recompile", "interpret"),
        metavar="POLICY",
        help="watch stores into program memory and degrade per POLICY: "
        "'error' fails fast, 'recompile' incrementally re-compiles the "
        "touched packets, 'interpret' serves them from an interpretive "
        "fallback (default: off)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="CYCLES",
        help="write a resumable checkpoint every CYCLES simulated "
        "cycles (see --checkpoint-file)",
    )
    parser.add_argument(
        "--checkpoint-file", metavar="PATH", default=None,
        help="where to write checkpoints (default: PROGRAM.ckpt); also "
        "written when a cycle or wall-clock budget expires",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="restore a checkpoint written by a previous run (any "
        "simulator kind) before running",
    )
    parser.add_argument(
        "--max-wall-seconds", type=float, default=None, metavar="S",
        help="abort (with a resumable checkpoint, exit code 3) after S "
        "seconds of host wall-clock time",
    )
    _add_trace_flags(parser)
    parser.add_argument(
        "--stats-json", metavar="PATH",
        help="write run statistics (cycles, instructions, CPI, wall "
        "time, simulated cycles/s) as JSON to PATH",
    )
    _add_werror(parser)
    args = parser.parse_args(argv)
    if args.verify_schedule and args.kind not in (
        "static", "unfolded_static"
    ):
        parser.exit(
            2,
            "error: --verify-schedule requires -k static or "
            "unfolded_static\n",
        )
    if args.verify_ir:
        from repro.simcc import verify

        verify.set_verify_default(True)
    try:
        model = _resolve_model(args.model)
        _print_model_diagnostics(parser, model, args.werror)
        program = _load_program(model, args.program)
        if args.dump_ir:
            from repro.simcc.ir import dump_program_ir

            dump_program_ir(model, program, stream=sys.stdout)
            return 0
        if args.dump_c:
            from repro.simcc.native import dump_program_c

            dump_program_c(model, program, stream=sys.stdout)
            return 0
        cache = None
        if args.cache_dir and not args.no_cache:
            from repro.simcc.cache import SimulationCache

            cache = SimulationCache(args.cache_dir)
        # Resume ergonomics: flags the user left unset re-apply the
        # configuration stamped into the checkpoint (a timeout resumed
        # with bare `--resume` must not silently revert a native or
        # tiered run to the defaults); flags given explicitly win.
        checkpoint = None
        if args.resume:
            from repro.resilience.checkpoint import Checkpoint

            checkpoint = Checkpoint.load(args.resume)
        backend = args.backend
        if backend is None:
            backend = checkpoint.backend if checkpoint is not None else "auto"
        tiering = args.tiering
        if tiering is None:
            tiering = checkpoint.tiering if checkpoint is not None else "off"
        if args.kind in ("interpretive", "predecoded") and args.backend is None:
            backend = "auto"  # untabled kinds reject a stamped backend
        if (args.kind in ("interpretive", "predecoded")
                or backend == "native") and args.tiering is None:
            tiering = "off"  # stamped tiering does not apply here
        observer = _make_observer(args, model, program)
        simulator = create_simulator(
            model, args.kind, cache=cache, jobs=args.jobs,
            verify_schedule=args.verify_schedule, observer=observer,
            on_self_modify=args.on_self_modify, backend=backend,
            tiering=tiering,
        )
        load_start = time.perf_counter()
        simulator.load_program(program)
        load_time = time.perf_counter() - load_start
        if checkpoint is not None:
            simulator.restore(checkpoint)
            print(
                "resumed from %s at cycle %d (taken under -k %s, "
                "backend %s, tiering %s)"
                % (args.resume, checkpoint.cycles, checkpoint.kind,
                   backend, tiering),
                file=sys.stderr,
            )
        checkpoint_path = args.checkpoint_file
        wants_checkpoints = bool(
            checkpoint_path
            or args.checkpoint_every
            or args.max_wall_seconds is not None
        )
        if checkpoint_path is None:
            checkpoint_path = args.program + ".ckpt"
        budget = None
        if args.checkpoint_every or args.max_wall_seconds is not None:
            from repro.resilience.watchdog import RunBudget

            budget = RunBudget(
                max_wall_seconds=args.max_wall_seconds,
                checkpoint_every=args.checkpoint_every,
            )

        def save_checkpoint(snapshot):
            snapshot.save(checkpoint_path)

        run_start = time.perf_counter()
        try:
            stats = simulator.run(
                args.max_cycles, budget=budget,
                on_checkpoint=save_checkpoint if wants_checkpoints else None,
            )
        except SimulationTimeout as exc:
            message = "error: %s\n" % exc
            if wants_checkpoints and exc.checkpoint is not None:
                exc.checkpoint.save(checkpoint_path)
                message += (
                    "checkpoint written to %s; resume with --resume %s\n"
                    % (checkpoint_path, checkpoint_path)
                )
            _write_observer_outputs(observer, args, "repro-sim")
            parser.exit(3, message)
        run_time = time.perf_counter() - run_start
        print(
            "halted after %d cycles, %d instructions (CPI %.2f)"
            % (stats.cycles, stats.instructions, stats.cpi)
        )
        if args.stats:
            print(
                "load: %.3f s   run: %.3f s   %.0f cycles/s"
                % (load_time, run_time,
                   stats.cycles / run_time if run_time else float("inf"))
            )
            if cache is not None:
                print(
                    "cache: %s"
                    % "  ".join(
                        "%s=%d" % item for item in cache.stats.items()
                    )
                )
        manager = simulator.tier_manager
        if args.stats_json:
            payload = stats.to_dict()
            payload["kind"] = simulator.kind
            payload["load_seconds"] = load_time
            if manager is not None:
                payload["tier_timeline"] = manager.timeline_report()[
                    "events"
                ]
            with open(args.stats_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote %s" % args.stats_json, file=sys.stderr)
        if args.tier_report:
            report = (
                manager.timeline_report() if manager is not None
                else {"version": 1, "mode": tiering, "events": []}
            )
            with open(args.tier_report, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("wrote %s" % args.tier_report, file=sys.stderr)
        _write_observer_outputs(observer, args, "repro-sim")
        for dump in args.dump:
            _dump_memory(simulator.state, dump)
    except ReproError as exc:
        parser.exit(1, "error: %s\n" % exc)
    return 0


def trace_main(argv=None):
    """repro-trace: run a program fully instrumented; export the trace.

    The default output is Chrome trace-event JSON: load it in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing`` to see the
    simulation-compilation phase spans above the per-cycle event
    stream.  ``--format summary`` writes the human-readable report
    instead, and ``--print-summary`` additionally prints it to stdout.
    """
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Run a target program with full instrumentation "
        "(trace events, compile-phase spans, metrics) and export the "
        "trace.",
    )
    parser.add_argument("model", help="model name or .lisa path")
    parser.add_argument("program", help="object file (.dspo) or assembly "
                        "source (.asm/.s)")
    parser.add_argument(
        "-k", "--kind", default="compiled", choices=SIM_KINDS,
        help="simulator kind (default: compiled)",
    )
    parser.add_argument(
        "-o", "--output", default="trace.json", metavar="PATH",
        help="trace file to write (default: trace.json)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=50_000_000,
        help="abort after this many cycles",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="also write the metrics snapshot as JSON to PATH",
    )
    parser.add_argument(
        "--print-summary", action="store_true",
        help="print the text summary to stdout after the run",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="parallelise simulation compilation over N workers "
        "(-1 = one per CPU)",
    )
    _add_werror(parser)
    # Reuse the shared writer: --format doubles as --trace-format.
    from repro.obs import TRACE_FORMATS

    parser.add_argument(
        "--format", dest="trace_format", choices=TRACE_FORMATS,
        default="chrome",
        help="trace file format (default: chrome, for Perfetto)",
    )
    args = parser.parse_args(argv)
    args.trace = args.output
    try:
        from repro import obs

        model = _resolve_model(args.model)
        _print_model_diagnostics(parser, model, args.werror)
        program = _load_program(model, args.program)
        observer = obs.Observer(
            labeler=obs.opcode_labeler(model, program)
        )
        simulator = create_simulator(model, args.kind, jobs=args.jobs,
                                     observer=observer)
        simulator.load_program(program)
        stats = simulator.run(args.max_cycles)
        print(
            "halted after %d cycles, %d instructions (CPI %.2f)"
            % (stats.cycles, stats.instructions, stats.cpi)
        )
        print(
            "recorded %d events, %d spans"
            % (len(observer.events or ()), len(observer.spans))
        )
        if args.print_summary:
            print(obs.text_summary(observer))
        _write_observer_outputs(observer, args, "repro-trace")
    except ReproError as exc:
        parser.exit(1, "error: %s\n" % exc)
    return 0


def profile_main(argv=None):
    """repro-profile: run in profile mode; emit the hot-region report.

    The observer runs in ``profile`` mode, so on the native backend the
    compiled bursts stay enabled (the telemetry side-buffer keeps the
    per-packet counters) -- profiling at native speed.  The report
    ranks packets and contiguous hot windows by attributed cycles; see
    :func:`repro.obs.profile.hot_region_report` for the schema.
    """
    from repro.obs.profile import DEFAULT_HOT_SHARE

    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Run a target program with per-packet cycle "
        "attribution (native bursts stay enabled) and write the "
        "profile-guided hot-region report as JSON.",
    )
    parser.add_argument("model", help="model name or .lisa path")
    parser.add_argument("program", help="object file (.dspo) or assembly "
                        "source (.asm/.s)")
    parser.add_argument(
        "-k", "--kind", default="compiled", choices=SIM_KINDS,
        help="simulator kind (default: compiled)",
    )
    parser.add_argument(
        "--backend", default="auto", choices=SIM_BACKENDS,
        help="execution backend for the table-based kinds "
        "(default: auto)",
    )
    parser.add_argument(
        "-o", "--output", default="profile.json", metavar="PATH",
        help="report file to write (default: profile.json); '-' writes "
        "to stdout",
    )
    parser.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="truncate the packet ranking to the N hottest packets "
        "(windows still consider every hot packet)",
    )
    parser.add_argument(
        "--hot-share", type=float, default=DEFAULT_HOT_SHARE,
        metavar="FRAC",
        help="minimum cycle share for a packet to seed a hot window "
        "(default: %g)" % DEFAULT_HOT_SHARE,
    )
    parser.add_argument(
        "--max-cycles", type=int, default=50_000_000,
        help="abort after this many cycles",
    )
    parser.add_argument(
        "--print-summary", action="store_true",
        help="print the hottest packets and windows to stderr",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="parallelise simulation compilation over N workers "
        "(-1 = one per CPU)",
    )
    _add_werror(parser)
    args = parser.parse_args(argv)
    try:
        from repro import obs

        model = _resolve_model(args.model)
        _print_model_diagnostics(parser, model, args.werror)
        program = _load_program(model, args.program)
        observer = obs.Observer(
            labeler=obs.opcode_labeler(model, program),
            mode=obs.PROFILE_MODE,
        )
        simulator = create_simulator(
            model, args.kind, jobs=args.jobs, observer=observer,
            backend=args.backend,
        )
        simulator.load_program(program)
        stats = simulator.run(args.max_cycles)
        print(
            "halted after %d cycles, %d instructions (CPI %.2f)"
            % (stats.cycles, stats.instructions, stats.cpi),
            file=sys.stderr,
        )
        report = obs.hot_region_report(
            observer, top=args.top, hot_share=args.hot_share
        )
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
        if args.output == "-":
            sys.stdout.write(text)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print("wrote %s" % args.output, file=sys.stderr)
        if args.print_summary:
            for entry in report["packets"][:10]:
                print(
                    "  %10d cycles  %5.1f%%  %s%s"
                    % (entry["cycles"], 100.0 * entry["share"],
                       entry["pc_hex"],
                       "  " + entry["label"] if entry["label"] else ""),
                    file=sys.stderr,
                )
            for window in report["windows"]:
                print(
                    "  window %s..%s  %d packets  %5.1f%%"
                    % (window["start_hex"], window["end_hex"],
                       window["packets"], 100.0 * window["share"]),
                    file=sys.stderr,
                )
        observer.close()
    except ReproError as exc:
        parser.exit(1, "error: %s\n" % exc)
    return 0


def kcc_main(argv=None):
    """repro-kcc: compile a kernel to target assembly (optionally run)."""
    parser = argparse.ArgumentParser(
        prog="repro-kcc",
        description="Compile C-like kernel source to DSP assembly.",
    )
    parser.add_argument("target", help="target model (tinydsp or c62x)")
    parser.add_argument("source", help="kernel source file (.k)")
    parser.add_argument("-o", "--output", help="assembly file to write")
    parser.add_argument(
        "--run", action="store_true",
        help="assemble and run the kernel on the compiled simulator",
    )
    parser.add_argument(
        "--dump", action="append", default=[], metavar="MEM:ADDR[:LEN]",
        help="with --run: print memory cells afterwards (repeatable)",
    )
    _add_werror(parser)
    args = parser.parse_args(argv)
    try:
        from repro.kcc import compile_kernel

        with open(args.source, "r", encoding="utf-8") as handle:
            kernel_source = handle.read()
        _print_model_diagnostics(
            parser, _resolve_model(args.target), args.werror
        )
        assembly = compile_kernel(kernel_source, args.target)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(assembly)
            print("wrote %s" % args.output)
        elif not args.run:
            print(assembly, end="")
        if args.run:
            model = _resolve_model(args.target)
            tools = build_toolset(model)
            program = tools.assembler.assemble_text(assembly)
            simulator = create_simulator(model, "compiled")
            simulator.load_program(program)
            stats = simulator.run()
            print(
                "halted after %d cycles, %d instructions"
                % (stats.cycles, stats.instructions)
            )
            for dump in args.dump:
                _dump_memory(simulator.state, dump)
    except OSError as exc:
        parser.exit(1, "error: %s\n" % exc)
    except ReproError as exc:
        parser.exit(1, "error: %s\n" % exc)
    return 0


def lint_main(argv=None):
    """repro-lint: simulation-compile-time program analysis.

    Exit status: 0 when the program analyses clean, 1 when findings
    fail the run (errors, or warnings under ``--Werror``), 2 when the
    model or program cannot be compiled at all.
    """
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Analyse an assembled program against a machine "
        "description: VLIW packet write collisions, control-flow "
        "defects (branches into packet middles or delay slots, "
        "out-of-segment targets, unreachable code, dead writes) and "
        "cross-cycle pipeline hazards gating static scheduling.",
    )
    parser.add_argument("model", help="model name or .lisa path")
    parser.add_argument("program", help="object file (.dspo) or assembly "
                        "source (.asm/.s)")
    parser.add_argument(
        "--json", dest="as_json", action="store_true",
        help="emit the full report (findings, counts, hazard verdicts) "
        "as JSON on stdout",
    )
    _add_trace_flags(parser)
    _add_werror(parser)
    args = parser.parse_args(argv)
    try:
        model = _resolve_model(args.model)
        program = _load_program(model, args.program)
        from repro.analysis import analyze_program

        observer = _make_observer(args, model, program)
        result = analyze_program(model, program, observer=observer)
        _write_observer_outputs(observer, args, "repro-lint")
    except ReproError as exc:
        parser.exit(2, "error: %s\n" % exc)
    report = result.report
    # Model compile diagnostics join the program findings, so one run
    # surfaces everything the toolchain knows.
    for diagnostic in getattr(model, "diagnostics", []):
        severity = diagnostic.severity
        report.add(
            severity if severity in ("warning", "note") else "note",
            None, "model.diagnostic", str(diagnostic),
        )
    if args.as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report:
            print(finding)
        counts = report.counts()
        verdicts = result.verdict_counts()
        print(
            "%d error(s), %d warning(s), %d note(s); packets: %s"
            % (
                counts["error"], counts["warning"], counts["note"],
                ", ".join(
                    "%d %s" % (count, verdict)
                    for verdict, count in sorted(verdicts.items())
                    if count
                ) or "none",
            )
        )
    return report.exit_code(werror=args.werror)


def _dump_memory(state, spec):
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ReproError("--dump expects MEM:ADDR[:LEN], got %r" % spec)
    memory = parts[0]
    address = int(parts[1], 0)
    length = int(parts[2], 0) if len(parts) == 3 else 1
    values = [
        state.read_memory(memory, address + offset)
        for offset in range(length)
    ]
    print("%s[%d:%d] = %s" % (memory, address, address + length, values))


if __name__ == "__main__":
    sys.exit(sim_main())
