"""Instruction-coding machinery: field layout, decoding, encoding.

Decoding is the first of the paper's compiled-simulation steps: the
simulation compiler runs :class:`InstructionDecoder` once per program
instruction at simulation-compile time, while the interpretive simulator
runs the very same decoder on every fetch.
"""

from repro.coding.layout import CodingLayout, layout_of
from repro.coding.decoder import DecodedNode, InstructionDecoder
from repro.coding.encoder import InstructionEncoder, OperandSpec

__all__ = [
    "CodingLayout",
    "layout_of",
    "DecodedNode",
    "InstructionDecoder",
    "InstructionEncoder",
    "OperandSpec",
]
