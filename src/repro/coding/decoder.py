"""Instruction decoding: word -> operation-instance tree.

The decoder is deliberately the *same* code for the interpretive
simulator (which calls it every fetch) and the simulation compiler
(which calls it once per program location).  The compiled-simulation
speed-up thus measures exactly what the paper measures: moving this
work from run-time to compile-time, not a different decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.coding.layout import layout_of
from repro.lisa import model as m
from repro.support.bitutils import extract_field
from repro.support.errors import DecodeError, LisaSemanticError


@dataclass
class DecodedNode:
    """One node of a decoded operation-instance tree.

    ``fields`` holds LABEL values extracted from the word; ``children``
    maps GROUP/INSTANCE slot names to the decoded sub-operations.
    """

    operation: m.Operation
    parent: Optional["DecodedNode"] = None
    slot_name: Optional[str] = None
    fields: Dict[str, int] = field(default_factory=dict)
    children: Dict[str, "DecodedNode"] = field(default_factory=dict)

    def lookup(self, name):
        """Resolve an operand name on this node or, for REFERENCEs, on an
        ancestor.  Returns ("label", int) or ("child", DecodedNode)."""
        node = self
        first = True
        while node is not None:
            if name in node.fields:
                return ("label", node.fields[name])
            if name in node.children:
                return ("child", node.children[name])
            if first and name not in self.operation.references:
                break
            node = node.parent
            first = False
        raise LisaSemanticError(
            "operation %r: cannot resolve operand %r"
            % (self.operation.name, name)
        )

    def condition_env(self, model):
        """Decode-time environment for IF/SWITCH guard evaluation.

        Labels map to their integer field value; groups/instances map to
        the *name* of the selected operation, so guards can compare a
        group against a symbolic operation name.  REFERENCEd names are
        resolved through the ancestors.
        """
        env = dict(self.fields)
        for slot, child in self.children.items():
            env[slot] = child.operation.name
        for ref in self.operation.references:
            kind, value = self.lookup(ref)
            env[ref] = value if kind == "label" else value.operation.name
        return env

    def variant(self, model):
        """Resolve this node's decode-time section variant."""
        return self.operation.resolve_variant(self.condition_env(model), model)

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def describe(self):
        """Compact single-line description, e.g. for traces."""
        parts = [self.operation.name]
        for name, value in self.fields.items():
            parts.append("%s=%d" % (name, value))
        for slot, child in self.children.items():
            parts.append("%s=(%s)" % (slot, child.describe()))
        return " ".join(parts)


class InstructionDecoder:
    """Decodes instruction words against a machine model's coding tree."""

    def __init__(self, model):
        self._model = model
        self._root = model.root_operation
        self._word_size = model.word_size

    @property
    def model(self):
        return self._model

    def decode(self, word, address=None):
        """Decode one instruction word into a :class:`DecodedNode` tree."""
        if word < 0 or word >> self._word_size:
            raise DecodeError(
                "word does not fit in %d bits" % self._word_size,
                word=word,
                address=address,
            )
        node = self._try_decode(self._root, word, 0, self._word_size, None, None)
        if node is None:
            raise DecodeError(
                "no operation coding matches", word=word, address=address
            )
        return node

    def _try_decode(self, op, word, offset, word_size, parent, slot_name):
        """Attempt to decode ``op`` at MSB-relative ``offset``.

        Returns a DecodedNode or None when a literal pattern mismatches.
        """
        layout = layout_of(op)
        node = DecodedNode(operation=op, parent=parent, slot_name=slot_name)
        for placed in layout.placed:
            element = placed.element
            bits = extract_field(
                word, offset + placed.offset, placed.width, word_size
            )
            if isinstance(element, m.CodingPattern):
                if not element.pattern.matches(bits):
                    return None
            elif isinstance(element, m.CodingLabel):
                node.fields[element.name] = bits
            else:  # CodingGroup
                alternatives = op.child_slots()[element.name]
                child = None
                for alt_name in alternatives:
                    alt = self._model.operations[alt_name]
                    child = self._try_decode(
                        alt,
                        word,
                        offset + placed.offset,
                        word_size,
                        node,
                        element.name,
                    )
                    if child is not None:
                        break
                if child is None:
                    return None
                node.children[element.name] = child
        return node
