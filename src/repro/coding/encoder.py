"""Instruction encoding: operation-instance spec -> instruction word.

The encoder is the assembler's back half: after syntax matching has
selected operations and operand values, the encoder lays the bits down
according to the CODING sections.  ``decode(encode(x)) == x`` is a core
invariant exercised by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.coding.layout import layout_of
from repro.lisa import model as m
from repro.support.bitutils import insert_field, mask
from repro.support.errors import CodingError


@dataclass
class OperandSpec:
    """A nested specification of one operation instance to encode.

    ``fields`` gives LABEL values; ``children`` selects and specifies
    GROUP/INSTANCE slot contents.
    """

    operation: str
    fields: Dict[str, int] = field(default_factory=dict)
    children: Dict[str, "OperandSpec"] = field(default_factory=dict)


class InstructionEncoder:
    """Encodes :class:`OperandSpec` trees into instruction words."""

    def __init__(self, model):
        self._model = model
        self._word_size = model.word_size

    def encode(self, spec):
        """Encode a full instruction word from a root-operation spec."""
        root = self._model.operations[spec.operation]
        if root.coding_width != self._word_size:
            raise CodingError(
                "operation %r codes %s bits, not a full %d-bit word"
                % (spec.operation, root.coding_width, self._word_size)
            )
        return self._encode_op(spec, 0, self._word_size, 0)

    def encode_partial(self, spec):
        """Encode a sub-operation on its own; returns (value, width)."""
        op = self._model.operations[spec.operation]
        width = op.coding_width
        return self._encode_op(spec, 0, width, 0), width

    def _encode_op(self, spec, offset, word_size, word):
        op = self._model.operations[spec.operation]
        layout = layout_of(op)
        used_fields = set()
        used_children = set()
        for placed in layout.placed:
            element = placed.element
            if isinstance(element, m.CodingPattern):
                if not element.pattern.is_fully_specified:
                    # Don't-care bits are encoded as zero; the decoder
                    # accepts any value there, so round-trip still holds.
                    pass
                word = insert_field(
                    word,
                    element.pattern.value,
                    offset + placed.offset,
                    placed.width,
                    word_size,
                )
            elif isinstance(element, m.CodingLabel):
                if element.name not in spec.fields:
                    raise CodingError(
                        "encoding %r: missing field %r"
                        % (op.name, element.name)
                    )
                value = spec.fields[element.name]
                if value < 0 or value > mask(element.width):
                    raise CodingError(
                        "encoding %r: field %r value %d does not fit in "
                        "%d bits"
                        % (op.name, element.name, value, element.width)
                    )
                used_fields.add(element.name)
                word = insert_field(
                    word, value, offset + placed.offset, placed.width,
                    word_size,
                )
            else:  # CodingGroup
                child_spec = spec.children.get(element.name)
                if child_spec is None:
                    raise CodingError(
                        "encoding %r: missing sub-operation for slot %r"
                        % (op.name, element.name)
                    )
                alternatives = op.child_slots()[element.name]
                if child_spec.operation not in alternatives:
                    raise CodingError(
                        "encoding %r: %r is not an alternative of slot %r"
                        % (op.name, child_spec.operation, element.name)
                    )
                used_children.add(element.name)
                word = self._encode_op(
                    child_spec, offset + placed.offset, word_size, word
                )
        extra_fields = set(spec.fields) - used_fields
        if extra_fields:
            raise CodingError(
                "encoding %r: fields %s are not part of the coding"
                % (op.name, ", ".join(sorted(extra_fields)))
            )
        extra_children = set(spec.children) - used_children
        if extra_children:
            raise CodingError(
                "encoding %r: slots %s are not part of the coding"
                % (op.name, ", ".join(sorted(extra_children)))
            )
        return word

    def spec_from_decoded(self, node):
        """Rebuild an :class:`OperandSpec` from a decoded tree (for
        re-encoding round-trips)."""
        return OperandSpec(
            operation=node.operation.name,
            fields=dict(node.fields),
            children={
                slot: self.spec_from_decoded(child)
                for slot, child in node.children.items()
            },
        )
