"""Bit-field layout of operation codings.

A CODING section is an MSB-first sequence of elements; the layout
assigns each element its bit offset (from the MSB of the operation's
coding span) so that decoder, encoder, assembler and disassembler all
agree on field positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.lisa import model as m
from repro.support.errors import CodingError


@dataclass(frozen=True)
class PlacedElement:
    """One coding element with its resolved MSB-relative offset."""

    element: object  # CodingPattern | CodingLabel | CodingGroup
    offset: int
    width: int


@dataclass(frozen=True)
class CodingLayout:
    """The placed elements of one operation's coding."""

    operation: str
    width: int
    placed: Tuple[PlacedElement, ...]

    def find(self, name):
        """The placed element for the label/group called ``name``."""
        for placed in self.placed:
            element = placed.element
            if isinstance(element, (m.CodingLabel, m.CodingGroup)) \
                    and element.name == name:
                return placed
        raise CodingError(
            "coding of %r has no element %r" % (self.operation, name)
        )


def layout_of(operation):
    """Compute (and cache on the operation) the coding layout."""
    cached = getattr(operation, "_layout_cache", None)
    if cached is not None:
        return cached
    if not operation.has_coding:
        raise CodingError(
            "operation %r has no CODING section" % operation.name
        )
    placed = []
    offset = 0
    for element in operation.coding:
        if isinstance(element, m.CodingPattern):
            width = element.width
        elif isinstance(element, m.CodingLabel):
            width = element.width
        elif isinstance(element, m.CodingGroup):
            width = element.width
            if width <= 0:
                raise CodingError(
                    "unresolved group width for %r in coding of %r"
                    % (element.name, operation.name)
                )
        else:
            raise CodingError(
                "unknown coding element %r in %r" % (element, operation.name)
            )
        placed.append(PlacedElement(element, offset, width))
        offset += width
    layout = CodingLayout(
        operation=operation.name, width=offset, placed=tuple(placed)
    )
    operation._layout_cache = layout
    return layout
