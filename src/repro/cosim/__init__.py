"""Cycle-lockstep HW/SW co-simulation.

The paper's conclusion names "the integration of software simulators
into HW/SW co-simulation environments" as future work; this package
provides that integration for every simulator level.

A :class:`repro.cosim.kernel.CoSimulation` advances a set of clocked
components one cycle at a time: any number of processor simulators
(interpretive or compiled -- the coupling is level-agnostic) plus
hardware models.  Hardware talks to software the way real memory-mapped
devices do: through cells of the processor's data memory (mailboxes,
ring buffers, doorbells), which the shipped peripherals poll and update
once per cycle.

Because peripherals are deterministic functions of the cycle number and
the shared memory, a co-simulation behaves bit-identically no matter
which simulation level runs the software -- extending the paper's
accuracy claim across the HW/SW boundary (tested in
``tests/test_cosim.py``).
"""

from repro.cosim.kernel import Component, CoSimulation, ProcessorComponent
from repro.cosim.peripherals import (
    DmaEngine,
    RingBuffer,
    StreamSink,
    StreamSource,
)

__all__ = [
    "Component",
    "CoSimulation",
    "ProcessorComponent",
    "RingBuffer",
    "StreamSource",
    "StreamSink",
    "DmaEngine",
]
