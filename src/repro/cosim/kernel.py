"""The co-simulation kernel: lockstep clocking of components."""

from __future__ import annotations

from repro.support.errors import SimulationError


class Component:
    """Base class for clocked co-simulation components.

    Subclasses implement :meth:`step` (one clock cycle) and may override
    :meth:`finished` to participate in run-termination.
    """

    name = "component"

    def step(self):
        raise NotImplementedError

    def finished(self):
        """True when this component no longer needs the clock."""
        return True


class ProcessorComponent(Component):
    """Wraps a :class:`repro.sim.base.Simulator` as a component."""

    def __init__(self, simulator, name="dsp"):
        self.simulator = simulator
        self.name = name

    def step(self):
        if not self.simulator.halted:
            self.simulator.step()

    def finished(self):
        return self.simulator.halted

    @property
    def state(self):
        return self.simulator.state


class CoSimulation:
    """Advances all components in lockstep, one cycle per step.

    Components execute in registration order within a cycle; processors
    are conventionally registered first so hardware observes the
    memory state *after* the software's cycle, like devices sampling a
    bus at the clock edge.
    """

    def __init__(self):
        self.components = []
        self.cycles = 0

    def add(self, component):
        """Register a component; returns it for chaining."""
        if not isinstance(component, Component):
            raise SimulationError(
                "co-simulation components must derive from Component"
            )
        self.components.append(component)
        return component

    def add_processor(self, simulator, name="dsp"):
        """Convenience: wrap and register a processor simulator."""
        return self.add(ProcessorComponent(simulator, name))

    def step(self):
        """One global clock cycle."""
        for component in self.components:
            component.step()
        self.cycles += 1

    @property
    def finished(self):
        return all(component.finished() for component in self.components)

    def run(self, max_cycles=10_000_000):
        """Run until every component reports finished."""
        if not self.components:
            raise SimulationError("co-simulation has no components")
        start = self.cycles
        while not self.finished:
            if self.cycles - start >= max_cycles:
                raise SimulationError(
                    "co-simulation exceeded %d cycles without finishing"
                    % max_cycles
                )
            self.step()
        return self.cycles - start
