"""Memory-mapped hardware models for co-simulation.

All peripherals communicate through data-memory cells of a processor's
state -- the software side uses plain loads and stores, exactly as it
would talk to real memory-mapped hardware.  Every peripheral is a
deterministic function of (cycle, shared memory), so co-simulations are
reproducible across simulation levels.

Ring-buffer protocol (single producer / single consumer):

====================  ============================================
``base .. base+n-1``  data slots
``head`` cell         next slot the producer will write (mod n)
``tail`` cell         next slot the consumer will read (mod n)
====================  ============================================

Producer writes slot then advances head; consumer reads slot then
advances tail; empty when head == tail, full when head+1 == tail
(mod n).  One side is hardware, the other is the DSP program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cosim.kernel import Component
from repro.support.errors import SimulationError


@dataclass(frozen=True)
class RingBuffer:
    """Location of a ring buffer in a processor's data memory."""

    memory: str
    base: int
    length: int
    head: int  # address of the head index cell
    tail: int  # address of the tail index cell

    def __post_init__(self):
        if self.length < 2:
            raise SimulationError("ring buffers need at least 2 slots")

    def level(self, state):
        """Occupied slots."""
        storage = getattr(state, self.memory)
        return (storage[self.head] - storage[self.tail]) % self.length

    def space(self, state):
        return self.length - 1 - self.level(state)


class StreamSource(Component):
    """Feeds a sample stream into a ring buffer, ``rate`` samples/cycle
    at most (models an ADC/serial port front end)."""

    def __init__(self, state, ring, samples, rate=1, name="source"):
        self.name = name
        self._state = state
        self._ring = ring
        self._pending = list(samples)
        self._rate = rate
        self.delivered = 0

    def step(self):
        storage = getattr(self._state, self._ring.memory)
        budget = self._rate
        while self._pending and budget > 0 and self._ring.space(self._state):
            head = storage[self._ring.head] % self._ring.length
            value = self._pending.pop(0)
            self._state.write_memory(
                self._ring.memory, self._ring.base + head, value
            )
            storage[self._ring.head] = (head + 1) % self._ring.length
            self.delivered += 1
            budget -= 1

    def finished(self):
        return not self._pending


class StreamSink(Component):
    """Drains a ring buffer, ``rate`` samples/cycle at most (models a
    DAC/serial port back end); collects what it saw."""

    def __init__(self, state, ring, expect=None, rate=1, name="sink"):
        self.name = name
        self._state = state
        self._ring = ring
        self._rate = rate
        self._expect = expect
        self.received = []

    def step(self):
        storage = getattr(self._state, self._ring.memory)
        budget = self._rate
        while budget > 0 and self._ring.level(self._state) > 0:
            tail = storage[self._ring.tail] % self._ring.length
            self.received.append(storage[self._ring.base + tail])
            storage[self._ring.tail] = (tail + 1) % self._ring.length
            budget -= 1

    def finished(self):
        if self._expect is None:
            return True
        return len(self.received) >= self._expect


class DmaEngine(Component):
    """A doorbell-driven block-copy engine with realistic latency.

    Command block in data memory (``cmd`` = base address):

    =========  =====================================
    cmd + 0    doorbell: DSP writes 1 to start;
               engine writes 0 when the copy is done
    cmd + 1    source address
    cmd + 2    destination address
    cmd + 3    word count
    =========  =====================================

    The engine moves ``bandwidth`` words per cycle while active, so the
    DSP observes a completion latency of ``ceil(count / bandwidth)``
    cycles -- hardware it genuinely has to wait for (poll the doorbell).
    """

    def __init__(self, state, memory, cmd, bandwidth=1, name="dma"):
        self.name = name
        self._state = state
        self._memory = memory
        self._cmd = cmd
        self._bandwidth = bandwidth
        self._remaining = 0
        self._src = 0
        self._dst = 0
        self.transfers = 0

    def step(self):
        storage = getattr(self._state, self._memory)
        if self._remaining == 0:
            if storage[self._cmd] == 1:
                self._src = storage[self._cmd + 1]
                self._dst = storage[self._cmd + 2]
                self._remaining = storage[self._cmd + 3]
                if self._remaining <= 0:
                    storage[self._cmd] = 0  # empty transfer: done at once
            return
        moved = 0
        while self._remaining > 0 and moved < self._bandwidth:
            self._state.write_memory(
                self._memory, self._dst, storage[self._src]
            )
            self._src += 1
            self._dst += 1
            self._remaining -= 1
            moved += 1
        if self._remaining == 0:
            storage[self._cmd] = 0
            self.transfers += 1

    def finished(self):
        return self._remaining == 0
