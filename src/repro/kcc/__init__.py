"""kcc -- a small retargetable kernel compiler.

The paper's conclusion says "the goal of the ongoing language design is
to address retargetable compiler back-ends as well"; this package is
that direction in miniature: a C-like kernel language (it reuses the
behaviour-language parser) compiled to target assembly through a narrow
back-end interface, with back-ends for the three-address ``tinydsp``
and the VLIW ``c62x`` (where the back-end also schedules the exposed
load and branch delay slots).

The kernel language::

    array x[64] @ 0;          # data-memory array at a fixed base
    array y[64] @ 64;
    int i = 0;
    int acc;
    while (i < 64) {          # tinydsp: ==/!=/truth tests only
        acc = x[i] * 3;
        y[i] = acc + 1;
        i = i + 1;
    }

Variables live in registers for the whole kernel (no spilling -- the
compiler reports when a target runs out), temporaries use a LIFO pool,
shift amounts must be constants.  Programs end with the target's halt.

This is a demonstration back-end pair, not a description-generated
compiler; it exists to close the loop "write kernel, compile, simulate,
profile" entirely inside this repository.
"""

from repro.kcc.frontend import KernelProgram, parse_kernel
from repro.kcc.compiler import compile_kernel
from repro.kcc.reference import evaluate_kernel

__all__ = [
    "KernelProgram",
    "parse_kernel",
    "compile_kernel",
    "evaluate_kernel",
]
