"""Kernel-language front end.

The body syntax *is* the behaviour language (same lexer and parser);
the only additions are ``array name[size] @ base;`` declarations, which
are extracted textually before the body is parsed, and the use of
``int name;`` declarations as register-allocated kernel variables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.behavior import ast as bast
from repro.behavior.parser import parse_statements
from repro.lisa.lexer import tokenize
from repro.support.errors import ReproError


class KernelError(ReproError):
    """A kernel program is invalid or unsupported by a target."""


_ARRAY_DECL = re.compile(
    r"^\s*array\s+(\w+)\s*\[\s*(\d+)\s*\]\s*@\s*(\d+)\s*;\s*$"
)


@dataclass(frozen=True)
class ArrayDecl:
    name: str
    size: int
    base: int


@dataclass
class KernelProgram:
    """A parsed kernel: arrays, ordered variables, statement body."""

    arrays: Dict[str, ArrayDecl]
    variables: List[str]
    body: Tuple[bast.Node, ...]
    source: str = ""

    def array(self, name):
        try:
            return self.arrays[name]
        except KeyError:
            raise KernelError("unknown array %r" % name) from None


def parse_kernel(source):
    """Parse kernel source into a :class:`KernelProgram`."""
    body_lines = []
    arrays = {}
    for line in source.splitlines():
        match = _ARRAY_DECL.match(line)
        if match:
            name, size, base = match.groups()
            if name in arrays:
                raise KernelError("duplicate array %r" % name)
            arrays[name] = ArrayDecl(name, int(size), int(base))
        else:
            body_lines.append(line)
    tokens = [t for t in tokenize("\n".join(body_lines), "<kernel>")
              if t.kind != "eof"]
    body = parse_statements(tokens)
    program = KernelProgram(arrays=arrays, variables=[], body=body,
                            source=source)
    _collect_variables(program)
    _check(program)
    return program


def _collect_variables(program):
    seen = set()

    def visit(statements):
        for stmt in statements:
            if isinstance(stmt, bast.LocalDecl):
                if stmt.name in seen:
                    raise KernelError(
                        "variable %r declared twice" % stmt.name
                    )
                if stmt.name in program.arrays:
                    raise KernelError(
                        "%r is both an array and a variable" % stmt.name
                    )
                seen.add(stmt.name)
                program.variables.append(stmt.name)
            elif isinstance(stmt, bast.If):
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, bast.While):
                visit(stmt.body)
            elif isinstance(stmt, bast.Block):
                visit(stmt.body)

    visit(program.body)


def _check(program):
    """Front-end checks: every name is a variable or array; arrays are
    only used indexed; no calls."""
    declared = set(program.variables)

    def check_expr(expr, local_ok=declared):
        for node in bast.walk(expr):
            if isinstance(node, bast.Call):
                raise KernelError(
                    "function calls are not part of the kernel language "
                    "(%r)" % node.name
                )
            if isinstance(node, bast.Name):
                if node.name in program.arrays:
                    raise KernelError(
                        "array %r used without an index" % node.name
                    )
                if node.name not in declared:
                    raise KernelError("undeclared variable %r" % node.name)
            if isinstance(node, bast.Index):
                if node.base not in program.arrays:
                    raise KernelError(
                        "%r is not a declared array" % node.base
                    )

    def visit(statements):
        for stmt in statements:
            if isinstance(stmt, bast.LocalDecl):
                if stmt.init is not None:
                    check_expr(stmt.init)
            elif isinstance(stmt, bast.Assign):
                check_expr(stmt.value)
                if isinstance(stmt.target, bast.Index):
                    check_expr(stmt.target.index)
                    if stmt.target.base not in program.arrays:
                        raise KernelError(
                            "%r is not a declared array" % stmt.target.base
                        )
                elif isinstance(stmt.target, bast.Name):
                    if stmt.target.name not in declared:
                        raise KernelError(
                            "undeclared variable %r" % stmt.target.name
                        )
            elif isinstance(stmt, bast.ExprStmt):
                raise KernelError(
                    "expression statements have no effect in kernels"
                )
            elif isinstance(stmt, bast.If):
                check_expr(stmt.condition)
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, bast.While):
                check_expr(stmt.condition)
                visit(stmt.body)
            elif isinstance(stmt, bast.Block):
                visit(stmt.body)
            else:
                raise KernelError(
                    "unsupported statement %r" % type(stmt).__name__
                )

    visit(program.body)
