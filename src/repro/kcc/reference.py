"""Reference interpreter for kernel programs.

An independent executable semantics for the kernel language: variables
and array cells are 32-bit wrapping integers (matching the `int`-typed
registers and data memories of the shipped models).  Used as the golden
model when testing the compiler back-ends.
"""

from __future__ import annotations

from repro.behavior import ast as bast
from repro.behavior.runtime import idiv, imod
from repro.kcc.frontend import KernelError
from repro.support.errors import SimulationError

_MAX_STEPS = 1 << 22


def wrap32(value):
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def evaluate_kernel(program, memory):
    """Run a kernel over ``memory`` (a mutable address -> value list).

    Returns the final variable environment; ``memory`` is updated in
    place. Array accesses are bounds-checked against declarations.
    """
    variables = {name: 0 for name in program.variables}
    steps = [0]

    def tick():
        steps[0] += 1
        if steps[0] > _MAX_STEPS:
            raise SimulationError("kernel reference run exceeded step cap")

    def address(index_node, array):
        index = expr(index_node)
        if not 0 <= index < array.size:
            raise KernelError(
                "index %d out of bounds for array %s[%d]"
                % (index, array.name, array.size)
            )
        return array.base + index

    def expr(node):
        tick()
        if isinstance(node, bast.IntLit):
            return node.value
        if isinstance(node, bast.Name):
            return variables[node.name]
        if isinstance(node, bast.Index):
            return memory[address(node.index, program.array(node.base))]
        if isinstance(node, bast.Unary):
            value = expr(node.operand)
            if node.op == "-":
                return wrap32(-value)
            if node.op == "~":
                return wrap32(~value)
            return 0 if value else 1
        if isinstance(node, bast.Ternary):
            return expr(node.if_true) if expr(node.condition) \
                else expr(node.if_false)
        if isinstance(node, bast.Binary):
            if node.op == "&&":
                return 1 if (expr(node.left) and expr(node.right)) else 0
            if node.op == "||":
                return 1 if (expr(node.left) or expr(node.right)) else 0
            left = expr(node.left)
            right = expr(node.right)
            table = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: idiv(left, right),
                "%": lambda: imod(left, right),
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "==": lambda: 1 if left == right else 0,
                "!=": lambda: 1 if left != right else 0,
                "<": lambda: 1 if left < right else 0,
                ">": lambda: 1 if left > right else 0,
                "<=": lambda: 1 if left <= right else 0,
                ">=": lambda: 1 if left >= right else 0,
            }
            return wrap32(table[node.op]())
        raise KernelError("unsupported expression %r" % (node,))

    def run(statements):
        for stmt in statements:
            tick()
            if isinstance(stmt, bast.LocalDecl):
                variables[stmt.name] = (
                    wrap32(expr(stmt.init)) if stmt.init is not None else 0
                )
            elif isinstance(stmt, bast.Assign):
                value = expr(stmt.value)
                if stmt.op != "=":
                    op = stmt.op[:-1]
                    current = expr(stmt.target)
                    value = expr(
                        bast.Binary(op, bast.IntLit(current),
                                    bast.IntLit(value))
                    )
                value = wrap32(value)
                if isinstance(stmt.target, bast.Name):
                    variables[stmt.target.name] = value
                else:
                    array = program.array(stmt.target.base)
                    memory[address(stmt.target.index, array)] = value
            elif isinstance(stmt, bast.If):
                if expr(stmt.condition):
                    run(stmt.then_body)
                else:
                    run(stmt.else_body)
            elif isinstance(stmt, bast.While):
                while expr(stmt.condition):
                    run(stmt.body)
            elif isinstance(stmt, bast.Block):
                run(stmt.body)

    run(program.body)
    return variables
