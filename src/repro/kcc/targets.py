"""Compiler back-ends: instruction selection per target model.

Each target knows its register conventions and how to spell the
primitive operations in its assembly syntax; everything above (register
allocation, expression trees, control-flow lowering) is shared.  The
c62x back-end also schedules the exposed load and branch delay slots
(conservatively: nop padding).
"""

from __future__ import annotations

from repro.kcc.frontend import KernelError

_BINOPS = ("+", "-", "*", "&", "|", "^")
_COMPARES = ("==", "!=", "<", ">", "<=", ">=")


class Target:
    """Back-end interface; methods return lists of assembly lines."""

    name = "abstract"
    model_name = "abstract"
    var_regs = ()
    temp_regs = ()
    max_shift = 31

    def __init__(self, fresh_label):
        self.fresh_label = fresh_label

    # -- required primitives ----------------------------------------------

    def load_const(self, dst, value, scratch):
        raise NotImplementedError

    def const_needs_scratch(self, value):
        return False

    def move(self, dst, src):
        raise NotImplementedError

    def binop(self, op, dst, a, b):
        raise NotImplementedError

    def shift(self, op, dst, src, amount):
        raise NotImplementedError

    def compare(self, op, dst, a, b, scratch):
        raise KernelError(
            "target %r cannot materialise %r comparisons as values; "
            "use ==/!=/truth tests in conditions" % (self.name, op)
        )

    def supports_value_compare(self, op):
        return False

    def load(self, dst, array, index_reg):
        raise NotImplementedError

    def store(self, src, array, index_reg, scratch):
        raise NotImplementedError

    def branch_if_zero(self, reg, label):
        raise NotImplementedError

    def branch_if_nonzero(self, reg, label):
        raise NotImplementedError

    def jump(self, label):
        raise NotImplementedError

    def emit_label(self, label):
        return ["%s:" % label]

    def prologue(self):
        return []

    def halt(self):
        return ["        halt"]


class TinyDspTarget(Target):
    """Three-address 16-bit target; 8 registers, branch-on-nonzero only.

    r7 is reserved as the permanent zero register; variables occupy
    r1... and temporaries the rest.
    """

    name = "tinydsp"
    model_name = "tinydsp"
    max_shift = 7
    _ZERO = "r7"

    def __init__(self, fresh_label, variable_count):
        super().__init__(fresh_label)
        usable = ["r1", "r2", "r3", "r4", "r5", "r6", "r0"]
        if variable_count > 4:
            raise KernelError(
                "tinydsp back-end supports at most 4 kernel variables "
                "(got %d)" % variable_count
            )
        self.var_regs = tuple(usable[:variable_count])
        self.temp_regs = tuple(usable[variable_count:])

    def prologue(self):
        return ["        ldi %s, 0" % self._ZERO]

    def const_needs_scratch(self, value):
        return not -128 <= value <= 127

    def load_const(self, dst, value, scratch):
        if -128 <= value <= 127:
            return ["        ldi %s, %d" % (dst, value)]
        # Build from 7-bit chunks, MSB first: five chunks cover 35 bits,
        # the final value wraps into 32 like every register write.
        lines = []
        chunks = [(value >> s) & 0x7F for s in (28, 21, 14, 7, 0)]
        while len(chunks) > 1 and chunks[0] == 0:
            chunks.pop(0)
        lines.append("        ldi %s, %d" % (dst, chunks[0]))
        for chunk in chunks[1:]:
            lines.append("        shl %s, %s, 7" % (dst, dst))
            if chunk:
                lines.append("        ldi %s, %d" % (scratch, chunk))
                lines.append("        add %s, %s, %s" % (dst, dst, scratch))
        return lines

    def move(self, dst, src):
        if dst == src:
            return []
        return ["        mov %s, %s" % (dst, src)]

    def binop(self, op, dst, a, b):
        mnemonic = {"+": "add", "-": "sub", "*": "mul", "&": "and",
                    "|": "or", "^": "xor"}[op]
        return ["        %s %s, %s, %s" % (mnemonic, dst, a, b)]

    def shift(self, op, dst, src, amount):
        mnemonic = "shl" if op == "<<" else "shr"
        lines = []
        current = src
        while amount > 0:
            step = min(amount, 7)
            lines.append(
                "        %s %s, %s, %d" % (mnemonic, dst, current, step)
            )
            current = dst
            amount -= step
        if not lines:
            lines = self.move(dst, src)
        return lines

    def load(self, dst, array, index_reg):
        # dmem[R[index_reg] + base]: fold the base into the pointer.
        lines = []
        if array.base:
            lines += self._add_const(index_reg, array.base)
        lines.append(
            "        ld %s, *%s" % (dst, index_reg.lstrip("r"))
        )
        return lines

    def store(self, src, array, index_reg, scratch):
        lines = []
        if array.base:
            lines += self._add_const(index_reg, array.base)
        lines.append(
            "        st %s, *%s" % (src, index_reg.lstrip("r"))
        )
        return lines

    def _add_const(self, reg, value):
        if not -128 <= value <= 127:
            raise KernelError(
                "tinydsp arrays must live below address 128 "
                "(base %d)" % value
            )
        return [
            "        ldi %s, %d" % (self._ZERO, value),
            "        add %s, %s, %s" % (reg, reg, self._ZERO),
            "        ldi %s, 0" % self._ZERO,
        ]

    def branch_if_nonzero(self, reg, label):
        return ["        brnz %s, %s" % (reg, label)]

    def branch_if_zero(self, reg, label):
        skip = self.fresh_label("bz_skip")
        return [
            "        brnz %s, %s" % (reg, skip),
            "        br %s" % label,
            "%s:" % skip,
        ]

    def jump(self, label):
        return ["        br %s" % label]


class C62xTarget(Target):
    """VLIW target; the back-end pads the exposed delay slots.

    a0 stays 0 (never written); variables occupy the A file from a1,
    temporaries the B file.  No parallelism is exploited -- one
    instruction per packet, like the paper-era "serial" compiler output
    the C6x toolchain produced at -O0.
    """

    name = "c62x"
    model_name = "c62x"
    max_shift = 31
    _LOAD_PAD = 3  # delay slots in this model (TI: 4; see c62x.lisa)
    _BRANCH_PAD = 5

    def __init__(self, fresh_label, variable_count):
        super().__init__(fresh_label)
        if variable_count > 12:
            raise KernelError(
                "c62x back-end supports at most 12 kernel variables "
                "(got %d)" % variable_count
            )
        self.var_regs = tuple("a%d" % i for i in range(1, variable_count + 1))
        self.temp_regs = tuple("b%d" % i for i in range(1, 13))

    def load_const(self, dst, value, scratch):
        low = value & 0xFFFF
        high = (value >> 16) & 0xFFFF
        signed16 = value if -32768 <= value <= 32767 else None
        if signed16 is not None:
            return ["        mvk %s, %d" % (dst, signed16)]
        return [
            "        mvk %s, %d" % (dst, low),
            "        mvkh %s, %d" % (dst, high),
        ]

    def move(self, dst, src):
        if dst == src:
            return []
        return ["        mv %s, %s" % (dst, src)]

    def binop(self, op, dst, a, b):
        if op == "*":
            # mpy multiplies the signed low halves only; full 32x32 is
            # out of scope for this back-end.
            return ["        mpy %s, %s, %s" % (dst, a, b)]
        mnemonic = {"+": "add", "-": "sub", "&": "and", "|": "or",
                    "^": "xor"}[op]
        return ["        %s %s, %s, %s" % (mnemonic, dst, a, b)]

    def shift(self, op, dst, src, amount):
        mnemonic = "shl" if op == "<<" else "shr"
        if amount == 0:
            return self.move(dst, src)
        return ["        %s %s, %s, %d" % (mnemonic, dst, src, amount)]

    def supports_value_compare(self, op):
        return True

    def compare(self, op, dst, a, b, scratch):
        direct = {"==": "cmpeq", "<": "cmplt", ">": "cmpgt"}
        if op in direct:
            return ["        %s %s, %s, %s" % (direct[op], dst, a, b)]
        if op == "!=":
            return [
                "        cmpeq %s, %s, %s" % (dst, a, b),
                "        mvk %s, 1" % scratch,
                "        xor %s, %s, %s" % (dst, dst, scratch),
            ]
        if op == "<=":  # a <= b  <=>  !(a > b)
            return [
                "        cmpgt %s, %s, %s" % (dst, a, b),
                "        mvk %s, 1" % scratch,
                "        xor %s, %s, %s" % (dst, dst, scratch),
            ]
        if op == ">=":
            return [
                "        cmplt %s, %s, %s" % (dst, a, b),
                "        mvk %s, 1" % scratch,
                "        xor %s, %s, %s" % (dst, dst, scratch),
            ]
        raise KernelError("unsupported comparison %r" % op)

    def _pad(self, count):
        return ["        nop"] * count

    def load(self, dst, array, index_reg):
        return (
            ["        ldw %s, %s, %d" % (dst, index_reg, array.base)]
            + self._pad(self._LOAD_PAD)
        )

    def store(self, src, array, index_reg, scratch):
        return ["        stw %s, %s, %d" % (src, index_reg, array.base)]

    def branch_if_zero(self, reg, label):
        return ["        bz %s, %s" % (reg, label)] + self._pad(
            self._BRANCH_PAD
        )

    def branch_if_nonzero(self, reg, label):
        return ["        bnz %s, %s" % (reg, label)] + self._pad(
            self._BRANCH_PAD
        )

    def jump(self, label):
        return ["        b %s" % label] + self._pad(self._BRANCH_PAD)


TARGETS = {
    "tinydsp": TinyDspTarget,
    "c62x": C62xTarget,
}
