"""LISA-style machine description language front-end.

The flow mirrors the paper's Figure 5:

* :mod:`repro.lisa.lexer` / :mod:`repro.lisa.parser` read a LISA
  description into an AST (:mod:`repro.lisa.ast`),
* :mod:`repro.lisa.semantics` (the *LISA compiler*) checks the AST and
  produces the *model data base* (:mod:`repro.lisa.model`), from which
  the simulation-compiler generator and the tool generators work.
"""

from repro.lisa.lexer import Lexer, Token, tokenize
from repro.lisa.parser import parse_source
from repro.lisa.semantics import compile_ast, compile_source
from repro.lisa.model import (
    MachineModel,
    Operation,
    PipelineDef,
    RegisterDef,
    MemoryDef,
)

__all__ = [
    "Lexer",
    "Token",
    "tokenize",
    "parse_source",
    "compile_ast",
    "compile_source",
    "MachineModel",
    "Operation",
    "PipelineDef",
    "RegisterDef",
    "MemoryDef",
]
