"""Abstract syntax tree for the LISA dialect.

The AST is a faithful, unchecked image of the source text.  Semantic
analysis (:mod:`repro.lisa.semantics`) turns it into the model data base.

BEHAVIOR and EXPRESSION section bodies are stored as raw token slices;
they are parsed by :mod:`repro.behavior` during semantic analysis so the
two languages stay decoupled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.support.bitutils import BitPattern
from repro.support.diagnostics import SourceLocation


@dataclass
class ModelAst:
    """A complete LISA description: resources + configuration + operations."""

    name: str
    resources: List[object]  # ProgramCounter/Register/Memory/Pipeline Ast
    config: List["ConfigItem"]
    operations: List["OperationAst"]
    location: SourceLocation


# --- RESOURCE section -----------------------------------------------------


@dataclass
class ProgramCounterAst:
    """``PROGRAM_COUNTER type name;``"""

    type_name: str
    name: str
    location: SourceLocation


@dataclass
class RegisterAst:
    """``REGISTER type name[count];`` (count omitted -> scalar)."""

    type_name: str
    name: str
    count: Optional[int]
    location: SourceLocation


@dataclass
class MemoryAst:
    """``MEMORY type name[size];``"""

    type_name: str
    name: str
    size: int
    location: SourceLocation


@dataclass
class PipelineAst:
    """``PIPELINE name = { ST1; ST2; ... };``"""

    name: str
    stages: List[str]
    location: SourceLocation


@dataclass
class ConfigItem:
    """``KEY(arg);`` inside the CONFIG block; arg is int or identifier."""

    key: str
    args: List[object]
    location: SourceLocation


# --- OPERATION sections ----------------------------------------------------


@dataclass
class GroupDeclAst:
    """``GROUP name = { op_a || op_b || op_c };``"""

    name: str
    alternatives: List[str]
    location: SourceLocation


@dataclass
class InstanceDeclAst:
    """``INSTANCE name = { op };`` -- a group with exactly one alternative."""

    name: str
    operation: str
    location: SourceLocation


@dataclass
class LabelDeclAst:
    """``LABEL name1, name2;`` -- integer coding fields."""

    names: List[str]
    location: SourceLocation


@dataclass
class ReferenceDeclAst:
    """``REFERENCE name1, name2;`` -- items declared by an ancestor op."""

    names: List[str]
    location: SourceLocation


@dataclass
class DeclareSectionAst:
    items: List[object]  # Group/Instance/Label/Reference decls
    location: SourceLocation


@dataclass
class CodingPatternAst:
    """A literal bit pattern element in a CODING section."""

    pattern: BitPattern
    location: SourceLocation


@dataclass
class CodingRefAst:
    """A named element in a CODING section.

    ``width`` must be given (``name[8]``) when ``name`` is a LABEL; for
    groups and instances the width comes from the referenced operations.
    """

    name: str
    width: Optional[int]
    location: SourceLocation


@dataclass
class CodingSectionAst:
    elements: List[object]  # CodingPatternAst | CodingRefAst
    location: SourceLocation


@dataclass
class SyntaxLiteralAst:
    text: str
    location: SourceLocation


@dataclass
class SyntaxRefAst:
    name: str
    location: SourceLocation


@dataclass
class SyntaxSectionAst:
    elements: List[object]  # SyntaxLiteralAst | SyntaxRefAst
    location: SourceLocation


@dataclass
class BehaviorSectionAst:
    """Raw token body of a BEHAVIOR section (without the braces)."""

    tokens: List[object]
    location: SourceLocation


@dataclass
class ExpressionSectionAst:
    """Raw token body of an EXPRESSION section (without the braces)."""

    tokens: List[object]
    location: SourceLocation


@dataclass
class ActivationSectionAst:
    """``ACTIVATION { name1, name2 }`` -- ops scheduled into their stages."""

    names: List[str]
    location: SourceLocation


@dataclass
class IfSectionsAst:
    """Section-level ``IF (cond) { sections } ELSE { sections }``.

    This is the paper's construct for non-orthogonal coding fields
    (Section 5.1): the condition is over REFERENCEd coding items and is
    resolvable at decode time, letting the simulation compiler pick the
    variant during simulation compilation.
    """

    condition_tokens: List[object]
    then_items: List[object]
    else_items: List[object]
    location: SourceLocation


@dataclass
class SwitchCaseAst:
    """One ``CASE value: { sections }`` arm (value None = DEFAULT)."""

    value_tokens: Optional[List[object]]
    items: List[object]
    location: SourceLocation


@dataclass
class SwitchSectionsAst:
    """Section-level ``SWITCH (ref) { CASE ...: {...} ... }``."""

    selector_tokens: List[object]
    cases: List[SwitchCaseAst]
    location: SourceLocation


@dataclass
class OperationAst:
    """``OPERATION name [IN pipe.STAGE] { section items }``."""

    name: str
    pipeline: Optional[str]
    stage: Optional[str]
    items: List[object]  # sections and If/Switch section groups
    location: SourceLocation

    def walk_sections(self):
        """Yield every plain section, descending into IF/SWITCH arms."""
        stack = list(reversed(self.items))
        while stack:
            item = stack.pop()
            if isinstance(item, IfSectionsAst):
                stack.extend(reversed(item.then_items + item.else_items))
            elif isinstance(item, SwitchSectionsAst):
                for case in reversed(item.cases):
                    stack.extend(reversed(case.items))
            else:
                yield item
