"""Serialisation of the model data base.

The paper's Figure 5 shows the LISA compiler producing a *data base*
that the downstream generators consume.  In this implementation the
data base is the in-memory :class:`repro.lisa.model.MachineModel`; this
module renders it to a JSON-compatible dict so it can be stored,
diffed, and inspected (``repro-lisa <model> --dump-db``).

The dump is a faithful *description* of the model (resources, config,
codings, syntax, operand structure, section inventory) rather than an
executable image: behaviours are included as structural summaries, not
re-loadable ASTs, because the authoritative source is the ``.lisa``
text.
"""

from __future__ import annotations

import json

from repro.behavior import ast as bast
from repro.lisa import model as m


def model_to_dict(model):
    """Render a machine model to a JSON-compatible dict."""
    return {
        "name": model.name,
        "source": model.source_filename,
        "pc": model.pc_name,
        "registers": [
            {
                "name": reg.name,
                "type": reg.dtype.name,
                "width": reg.dtype.width,
                "signed": reg.dtype.signed,
                "count": reg.count,
            }
            for reg in model.registers.values()
        ],
        "memories": [
            {
                "name": mem.name,
                "type": mem.dtype.name,
                "width": mem.dtype.width,
                "size": mem.size,
            }
            for mem in model.memories.values()
        ],
        "pipeline": {
            "name": model.pipeline.name,
            "stages": list(model.pipeline.stages),
        },
        "config": {
            "word_size": model.config.word_size,
            "program_memory": model.config.program_memory,
            "fetch_packet_words": model.config.fetch_packet_words,
            "parallel_bit": model.config.parallel_bit,
            "root_operation": model.config.root_operation,
            "execute_stage": model.config.execute_stage,
            "branch_policy": model.config.branch_policy,
            "defines": dict(model.config.defines),
        },
        "operations": [
            _operation_to_dict(model, op)
            for op in model.operations.values()
        ],
    }


def model_to_json(model, indent=2):
    return json.dumps(model_to_dict(model), indent=indent, sort_keys=True)


def _operation_to_dict(model, op):
    entry = {
        "name": op.name,
        "stage": op.stage,
        "labels": list(op.labels),
        "references": list(op.references),
        "groups": {name: list(alts) for name, alts in op.groups.items()},
        "instances": dict(op.instances),
        "coding": _coding_to_list(op) if op.has_coding else None,
        "coding_width": op.coding_width,
        "syntax_variants": _syntax_variants(model, op),
        "sections": _section_inventory(op),
    }
    return entry


def _coding_to_list(op):
    elements = []
    for element in op.coding:
        if isinstance(element, m.CodingPattern):
            elements.append({"pattern": str(element.pattern)})
        elif isinstance(element, m.CodingLabel):
            elements.append({"label": element.name, "width": element.width})
        else:
            elements.append({"slot": element.name, "width": element.width})
    return elements


def _syntax_variants(model, op):
    variants = []
    for syntax, bindings, usable in op.syntax_variants(model):
        variants.append({
            "text": _syntax_text(syntax),
            "bindings": dict(bindings),
            "assemblable": usable,
        })
    return variants


def _syntax_text(syntax):
    parts = []
    for element in syntax.elements:
        if isinstance(element, m.SyntaxLiteral):
            parts.append('"%s"' % element.text)
        else:
            parts.append(element.name)
    return " ".join(parts)


def _section_inventory(op):
    """Count section kinds across all guard variants."""
    behaviors = 0
    activations = []
    has_expression = False
    guarded = False
    for items in op.all_section_variants():
        for item in items:
            if isinstance(item, m.Behavior):
                behaviors += 1
            elif isinstance(item, m.Expression):
                has_expression = True
            elif isinstance(item, m.Activation):
                activations.extend(item.names)
    for item in op.items:
        if isinstance(item, (m.IfSections, m.SwitchSections)):
            guarded = True
    return {
        "behavior_variants": behaviors,
        "has_expression": has_expression,
        "activates": sorted(set(activations)),
        "guarded": guarded,
        "written_names": sorted(_written_names(op)),
    }


def _written_names(op):
    """Names assigned anywhere in the operation's behaviours."""
    written = set()
    for items in op.all_section_variants():
        for item in items:
            if isinstance(item, m.Behavior):
                for stmt in item.statements:
                    for node in bast.walk(stmt):
                        if isinstance(node, bast.Assign):
                            target = node.target
                            if isinstance(target, bast.Name):
                                written.add(target.name)
                            elif isinstance(target, bast.Index):
                                written.add(target.base)
    return written
