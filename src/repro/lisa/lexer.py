"""Tokenizer shared by the LISA parser and the behaviour-language parser.

The LISA dialect and its embedded C-like behaviour language use one token
set, so BEHAVIOR/EXPRESSION sections can be captured as token slices and
handed to the behaviour parser without re-lexing.

Token kinds:

``ident``
    Identifiers and keywords (keyword-ness is decided by the parsers).
``int``
    Integer literals: decimal, ``0x`` hex, ``0b`` binary without
    don't-cares.  ``value`` holds the integer.
``bits``
    Binary literals containing don't-care digits (``0b01x1``).  ``value``
    holds a :class:`repro.support.BitPattern`.
``string``
    Double-quoted strings with C escapes; ``value`` holds the text.
``punct``
    Operators and delimiters; ``text`` holds the exact spelling.
``eof``
    End of input (always the final token).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.support.bitutils import BitPattern
from repro.support.diagnostics import SourceLocation
from repro.support.errors import LisaSyntaxError

# Longest-first so that "<<=" is not read as "<<" then "=".
_PUNCTUATION = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "{", "}", "(", ")", "[", "]", ";", ",", ":", "=", "<", ">",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "?", ".", "@",
]

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")

# Digit sets are frozensets on purpose: membership tests use _peek(),
# which returns "" at end of input, and "" is "in" every *string*.
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")
_BIN_DIGITS = frozenset("01xX")

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    '"': '"',
    "\\": "\\",
}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str
    text: str
    value: object
    location: SourceLocation

    def is_punct(self, text):
        return self.kind == "punct" and self.text == text

    def is_ident(self, text=None):
        if self.kind != "ident":
            return False
        return text is None or self.text == text

    def __str__(self):
        return "%s(%r)" % (self.kind, self.text)


class Lexer:
    """Streaming tokenizer over one source text."""

    def __init__(self, source, filename="<string>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self):
        """Yield every token in the source, ending with one ``eof`` token."""
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._source):
                yield Token("eof", "", None, self._location())
                return
            yield self._next_token()

    # -- internals -------------------------------------------------------

    def _location(self):
        return SourceLocation(self._filename, self._line, self._col)

    def _peek(self, ahead=0):
        pos = self._pos + ahead
        if pos < len(self._source):
            return self._source[pos]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self):
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self):
        start = self._location()
        self._advance(2)
        while self._pos < len(self._source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LisaSyntaxError("unterminated block comment", start)

    def _next_token(self):
        ch = self._peek()
        if ch in _IDENT_START:
            return self._lex_ident()
        if ch.isdigit():
            return self._lex_number()
        if ch == '"':
            return self._lex_string()
        return self._lex_punct()

    def _lex_ident(self):
        loc = self._location()
        start = self._pos
        while self._peek() in _IDENT_CONT:
            self._advance()
        text = self._source[start : self._pos]
        return Token("ident", text, text, loc)

    def _lex_number(self):
        loc = self._location()
        start = self._pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() in _HEX_DIGITS:
                self._advance()
            text = self._source[start : self._pos]
            if len(text) == 2:
                raise LisaSyntaxError("incomplete hex literal %r" % text, loc)
            return Token("int", text, int(text, 16), loc)
        if self._peek() == "0" and self._peek(1) in ("b", "B"):
            self._advance(2)
            digit_start = self._pos
            while self._peek() in _BIN_DIGITS:
                self._advance()
            digits = self._source[digit_start : self._pos]
            text = self._source[start : self._pos]
            if not digits:
                raise LisaSyntaxError("incomplete binary literal %r" % text, loc)
            if "x" in digits or "X" in digits:
                return Token("bits", text, BitPattern.parse(digits), loc)
            return Token("int", text, int(digits, 2), loc)
        while self._peek().isdigit():
            self._advance()
        text = self._source[start : self._pos]
        if self._peek() in _IDENT_START:
            raise LisaSyntaxError(
                "invalid character %r after number %r" % (self._peek(), text),
                self._location(),
            )
        return Token("int", text, int(text, 10), loc)

    def _lex_string(self):
        loc = self._location()
        self._advance()  # opening quote
        chars = []
        while True:
            if self._pos >= len(self._source) or self._peek() == "\n":
                raise LisaSyntaxError("unterminated string literal", loc)
            ch = self._peek()
            if ch == '"':
                self._advance()
                text = "".join(chars)
                return Token("string", '"%s"' % text, text, loc)
            if ch == "\\":
                escape = self._peek(1)
                if escape not in _ESCAPES:
                    raise LisaSyntaxError(
                        "unknown escape sequence \\%s" % escape, self._location()
                    )
                chars.append(_ESCAPES[escape])
                self._advance(2)
            else:
                chars.append(ch)
                self._advance()

    def _lex_punct(self):
        loc = self._location()
        for punct in _PUNCTUATION:
            if self._source.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token("punct", punct, punct, loc)
        raise LisaSyntaxError(
            "unexpected character %r" % self._peek(), loc
        )


def tokenize(source, filename="<string>"):
    """Tokenize ``source`` into a list ending with an ``eof`` token."""
    return list(Lexer(source, filename).tokens())
