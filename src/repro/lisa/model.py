"""The machine-model data base produced by the LISA compiler.

This is the central artefact of the tool flow (the paper's "data base" in
its Figure 5): a checked, queryable representation of the processor from
which the decoder, the assembler/disassembler, the interpretive simulator
and the simulation compiler are all generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.behavior import ast as bast
from repro.support.bitutils import BitPattern, canonicalize
from repro.support.errors import LisaSemanticError

# -- data types --------------------------------------------------------------


@dataclass(frozen=True)
class DataType:
    """A storage element type: bit width and signedness."""

    name: str
    width: int
    signed: bool

    @property
    def mask(self):
        return (1 << self.width) - 1

    def canonical(self, value):
        """Encode ``value`` into this type's canonical Python integer.

        Signed types are stored as signed Python ints so that reads (which
        dominate simulation time) need no conversion.  Delegates to
        :func:`repro.support.bitutils.canonicalize`, the shared formula.
        """
        return canonicalize(value, self.width, self.signed)


_TYPE_LIST = [
    DataType("bit", 1, False),
    DataType("int8", 8, True),
    DataType("uint8", 8, False),
    DataType("int16", 16, True),
    DataType("uint16", 16, False),
    DataType("int32", 32, True),
    DataType("uint32", 32, False),
    # 40-bit guard-bit accumulators (TMS320C54x style).
    DataType("int40", 40, True),
    DataType("uint40", 40, False),
    DataType("int64", 64, True),
    DataType("uint64", 64, False),
]

_TYPE_ALIASES = {
    "char": "int8",
    "uchar": "uint8",
    "short": "int16",
    "ushort": "uint16",
    "int": "int32",
    "uint": "uint32",
    "long": "int64",
    "ulong": "uint64",
    "word": "uint32",
}

TYPES = {t.name: t for t in _TYPE_LIST}
TYPES.update({alias: TYPES[name] for alias, name in _TYPE_ALIASES.items()})


def lookup_type(name, location=None):
    try:
        return TYPES[name]
    except KeyError:
        raise LisaSemanticError("unknown type %r" % name, location) from None


# -- resources ---------------------------------------------------------------


@dataclass(frozen=True)
class RegisterDef:
    """A scalar register or register file.  ``count`` is None for scalars."""

    name: str
    dtype: DataType
    count: Optional[int]

    @property
    def is_file(self):
        return self.count is not None


@dataclass(frozen=True)
class MemoryDef:
    """A linear, word-addressed memory of ``size`` elements."""

    name: str
    dtype: DataType
    size: int


@dataclass(frozen=True)
class PipelineDef:
    """An ordered list of pipeline stage names."""

    name: str
    stages: Tuple[str, ...]

    def stage_index(self, stage_name):
        try:
            return self.stages.index(stage_name)
        except ValueError:
            raise LisaSemanticError(
                "pipeline %r has no stage %r" % (self.name, stage_name)
            ) from None

    @property
    def depth(self):
        return len(self.stages)


# -- model configuration -----------------------------------------------------


@dataclass
class ModelConfig:
    """Model-wide knobs set by the CONFIG block.

    word_size
        Instruction word width in bits (program memory element width).
    program_memory
        Name of the memory resource that holds instructions.
    fetch_packet_words
        Words fetched per cycle; >1 enables VLIW dispatch (the
        TMS320C6x-style fetch packets the paper highlights).
    parallel_bit
        Bit index (from LSB) whose value 1 chains the *next* word into the
        same execute packet.  Only meaningful for fetch packets > 1.
    root_operation
        Name of the operation whose coding tree describes a full
        instruction word.
    execute_stage
        Default stage for operations declared without ``IN pipe.STAGE``.
    branch_policy
        "flush": a PC write squashes younger in-flight instructions
        (interlocked pipelines).  "delay": younger instructions complete
        (exposed delay slots, C6x style).
    defines
        Symbolic constants usable in behaviours and IF/SWITCH conditions.
    """

    word_size: int = 32
    program_memory: Optional[str] = None
    fetch_packet_words: int = 1
    parallel_bit: Optional[int] = None
    root_operation: str = "instruction"
    execute_stage: Optional[str] = None
    branch_policy: str = "flush"
    defines: Dict[str, int] = field(default_factory=dict)


# -- operation sections ------------------------------------------------------


@dataclass(frozen=True)
class CodingPattern:
    """Literal bits inside a coding sequence."""

    pattern: BitPattern

    @property
    def width(self):
        return self.pattern.width


@dataclass(frozen=True)
class CodingLabel:
    """An extracted integer field (LABEL) with explicit width."""

    name: str
    width: int


@dataclass(frozen=True)
class CodingGroup:
    """A sub-operation slot: the named GROUP/INSTANCE selects and the
    selected alternative's coding occupies ``width`` bits."""

    name: str
    width: int


@dataclass(frozen=True)
class SyntaxLiteral:
    text: str


@dataclass(frozen=True)
class SyntaxRef:
    name: str


@dataclass(frozen=True)
class Syntax:
    """A parsed SYNTAX section: literals and operand references."""

    elements: Tuple[object, ...]


@dataclass(frozen=True)
class Behavior:
    """A parsed BEHAVIOR section."""

    statements: tuple


@dataclass(frozen=True)
class Expression:
    """A parsed EXPRESSION section (single expression)."""

    expression: bast.Node


@dataclass(frozen=True)
class Activation:
    """ACTIVATION section: names of groups/instances/operations to fire."""

    names: Tuple[str, ...]


@dataclass(frozen=True)
class IfSections:
    """Decode-time-conditional sections (non-orthogonal coding support)."""

    condition: bast.Node
    then_items: tuple
    else_items: tuple


@dataclass(frozen=True)
class SwitchSections:
    selector: bast.Node
    cases: tuple  # of (value_expr_or_None, items_tuple)


# -- operations --------------------------------------------------------------


@dataclass
class Operation:
    """One OPERATION of the model, semantically checked.

    ``items`` is the ordered tree of sections where IfSections /
    SwitchSections nodes guard decode-time variants.  ``coding`` and the
    declare-section results are hoisted out because they must be
    unconditional (enforced by semantic analysis).
    """

    name: str
    stage: Optional[str]  # stage name within the model pipeline, or None
    groups: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    instances: Dict[str, str] = field(default_factory=dict)
    labels: Tuple[str, ...] = ()
    references: Tuple[str, ...] = ()
    coding: Optional[Tuple[object, ...]] = None  # Coding* elements
    items: tuple = ()  # Behavior/Expression/Activation/Syntax*/If/Switch
    coding_width: Optional[int] = None

    @property
    def has_coding(self):
        return self.coding is not None

    def declared_operands(self):
        """Names of operands this operation declares itself."""
        names = set(self.labels)
        names.update(self.groups)
        names.update(self.instances)
        return names

    def child_slots(self):
        """All (name -> alternatives) sub-operation slots, groups first."""
        slots = {name: alts for name, alts in self.groups.items()}
        slots.update(
            {name: (op,) for name, op in self.instances.items()}
        )
        return slots

    def _select_items(self, items, env, model):
        selected = []
        for item in items:
            if isinstance(item, IfSections):
                if evaluate_condition(item.condition, env, model):
                    selected.extend(
                        self._select_items(item.then_items, env, model)
                    )
                else:
                    selected.extend(
                        self._select_items(item.else_items, env, model)
                    )
            elif isinstance(item, SwitchSections):
                selector = evaluate_condition(item.selector, env, model)
                matched = False
                default_items = None
                for value_expr, case_items in item.cases:
                    if value_expr is None:
                        default_items = case_items
                        continue
                    value = evaluate_condition(value_expr, env, model)
                    if _cond_equal(selector, value):
                        selected.extend(
                            self._select_items(case_items, env, model)
                        )
                        matched = True
                        break
                if not matched and default_items is not None:
                    selected.extend(
                        self._select_items(default_items, env, model)
                    )
            else:
                selected.append(item)
        return selected

    def resolve_variant(self, env, model):
        """Resolve IF/SWITCH section guards against a decode environment.

        ``env`` maps operand names to values: ints for labels, selected
        operation names (strings) for groups/instances.  Returns an
        :class:`OperationVariant` with the effective flat sections.

        This is the decode-time/run-time split at the heart of the paper's
        Section 5.1: the simulation compiler calls this once per program
        instruction; the interpretive simulator calls it on every fetch.
        """
        selected = self._select_items(self.items, env, model)
        behaviors = []
        expression = None
        activations = []
        syntax = None
        for item in selected:
            if isinstance(item, Behavior):
                behaviors.append(item)
            elif isinstance(item, Expression):
                expression = item
            elif isinstance(item, Activation):
                activations.extend(item.names)
            elif isinstance(item, Syntax):
                syntax = item
        return OperationVariant(
            operation=self,
            behaviors=tuple(behaviors),
            expression=expression,
            activations=tuple(activations),
            syntax=syntax,
        )

    def syntax_variants(self, model):
        """Enumerate SYNTAX variants with solved guard bindings.

        Returns a list of ``(syntax, bindings, usable)`` tuples, one per
        guard path that contains a SYNTAX section.  ``bindings`` maps
        REFERENCEd/own coding-field names to the values implied by the
        guards along the path (e.g. ``{"mode": 0}`` inside ``IF (mode ==
        0)``); ``usable`` is False when a guard could not be solved to
        positive bindings (such variants decode and simulate fine but
        cannot be *assembled*).

        This is what makes the paper's non-orthogonal coding fields
        (Section 5.1) round-trip through the generated assembler and
        disassembler: the mnemonic chosen under ``IF (mode == short)``
        implies ``mode = short`` when assembling.
        """
        results = []
        for items, bindings, usable in _variant_paths(self.items, model):
            syntax = None
            for item in items:
                if isinstance(item, Syntax):
                    syntax = item
            if syntax is not None:
                results.append((syntax, bindings, usable))
        return results

    def all_section_variants(self):
        """Enumerate every (path of guard choices -> flat item list).

        Used by generators that must emit code for *all* variants (the
        assembler syntax table and the simulation-compiler source
        emitter).  Yields flat item lists; guard conditions are not
        returned because the callers only need the union of sections.
        """
        def expand(items):
            results = [[]]
            for item in items:
                if isinstance(item, IfSections):
                    branches = expand(item.then_items) + expand(item.else_items)
                    results = [r + b for r in results for b in branches]
                elif isinstance(item, SwitchSections):
                    branches = []
                    for _value, case_items in item.cases:
                        branches.extend(expand(case_items))
                    if not branches:
                        branches = [[]]
                    results = [r + b for r in results for b in branches]
                else:
                    results = [r + [item] for r in results]
            return results

        return expand(self.items)


@dataclass(frozen=True)
class OperationVariant:
    """The effective sections of an operation after guard resolution."""

    operation: Operation
    behaviors: tuple
    expression: Optional[Expression]
    activations: Tuple[str, ...]
    syntax: Optional[tuple]


def _cond_equal(left, right):
    return left == right


def _guard_value(node, model):
    """Literal value of a guard operand: int literal or DEFINE constant."""
    if isinstance(node, bast.IntLit):
        return node.value
    if isinstance(node, bast.Name) and node.name in model.config.defines:
        return model.config.defines[node.name]
    return None


def _solve_equalities(condition, model):
    """Solve a guard into positive bindings {field: value}, or None.

    Handles conjunctions of ``name == literal`` comparisons; anything
    else is unsolvable (returns None).
    """
    if isinstance(condition, bast.Binary):
        if condition.op == "&&":
            left = _solve_equalities(condition.left, model)
            right = _solve_equalities(condition.right, model)
            if left is None or right is None:
                return None
            for name, value in right.items():
                if left.get(name, value) != value:
                    return None  # contradictory conjunction
            left.update(right)
            return left
        if condition.op == "==":
            if isinstance(condition.left, bast.Name):
                value = _guard_value(condition.right, model)
                if value is not None:
                    return {condition.left.name: value}
            if isinstance(condition.right, bast.Name):
                value = _guard_value(condition.left, model)
                if value is not None:
                    return {condition.right.name: value}
    return None


def label_width(model, name):
    """The unique coding width of label ``name`` across the model.

    Returns None when the name is not a coding label or is declared with
    several different widths (then negated 1-bit guard solving is off).
    """
    widths = set()
    for operation in model.operations.values():
        if not operation.has_coding:
            continue
        for element in operation.coding:
            if isinstance(element, CodingLabel) and element.name == name:
                widths.add(element.width)
    if len(widths) == 1:
        return next(iter(widths))
    return None


def _solve_negation(condition, model):
    """Solve the *negation* of a guard into bindings, for ELSE arms.

    Only the 1-bit-field case is decidable: ``!(mode == 0)`` with a
    1-bit ``mode`` implies ``mode = 1``.
    """
    solved = _solve_equalities(condition, model)
    if solved is None or len(solved) != 1:
        return None
    (name, value), = solved.items()
    if label_width(model, name) != 1 or value not in (0, 1):
        return None
    return {name: 1 - value}


def _merge_bindings(base, extra):
    if extra is None:
        return None
    merged = dict(base)
    for name, value in extra.items():
        if merged.get(name, value) != value:
            return None  # contradictory path
    merged.update(extra)
    return merged


def _variant_paths(items, model):
    """Expand guard paths into (flat_items, bindings, usable) tuples."""
    paths = [((), {}, True)]
    for item in items:
        if isinstance(item, IfSections):
            arms = []
            then_bind = _solve_equalities(item.condition, model)
            else_bind = _solve_negation(item.condition, model)
            arms.append((item.then_items, then_bind))
            arms.append((item.else_items, else_bind))
            paths = _expand_arms(paths, arms, model)
        elif isinstance(item, SwitchSections):
            arms = []
            for value_expr, case_items in item.cases:
                binding = None
                if value_expr is not None and isinstance(
                    item.selector, bast.Name
                ):
                    value = _guard_value(value_expr, model)
                    if value is not None:
                        binding = {item.selector.name: value}
                arms.append((case_items, binding))
            paths = _expand_arms(paths, arms, model)
        else:
            paths = [
                (flat + (item,), bindings, usable)
                for flat, bindings, usable in paths
            ]
    return paths


def _expand_arms(paths, arms, model):
    expanded = []
    for flat, bindings, usable in paths:
        for arm_items, arm_binding in arms:
            if arm_binding is None:
                arm_bindings, arm_usable = bindings, False
            else:
                merged = _merge_bindings(bindings, arm_binding)
                if merged is None:
                    continue  # contradictory: this path cannot decode
                arm_bindings, arm_usable = merged, usable
            for sub in _variant_paths(list(arm_items), model):
                sub_flat, sub_bindings, sub_usable = sub
                merged = _merge_bindings(arm_bindings, sub_bindings)
                if merged is None:
                    continue
                expanded.append(
                    (flat + sub_flat, merged, arm_usable and sub_usable)
                )
    return expanded


def evaluate_condition(node, env, model):
    """Evaluate a decode-time condition/selector expression.

    Only a restricted expression subset is allowed: integer literals,
    names (operand values, model defines, or bare operation names used as
    symbolic constants for group comparisons), unary/binary arithmetic
    and logic.  Calls and indexing are rejected -- conditions must be
    resolvable from the instruction encoding alone, which is exactly what
    makes them compile-time for the simulation compiler.
    """
    if isinstance(node, bast.IntLit):
        return node.value
    if isinstance(node, bast.Name):
        if node.name in env:
            return env[node.name]
        if node.name in model.config.defines:
            return model.config.defines[node.name]
        if node.name in model.operations:
            return node.name  # symbolic: compare group selection by op name
        raise LisaSemanticError(
            "condition references unknown name %r" % node.name, node.location
        )
    if isinstance(node, bast.Unary):
        value = evaluate_condition(node.operand, env, model)
        if node.op == "-":
            return -value
        if node.op == "~":
            return ~value
        if node.op == "!":
            return 0 if value else 1
    if isinstance(node, bast.Binary):
        left = evaluate_condition(node.left, env, model)
        if node.op == "&&":
            return 1 if (left and evaluate_condition(node.right, env, model)) else 0
        if node.op == "||":
            return 1 if (left or evaluate_condition(node.right, env, model)) else 0
        right = evaluate_condition(node.right, env, model)
        if node.op == "==":
            return 1 if left == right else 0
        if node.op == "!=":
            return 1 if left != right else 0
        ops = {
            "<": lambda a, b: 1 if a < b else 0,
            ">": lambda a, b: 1 if a > b else 0,
            "<=": lambda a, b: 1 if a <= b else 0,
            ">=": lambda a, b: 1 if a >= b else 0,
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "&": lambda a, b: a & b,
            "|": lambda a, b: a | b,
            "^": lambda a, b: a ^ b,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
        }
        if node.op in ops:
            return ops[node.op](left, right)
    if isinstance(node, bast.Ternary):
        if evaluate_condition(node.condition, env, model):
            return evaluate_condition(node.if_true, env, model)
        return evaluate_condition(node.if_false, env, model)
    raise LisaSemanticError(
        "unsupported construct in decode-time condition: %r" % (node,),
        getattr(node, "location", None),
    )


# -- the model ---------------------------------------------------------------


@dataclass
class MachineModel:
    """The complete machine model data base."""

    name: str
    pc_name: str
    registers: Dict[str, RegisterDef]
    memories: Dict[str, MemoryDef]
    pipeline: PipelineDef
    config: ModelConfig
    operations: Dict[str, Operation]
    source_filename: str = "<string>"

    @property
    def root_operation(self):
        return self.operations[self.config.root_operation]

    @property
    def word_size(self):
        return self.config.word_size

    @property
    def program_memory(self):
        return self.memories[self.config.program_memory]

    @property
    def is_vliw(self):
        return self.config.fetch_packet_words > 1

    def resource_names(self):
        names = {self.pc_name}
        names.update(self.registers)
        names.update(self.memories)
        return names

    def stage_index(self, stage_name):
        return self.pipeline.stage_index(stage_name)

    def stage_of(self, operation):
        """Pipeline stage index where ``operation`` executes.

        Operations without an explicit stage run in the model's default
        execute stage.
        """
        if operation.stage is not None:
            return self.pipeline.stage_index(operation.stage)
        if self.config.execute_stage is not None:
            return self.pipeline.stage_index(self.config.execute_stage)
        return self.pipeline.depth - 1

    def operation(self, name):
        try:
            return self.operations[name]
        except KeyError:
            raise LisaSemanticError(
                "model %r has no operation %r" % (self.name, name)
            ) from None

    def describe(self):
        """A human-readable summary (used by the CLI)."""
        lines = [
            "model %s" % self.name,
            "  pipeline %s: %s"
            % (self.pipeline.name, " -> ".join(self.pipeline.stages)),
            "  word size: %d bits" % self.word_size,
            "  registers: %s"
            % ", ".join(
                "%s[%s]" % (r.name, r.count) if r.is_file else r.name
                for r in self.registers.values()
            ),
            "  memories: %s"
            % ", ".join(
                "%s[%d]" % (m.name, m.size) for m in self.memories.values()
            ),
            "  operations: %d (%d with coding)"
            % (
                len(self.operations),
                sum(1 for op in self.operations.values() if op.has_coding),
            ),
        ]
        if self.is_vliw:
            lines.append(
                "  VLIW: %d-word fetch packets, parallel bit %s"
                % (self.config.fetch_packet_words, self.config.parallel_bit)
            )
        return "\n".join(lines)
