"""Recursive-descent parser for the LISA dialect.

Grammar (informal)::

    model        := [ MODEL ident ; ] ( resource | config | operation )*
    resource     := RESOURCE { resource_item* }
    resource_item:= PROGRAM_COUNTER type ident ;
                  | REGISTER type ident [ '[' int ']' ] ;
                  | MEMORY type ident '[' int ']' ;
                  | PIPELINE ident = { ident ( ; ident )* [;] } ;
    config       := CONFIG { ( ident ( arg {, arg} ) ; )* }
    operation    := OPERATION ident [ IN ident . ident ] { op_item* }
    op_item      := section | if_sections | switch_sections
    section      := DECLARE { declare_item* }
                  | CODING { coding_elem+ }
                  | SYNTAX { syntax_elem+ }
                  | BEHAVIOR { <balanced tokens> }
                  | EXPRESSION { <balanced tokens> }
                  | ACTIVATION { ident ( , ident )* }
    if_sections  := IF ( <tokens> ) { op_item* } [ ELSE { op_item* } ]
    switch       := SWITCH ( <tokens> ) { ( CASE <tokens> : { op_item* }
                                          | DEFAULT : { op_item* } )+ }
    declare_item := GROUP ident = { ident ( '||' ident )* } ;
                  | INSTANCE ident = { ident } ;
                  | LABEL ident ( , ident )* ;
                  | REFERENCE ident ( , ident )* ;
    coding_elem  := <binary literal>            (0b with optional x digits)
                  | ident [ '[' int ']' ]
    syntax_elem  := string | ident
"""

from __future__ import annotations

from repro.lisa import ast
from repro.lisa.lexer import tokenize
from repro.support.bitutils import BitPattern
from repro.support.errors import LisaSyntaxError

_SECTION_KEYWORDS = frozenset(
    ["DECLARE", "CODING", "SYNTAX", "BEHAVIOR", "EXPRESSION", "ACTIVATION"]
)


class _TokenStream:
    """Cursor over the token list with convenience accessors."""

    def __init__(self, tokens):
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead=0):
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self):
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def at_punct(self, text):
        return self.peek().is_punct(text)

    def at_ident(self, text=None):
        return self.peek().is_ident(text)

    def accept_punct(self, text):
        if self.at_punct(text):
            return self.next()
        return None

    def accept_ident(self, text):
        if self.at_ident(text):
            return self.next()
        return None

    def expect_punct(self, text):
        token = self.peek()
        if not token.is_punct(text):
            raise LisaSyntaxError(
                "expected %r, found %s" % (text, token), token.location
            )
        return self.next()

    def expect_ident(self, text=None):
        token = self.peek()
        if token.kind != "ident" or (text is not None and token.text != text):
            expected = "identifier" if text is None else repr(text)
            raise LisaSyntaxError(
                "expected %s, found %s" % (expected, token), token.location
            )
        return self.next()

    def expect_int(self):
        token = self.peek()
        if token.kind != "int":
            raise LisaSyntaxError(
                "expected integer, found %s" % token, token.location
            )
        return self.next()

    def at_eof(self):
        return self.peek().kind == "eof"

    def capture_balanced_braces(self):
        """Consume ``{ ... }`` and return the inner tokens (braces dropped)."""
        self.expect_punct("{")
        depth = 1
        captured = []
        while True:
            token = self.peek()
            if token.kind == "eof":
                raise LisaSyntaxError("unterminated '{' block", token.location)
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                depth -= 1
                if depth == 0:
                    self.next()
                    return captured
            captured.append(self.next())

    def capture_balanced_parens(self):
        """Consume ``( ... )`` and return the inner tokens (parens dropped)."""
        self.expect_punct("(")
        depth = 1
        captured = []
        while True:
            token = self.peek()
            if token.kind == "eof":
                raise LisaSyntaxError("unterminated '(' block", token.location)
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    self.next()
                    return captured
            captured.append(self.next())


class Parser:
    """Parses one LISA source text into a :class:`repro.lisa.ast.ModelAst`."""

    def __init__(self, source, filename="<string>"):
        self._stream = _TokenStream(tokenize(source, filename))
        self._filename = filename

    def parse_model(self):
        s = self._stream
        start = s.peek().location
        name = "model"
        if s.at_ident("MODEL"):
            s.next()
            name = s.expect_ident().text
            s.expect_punct(";")
        resources = []
        config = []
        operations = []
        while not s.at_eof():
            token = s.peek()
            if token.is_ident("RESOURCE"):
                resources.extend(self._parse_resource_section())
            elif token.is_ident("CONFIG"):
                config.extend(self._parse_config_section())
            elif token.is_ident("OPERATION"):
                operations.append(self._parse_operation())
            else:
                raise LisaSyntaxError(
                    "expected RESOURCE, CONFIG or OPERATION, found %s" % token,
                    token.location,
                )
        return ast.ModelAst(
            name=name,
            resources=resources,
            config=config,
            operations=operations,
            location=start,
        )

    # -- RESOURCE ---------------------------------------------------------

    def _parse_resource_section(self):
        s = self._stream
        s.expect_ident("RESOURCE")
        s.expect_punct("{")
        items = []
        while not s.at_punct("}"):
            items.append(self._parse_resource_item())
        s.expect_punct("}")
        return items

    def _parse_resource_item(self):
        s = self._stream
        token = s.peek()
        if token.is_ident("PROGRAM_COUNTER"):
            s.next()
            type_name = s.expect_ident().text
            name = s.expect_ident().text
            s.expect_punct(";")
            return ast.ProgramCounterAst(type_name, name, token.location)
        if token.is_ident("REGISTER"):
            s.next()
            type_name = s.expect_ident().text
            name = s.expect_ident().text
            count = None
            if s.accept_punct("["):
                count = s.expect_int().value
                s.expect_punct("]")
            s.expect_punct(";")
            return ast.RegisterAst(type_name, name, count, token.location)
        if token.is_ident("MEMORY"):
            s.next()
            type_name = s.expect_ident().text
            name = s.expect_ident().text
            s.expect_punct("[")
            size = s.expect_int().value
            s.expect_punct("]")
            s.expect_punct(";")
            return ast.MemoryAst(type_name, name, size, token.location)
        if token.is_ident("PIPELINE"):
            s.next()
            name = s.expect_ident().text
            s.expect_punct("=")
            s.expect_punct("{")
            stages = [s.expect_ident().text]
            while s.accept_punct(";"):
                if s.at_punct("}"):
                    break
                stages.append(s.expect_ident().text)
            s.expect_punct("}")
            s.expect_punct(";")
            return ast.PipelineAst(name, stages, token.location)
        raise LisaSyntaxError(
            "expected a resource declaration, found %s" % token, token.location
        )

    # -- CONFIG -----------------------------------------------------------

    def _parse_config_section(self):
        s = self._stream
        s.expect_ident("CONFIG")
        s.expect_punct("{")
        items = []
        while not s.at_punct("}"):
            key_token = s.expect_ident()
            s.expect_punct("(")
            args = []
            if not s.at_punct(")"):
                args.append(self._parse_config_arg())
                while s.accept_punct(","):
                    args.append(self._parse_config_arg())
            s.expect_punct(")")
            s.expect_punct(";")
            items.append(
                ast.ConfigItem(key_token.text, args, key_token.location)
            )
        s.expect_punct("}")
        return items

    def _parse_config_arg(self):
        s = self._stream
        token = s.peek()
        if token.kind == "int":
            s.next()
            return token.value
        if token.kind == "ident":
            s.next()
            return token.text
        if token.kind == "string":
            s.next()
            return token.value
        raise LisaSyntaxError(
            "expected CONFIG argument, found %s" % token, token.location
        )

    # -- OPERATION --------------------------------------------------------

    def _parse_operation(self):
        s = self._stream
        start = s.expect_ident("OPERATION")
        name = s.expect_ident().text
        pipeline = None
        stage = None
        if s.accept_ident("IN"):
            pipeline = s.expect_ident().text
            s.expect_punct(".")
            stage = s.expect_ident().text
        s.expect_punct("{")
        items = self._parse_op_items()
        s.expect_punct("}")
        return ast.OperationAst(
            name=name,
            pipeline=pipeline,
            stage=stage,
            items=items,
            location=start.location,
        )

    def _parse_op_items(self):
        """Parse section items until the enclosing '}' (not consumed)."""
        s = self._stream
        items = []
        while not s.at_punct("}"):
            token = s.peek()
            if token.is_ident("IF"):
                items.append(self._parse_if_sections())
            elif token.is_ident("SWITCH"):
                items.append(self._parse_switch_sections())
            elif token.kind == "ident" and token.text in _SECTION_KEYWORDS:
                items.append(self._parse_section())
            else:
                raise LisaSyntaxError(
                    "expected a section keyword, IF or SWITCH, found %s"
                    % token,
                    token.location,
                )
        return items

    def _parse_if_sections(self):
        s = self._stream
        start = s.expect_ident("IF")
        condition = s.capture_balanced_parens()
        if not condition:
            raise LisaSyntaxError("empty IF condition", start.location)
        s.expect_punct("{")
        then_items = self._parse_op_items()
        s.expect_punct("}")
        else_items = []
        if s.accept_ident("ELSE"):
            if s.at_ident("IF"):
                else_items = [self._parse_if_sections()]
            else:
                s.expect_punct("{")
                else_items = self._parse_op_items()
                s.expect_punct("}")
        return ast.IfSectionsAst(
            condition_tokens=condition,
            then_items=then_items,
            else_items=else_items,
            location=start.location,
        )

    def _parse_switch_sections(self):
        s = self._stream
        start = s.expect_ident("SWITCH")
        selector = s.capture_balanced_parens()
        if not selector:
            raise LisaSyntaxError("empty SWITCH selector", start.location)
        s.expect_punct("{")
        cases = []
        while not s.at_punct("}"):
            token = s.peek()
            if token.is_ident("CASE"):
                s.next()
                value_tokens = []
                while not s.at_punct(":"):
                    if s.at_eof():
                        raise LisaSyntaxError(
                            "unterminated CASE label", token.location
                        )
                    value_tokens.append(s.next())
                s.expect_punct(":")
                if not value_tokens:
                    raise LisaSyntaxError("empty CASE label", token.location)
                s.expect_punct("{")
                items = self._parse_op_items()
                s.expect_punct("}")
                cases.append(
                    ast.SwitchCaseAst(value_tokens, items, token.location)
                )
            elif token.is_ident("DEFAULT"):
                s.next()
                s.expect_punct(":")
                s.expect_punct("{")
                items = self._parse_op_items()
                s.expect_punct("}")
                cases.append(ast.SwitchCaseAst(None, items, token.location))
            else:
                raise LisaSyntaxError(
                    "expected CASE or DEFAULT, found %s" % token,
                    token.location,
                )
        s.expect_punct("}")
        if not cases:
            raise LisaSyntaxError("SWITCH without cases", start.location)
        return ast.SwitchSectionsAst(
            selector_tokens=selector, cases=cases, location=start.location
        )

    def _parse_section(self):
        s = self._stream
        keyword = s.expect_ident()
        if keyword.text == "DECLARE":
            return self._parse_declare_section(keyword)
        if keyword.text == "CODING":
            return self._parse_coding_section(keyword)
        if keyword.text == "SYNTAX":
            return self._parse_syntax_section(keyword)
        if keyword.text == "BEHAVIOR":
            tokens = s.capture_balanced_braces()
            return ast.BehaviorSectionAst(tokens, keyword.location)
        if keyword.text == "EXPRESSION":
            tokens = s.capture_balanced_braces()
            return ast.ExpressionSectionAst(tokens, keyword.location)
        if keyword.text == "ACTIVATION":
            return self._parse_activation_section(keyword)
        raise LisaSyntaxError(
            "unknown section %r" % keyword.text, keyword.location
        )

    def _parse_declare_section(self, keyword):
        s = self._stream
        s.expect_punct("{")
        items = []
        while not s.at_punct("}"):
            token = s.peek()
            if token.is_ident("GROUP"):
                s.next()
                name = s.expect_ident().text
                s.expect_punct("=")
                s.expect_punct("{")
                alternatives = [s.expect_ident().text]
                while s.accept_punct("||"):
                    alternatives.append(s.expect_ident().text)
                s.expect_punct("}")
                s.expect_punct(";")
                items.append(
                    ast.GroupDeclAst(name, alternatives, token.location)
                )
            elif token.is_ident("INSTANCE"):
                s.next()
                name = s.expect_ident().text
                s.expect_punct("=")
                s.expect_punct("{")
                operation = s.expect_ident().text
                s.expect_punct("}")
                s.expect_punct(";")
                items.append(
                    ast.InstanceDeclAst(name, operation, token.location)
                )
            elif token.is_ident("LABEL"):
                s.next()
                names = [s.expect_ident().text]
                while s.accept_punct(","):
                    names.append(s.expect_ident().text)
                s.expect_punct(";")
                items.append(ast.LabelDeclAst(names, token.location))
            elif token.is_ident("REFERENCE"):
                s.next()
                names = [s.expect_ident().text]
                while s.accept_punct(","):
                    names.append(s.expect_ident().text)
                s.expect_punct(";")
                items.append(ast.ReferenceDeclAst(names, token.location))
            else:
                raise LisaSyntaxError(
                    "expected GROUP, INSTANCE, LABEL or REFERENCE, found %s"
                    % token,
                    token.location,
                )
        s.expect_punct("}")
        return ast.DeclareSectionAst(items, keyword.location)

    def _parse_coding_section(self, keyword):
        s = self._stream
        s.expect_punct("{")
        elements = []
        while not s.at_punct("}"):
            token = s.peek()
            if token.kind == "bits":
                s.next()
                elements.append(
                    ast.CodingPatternAst(token.value, token.location)
                )
            elif token.kind == "int":
                if not token.text.lower().startswith("0b"):
                    raise LisaSyntaxError(
                        "coding literals must be binary (0b...), found %r"
                        % token.text,
                        token.location,
                    )
                s.next()
                width = len(token.text) - 2
                pattern = BitPattern.exact(token.value, width)
                elements.append(ast.CodingPatternAst(pattern, token.location))
            elif token.kind == "ident":
                s.next()
                width = None
                if s.accept_punct("["):
                    width = s.expect_int().value
                    s.expect_punct("]")
                elements.append(
                    ast.CodingRefAst(token.text, width, token.location)
                )
            else:
                raise LisaSyntaxError(
                    "expected coding element, found %s" % token,
                    token.location,
                )
        s.expect_punct("}")
        if not elements:
            raise LisaSyntaxError("empty CODING section", keyword.location)
        return ast.CodingSectionAst(elements, keyword.location)

    def _parse_syntax_section(self, keyword):
        s = self._stream
        s.expect_punct("{")
        elements = []
        while not s.at_punct("}"):
            token = s.peek()
            if token.kind == "string":
                s.next()
                elements.append(
                    ast.SyntaxLiteralAst(token.value, token.location)
                )
            elif token.kind == "ident":
                s.next()
                elements.append(ast.SyntaxRefAst(token.text, token.location))
            elif token.is_punct(","):
                # Commas between syntax elements are decorative separators;
                # a literal comma in the mnemonic is written as ",".
                s.next()
            else:
                raise LisaSyntaxError(
                    "expected syntax element, found %s" % token,
                    token.location,
                )
        s.expect_punct("}")
        if not elements:
            raise LisaSyntaxError("empty SYNTAX section", keyword.location)
        return ast.SyntaxSectionAst(elements, keyword.location)

    def _parse_activation_section(self, keyword):
        s = self._stream
        s.expect_punct("{")
        names = []
        if not s.at_punct("}"):
            names.append(s.expect_ident().text)
            while s.accept_punct(",") or s.accept_punct(";"):
                if s.at_punct("}"):
                    break
                names.append(s.expect_ident().text)
        s.expect_punct("}")
        return ast.ActivationSectionAst(names, keyword.location)


def parse_source(source, filename="<string>"):
    """Parse a LISA source text into a :class:`ModelAst`."""
    return Parser(source, filename).parse_model()
