"""Semantic analysis: LISA AST -> machine-model data base.

This module is the paper's *LISA compiler*: it checks the description and
produces the data base (:class:`repro.lisa.model.MachineModel`) that the
simulation-compiler generator and the tool generators consume.
"""

from __future__ import annotations

from repro.behavior import ast as bast
from repro.behavior.parser import parse_expression, parse_statements
from repro.behavior.runtime import INTRINSIC_NAMES
from repro.lisa import ast
from repro.lisa import model as m
from repro.lisa.parser import parse_source
from repro.support.diagnostics import DiagnosticSink
from repro.support.errors import BehaviorError, CodingError, LisaSemanticError

# Cap for the cartesian expansion of nested group alternatives during the
# coding-overlap check; beyond this we fall back to don't-care patterns.
_MAX_DISCRIMINATORS = 512

_CONFIG_KEYS = frozenset(
    [
        "WORDSIZE",
        "PROGRAM_MEMORY",
        "FETCH_PACKET",
        "PARALLEL_BIT",
        "ROOT",
        "EXECUTE_STAGE",
        "BRANCH_POLICY",
        "DEFINE",
    ]
)


def compile_source(source, filename="<string>", sink=None):
    """Parse and semantically check a LISA source text."""
    return compile_ast(parse_source(source, filename), filename, sink)


def compile_ast(model_ast, filename="<string>", sink=None):
    """Semantically check a parsed LISA AST and build the model."""
    return _Analyzer(model_ast, filename, sink or DiagnosticSink()).run()


class _Analyzer:
    def __init__(self, model_ast, filename, sink):
        self._ast = model_ast
        self._filename = filename
        self._sink = sink
        self._registers = {}
        self._memories = {}
        self._pipeline = None
        self._pc_name = None
        self._config = m.ModelConfig()
        self._operations = {}
        self._width_cache = {}
        self._width_in_progress = set()

    def run(self):
        self._analyze_resources()
        self._analyze_config()
        self._build_operations()
        model = m.MachineModel(
            name=self._ast.name,
            pc_name=self._pc_name,
            registers=self._registers,
            memories=self._memories,
            pipeline=self._pipeline,
            config=self._config,
            operations=self._operations,
            source_filename=self._filename,
        )
        self._resolve_coding_widths(model)
        self._check_model(model)
        model.diagnostics = self._sink
        return model

    # -- resources and config -------------------------------------------

    def _analyze_resources(self):
        for item in self._ast.resources:
            if isinstance(item, ast.ProgramCounterAst):
                if self._pc_name is not None:
                    raise LisaSemanticError(
                        "duplicate PROGRAM_COUNTER declaration", item.location
                    )
                dtype = m.lookup_type(item.type_name, item.location)
                self._pc_name = item.name
                self._declare_register(
                    m.RegisterDef(item.name, dtype, None), item.location
                )
            elif isinstance(item, ast.RegisterAst):
                dtype = m.lookup_type(item.type_name, item.location)
                if item.count is not None and item.count <= 0:
                    raise LisaSemanticError(
                        "register file %r must have positive size" % item.name,
                        item.location,
                    )
                self._declare_register(
                    m.RegisterDef(item.name, dtype, item.count), item.location
                )
            elif isinstance(item, ast.MemoryAst):
                dtype = m.lookup_type(item.type_name, item.location)
                if item.size <= 0:
                    raise LisaSemanticError(
                        "memory %r must have positive size" % item.name,
                        item.location,
                    )
                if item.name in self._memories or item.name in self._registers:
                    raise LisaSemanticError(
                        "duplicate resource %r" % item.name, item.location
                    )
                self._memories[item.name] = m.MemoryDef(
                    item.name, dtype, item.size
                )
            elif isinstance(item, ast.PipelineAst):
                if self._pipeline is not None:
                    raise LisaSemanticError(
                        "this dialect supports one PIPELINE per model",
                        item.location,
                    )
                if len(set(item.stages)) != len(item.stages):
                    raise LisaSemanticError(
                        "pipeline %r has duplicate stage names" % item.name,
                        item.location,
                    )
                self._pipeline = m.PipelineDef(item.name, tuple(item.stages))
            else:
                raise LisaSemanticError(
                    "unhandled resource item %r" % (item,), None
                )
        if self._pc_name is None:
            raise LisaSemanticError("model declares no PROGRAM_COUNTER")
        if self._pipeline is None:
            raise LisaSemanticError("model declares no PIPELINE")
        if not self._memories:
            raise LisaSemanticError("model declares no MEMORY")

    def _declare_register(self, reg, location):
        if reg.name in self._registers or reg.name in self._memories:
            raise LisaSemanticError(
                "duplicate resource %r" % reg.name, location
            )
        self._registers[reg.name] = reg

    def _analyze_config(self):
        cfg = self._config
        for item in self._ast.config:
            if item.key not in _CONFIG_KEYS:
                raise LisaSemanticError(
                    "unknown CONFIG key %r" % item.key, item.location
                )
            if item.key == "DEFINE":
                if len(item.args) != 2 or not isinstance(item.args[0], str) \
                        or not isinstance(item.args[1], int):
                    raise LisaSemanticError(
                        "DEFINE expects (name, integer)", item.location
                    )
                cfg.defines[item.args[0]] = item.args[1]
                continue
            if len(item.args) != 1:
                raise LisaSemanticError(
                    "CONFIG %s expects exactly one argument" % item.key,
                    item.location,
                )
            arg = item.args[0]
            if item.key == "WORDSIZE":
                self._expect_int(item, arg)
                if arg <= 0 or arg > 64:
                    raise LisaSemanticError(
                        "WORDSIZE must be in 1..64", item.location
                    )
                cfg.word_size = arg
            elif item.key == "PROGRAM_MEMORY":
                self._expect_str(item, arg)
                cfg.program_memory = arg
            elif item.key == "FETCH_PACKET":
                self._expect_int(item, arg)
                if arg <= 0:
                    raise LisaSemanticError(
                        "FETCH_PACKET must be positive", item.location
                    )
                cfg.fetch_packet_words = arg
            elif item.key == "PARALLEL_BIT":
                self._expect_int(item, arg)
                cfg.parallel_bit = arg
            elif item.key == "ROOT":
                self._expect_str(item, arg)
                cfg.root_operation = arg
            elif item.key == "EXECUTE_STAGE":
                self._expect_str(item, arg)
                cfg.execute_stage = arg
            elif item.key == "BRANCH_POLICY":
                self._expect_str(item, arg)
                if arg not in ("flush", "delay"):
                    raise LisaSemanticError(
                        "BRANCH_POLICY must be 'flush' or 'delay'",
                        item.location,
                    )
                cfg.branch_policy = arg
        self._finish_config()

    def _expect_int(self, item, arg):
        if not isinstance(arg, int):
            raise LisaSemanticError(
                "CONFIG %s expects an integer" % item.key, item.location
            )

    def _expect_str(self, item, arg):
        if not isinstance(arg, str):
            raise LisaSemanticError(
                "CONFIG %s expects a name" % item.key, item.location
            )

    def _finish_config(self):
        cfg = self._config
        if cfg.program_memory is None:
            if len(self._memories) == 1:
                cfg.program_memory = next(iter(self._memories))
            else:
                raise LisaSemanticError(
                    "PROGRAM_MEMORY must be configured when the model has "
                    "several memories"
                )
        if cfg.program_memory not in self._memories:
            raise LisaSemanticError(
                "PROGRAM_MEMORY %r is not a declared memory"
                % cfg.program_memory
            )
        pmem = self._memories[cfg.program_memory]
        if pmem.dtype.width < cfg.word_size:
            raise LisaSemanticError(
                "program memory %r elements (%d bits) are narrower than the "
                "instruction word (%d bits)"
                % (pmem.name, pmem.dtype.width, cfg.word_size)
            )
        if cfg.execute_stage is not None:
            self._pipeline.stage_index(cfg.execute_stage)  # validates
        if cfg.fetch_packet_words > 1 and cfg.parallel_bit is None:
            raise LisaSemanticError(
                "FETCH_PACKET > 1 requires PARALLEL_BIT"
            )
        if cfg.parallel_bit is not None and not (
            0 <= cfg.parallel_bit < cfg.word_size
        ):
            raise LisaSemanticError("PARALLEL_BIT outside the word")

    # -- operations -------------------------------------------------------

    def _build_operations(self):
        for op_ast in self._ast.operations:
            if op_ast.name in self._operations:
                raise LisaSemanticError(
                    "duplicate OPERATION %r" % op_ast.name, op_ast.location
                )
            self._operations[op_ast.name] = self._build_operation(op_ast)

    def _build_operation(self, op_ast):
        stage = None
        if op_ast.stage is not None:
            if op_ast.pipeline != self._pipeline.name:
                raise LisaSemanticError(
                    "operation %r names unknown pipeline %r"
                    % (op_ast.name, op_ast.pipeline),
                    op_ast.location,
                )
            self._pipeline.stage_index(op_ast.stage)  # validates
            stage = op_ast.stage

        op = m.Operation(name=op_ast.name, stage=stage)
        items = self._convert_items(op_ast.items, op, top_level=True)
        op.items = tuple(items)
        return op

    def _convert_items(self, ast_items, op, top_level):
        items = []
        for item in ast_items:
            if isinstance(item, ast.DeclareSectionAst):
                if not top_level:
                    raise LisaSemanticError(
                        "DECLARE must not be conditional (operation %r)"
                        % op.name,
                        item.location,
                    )
                self._absorb_declare(item, op)
            elif isinstance(item, ast.CodingSectionAst):
                if not top_level:
                    raise LisaSemanticError(
                        "CODING must not be conditional (operation %r); "
                        "express coding alternatives with GROUPs" % op.name,
                        item.location,
                    )
                if op.coding is not None:
                    raise LisaSemanticError(
                        "operation %r has several CODING sections" % op.name,
                        item.location,
                    )
                op.coding = self._convert_coding(item, op)
            elif isinstance(item, ast.SyntaxSectionAst):
                items.append(self._convert_syntax(item))
            elif isinstance(item, ast.BehaviorSectionAst):
                items.append(self._convert_behavior(item, op))
            elif isinstance(item, ast.ExpressionSectionAst):
                items.append(self._convert_expression(item, op))
            elif isinstance(item, ast.ActivationSectionAst):
                items.append(m.Activation(tuple(item.names)))
            elif isinstance(item, ast.IfSectionsAst):
                condition = self._parse_guard(item.condition_tokens, op)
                then_items = self._convert_items(
                    item.then_items, op, top_level=False
                )
                else_items = self._convert_items(
                    item.else_items, op, top_level=False
                )
                items.append(
                    m.IfSections(
                        condition, tuple(then_items), tuple(else_items)
                    )
                )
            elif isinstance(item, ast.SwitchSectionsAst):
                selector = self._parse_guard(item.selector_tokens, op)
                cases = []
                seen_default = False
                for case in item.cases:
                    if case.value_tokens is None:
                        if seen_default:
                            raise LisaSemanticError(
                                "several DEFAULT cases in operation %r"
                                % op.name,
                                case.location,
                            )
                        seen_default = True
                        value = None
                    else:
                        value = self._parse_guard(case.value_tokens, op)
                    case_items = self._convert_items(
                        case.items, op, top_level=False
                    )
                    cases.append((value, tuple(case_items)))
                items.append(m.SwitchSections(selector, tuple(cases)))
            else:
                raise LisaSemanticError(
                    "unhandled section in operation %r: %r" % (op.name, item),
                    None,
                )
        return items

    def _absorb_declare(self, section, op):
        for decl in section.items:
            if isinstance(decl, ast.GroupDeclAst):
                self._declare_operand(op, decl.name, decl.location)
                op.groups[decl.name] = tuple(decl.alternatives)
            elif isinstance(decl, ast.InstanceDeclAst):
                self._declare_operand(op, decl.name, decl.location)
                op.instances[decl.name] = decl.operation
            elif isinstance(decl, ast.LabelDeclAst):
                for name in decl.names:
                    self._declare_operand(op, name, decl.location)
                    op.labels = op.labels + (name,)
            elif isinstance(decl, ast.ReferenceDeclAst):
                for name in decl.names:
                    self._declare_operand(op, name, decl.location)
                    op.references = op.references + (name,)

    def _declare_operand(self, op, name, location):
        if name in op.declared_operands() or name in op.references:
            raise LisaSemanticError(
                "operation %r declares %r twice" % (op.name, name), location
            )
        if name in self._registers or name in self._memories:
            self._sink.warn(
                "operand %r of operation %r shadows a resource"
                % (name, op.name),
                location,
            )

    def _convert_coding(self, section, op):
        elements = []
        for element in section.elements:
            if isinstance(element, ast.CodingPatternAst):
                elements.append(m.CodingPattern(element.pattern))
            else:
                name = element.name
                if name in op.labels:
                    if element.width is None:
                        raise LisaSemanticError(
                            "label %r in coding of %r needs a width "
                            "(write %s[n])" % (name, op.name, name),
                            element.location,
                        )
                    elements.append(m.CodingLabel(name, element.width))
                elif name in op.groups or name in op.instances:
                    # Width resolved later from the alternatives' codings;
                    # an explicit width is checked against it.
                    elements.append(
                        m.CodingGroup(name, element.width or 0)
                    )
                else:
                    raise LisaSemanticError(
                        "coding of %r references undeclared %r"
                        % (op.name, name),
                        element.location,
                    )
        return tuple(elements)

    def _convert_syntax(self, section):
        elements = []
        for element in section.elements:
            if isinstance(element, ast.SyntaxLiteralAst):
                elements.append(m.SyntaxLiteral(element.text))
            else:
                elements.append(m.SyntaxRef(element.name))
        return m.Syntax(tuple(elements))

    def _convert_behavior(self, section, op):
        try:
            statements = parse_statements(section.tokens)
        except BehaviorError as exc:
            raise BehaviorError(
                "in BEHAVIOR of operation %r: %s" % (op.name, exc.message),
                exc.location or section.location,
            ) from exc
        return m.Behavior(statements)

    def _convert_expression(self, section, op):
        try:
            expression = parse_expression(section.tokens)
        except BehaviorError as exc:
            raise BehaviorError(
                "in EXPRESSION of operation %r: %s" % (op.name, exc.message),
                exc.location or section.location,
            ) from exc
        return m.Expression(expression)

    def _parse_guard(self, tokens, op):
        try:
            return parse_expression(tokens)
        except BehaviorError as exc:
            raise BehaviorError(
                "in condition of operation %r: %s" % (op.name, exc.message),
                exc.location,
            ) from exc

    # -- coding width resolution ------------------------------------------

    def _resolve_coding_widths(self, model):
        for op in self._operations.values():
            if op.has_coding:
                op.coding_width = self._coding_width(op.name)
                # Fill in group element widths now that they are known.
                elements = []
                for element in op.coding:
                    if isinstance(element, m.CodingGroup):
                        width = self._group_width(op, element.name)
                        if element.width and element.width != width:
                            raise CodingError(
                                "coding of %r declares %r as %d bits but its "
                                "alternatives are %d bits wide"
                                % (op.name, element.name, element.width, width)
                            )
                        elements.append(m.CodingGroup(element.name, width))
                    else:
                        elements.append(element)
                op.coding = tuple(elements)

    def _coding_width(self, op_name):
        if op_name in self._width_cache:
            return self._width_cache[op_name]
        if op_name in self._width_in_progress:
            raise CodingError(
                "recursive coding involving operation %r" % op_name
            )
        op = self._operations.get(op_name)
        if op is None:
            raise LisaSemanticError("unknown operation %r" % op_name)
        if not op.has_coding:
            raise CodingError(
                "operation %r is used in a coding but has no CODING section"
                % op_name
            )
        self._width_in_progress.add(op_name)
        try:
            width = 0
            for element in op.coding:
                if isinstance(element, m.CodingPattern):
                    width += element.width
                elif isinstance(element, m.CodingLabel):
                    width += element.width
                else:
                    width += self._group_width(op, element.name)
        finally:
            self._width_in_progress.discard(op_name)
        self._width_cache[op_name] = width
        return width

    def _group_width(self, op, slot_name):
        alternatives = op.child_slots().get(slot_name)
        if not alternatives:
            raise LisaSemanticError(
                "operation %r has no group/instance %r" % (op.name, slot_name)
            )
        widths = {}
        for alt_name in alternatives:
            widths[alt_name] = self._coding_width(alt_name)
        if len(set(widths.values())) != 1:
            raise CodingError(
                "alternatives of %r in operation %r have unequal coding "
                "widths: %s"
                % (
                    slot_name,
                    op.name,
                    ", ".join(
                        "%s=%d" % (n, w) for n, w in sorted(widths.items())
                    ),
                )
            )
        return next(iter(widths.values()))

    # -- whole-model checks -------------------------------------------------

    def _check_model(self, model):
        cfg = model.config
        if cfg.root_operation not in self._operations:
            raise LisaSemanticError(
                "root operation %r is not defined" % cfg.root_operation
            )
        root = self._operations[cfg.root_operation]
        if not root.has_coding:
            raise LisaSemanticError(
                "root operation %r has no CODING section" % root.name
            )
        if root.coding_width != cfg.word_size:
            raise CodingError(
                "root operation %r codes %d bits but WORDSIZE is %d"
                % (root.name, root.coding_width, cfg.word_size)
            )
        for op in self._operations.values():
            self._check_operation(model, op)
        self._check_references(model)
        self._check_coding_ambiguity(model)
        self._warn_unused(model)

    def _check_operation(self, model, op):
        for name, alternatives in op.child_slots().items():
            for alt in alternatives:
                if alt not in self._operations:
                    raise LisaSemanticError(
                        "operation %r: %r lists unknown operation %r"
                        % (op.name, name, alt)
                    )
        op_stage = model.stage_of(op)
        for variant_items in op.all_section_variants():
            for item in variant_items:
                if isinstance(item, m.Activation):
                    self._check_activation(model, op, op_stage, item)
        self._check_names(model, op)

    def _check_activation(self, model, op, op_stage, activation):
        for name in activation.names:
            slots = op.child_slots()
            if name in slots:
                targets = slots[name]
            elif name in op.references:
                # Activating a REFERENCEd operand fires whatever the
                # ancestor decoded there; the target set is unknown
                # statically, so only the stage check below is skipped.
                continue
            elif name in self._operations:
                targets = (name,)
            else:
                raise LisaSemanticError(
                    "ACTIVATION of %r names unknown %r" % (op.name, name)
                )
            # Stage ordering is only enforced between explicitly staged
            # operations; a stage-less dispatcher (e.g. the root
            # instruction operation) may activate into any stage.
            if op.stage is None:
                continue
            for target_name in targets:
                target = self._operations[target_name]
                if target.stage is not None:
                    if model.stage_of(target) < op_stage:
                        raise LisaSemanticError(
                            "operation %r (stage %s) activates %r into the "
                            "earlier stage %s"
                            % (op.name, op.stage, target_name, target.stage)
                        )

    def _iter_behavior_nodes(self, op):
        for variant_items in op.all_section_variants():
            for item in variant_items:
                if isinstance(item, m.Behavior):
                    yield from item.statements
                elif isinstance(item, m.Expression):
                    yield item.expression

    def _check_names(self, model, op):
        allowed = set(op.declared_operands())
        allowed.update(op.references)
        allowed.update(model.resource_names())
        allowed.update(INTRINSIC_NAMES)
        allowed.update(model.config.defines)
        allowed.update(self._operations)
        nodes = list(self._iter_behavior_nodes(op))
        locals_declared = set()
        for root in nodes:
            for node in bast.walk(root):
                if isinstance(node, bast.LocalDecl):
                    locals_declared.add(node.name)
        allowed.update(locals_declared)
        for name in bast.referenced_names(nodes):
            if name not in allowed:
                raise LisaSemanticError(
                    "behaviour of operation %r references unknown name %r"
                    % (op.name, name)
                )

    def _parent_edges(self):
        """Map child operation -> set of operations that can instantiate it."""
        parents = {name: set() for name in self._operations}
        for op in self._operations.values():
            for alternatives in op.child_slots().values():
                for alt in alternatives:
                    if alt in parents:
                        parents[alt].add(op.name)
            for variant_items in op.all_section_variants():
                for item in variant_items:
                    if isinstance(item, m.Activation):
                        for name in item.names:
                            if name in self._operations and \
                                    name not in op.child_slots():
                                parents[name].add(op.name)
        return parents

    def _check_references(self, model):
        parents = self._parent_edges()
        for op in self._operations.values():
            for ref in op.references:
                if not self._reference_satisfiable(op, ref, parents):
                    raise LisaSemanticError(
                        "REFERENCE %r of operation %r is not declared by any "
                        "operation that can instantiate it" % (ref, op.name)
                    )

    def _reference_satisfiable(self, op, ref, parents):
        visited = set()
        frontier = [op.name]
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            for parent_name in parents[current]:
                parent = self._operations[parent_name]
                if ref in parent.labels or ref in parent.groups \
                        or ref in parent.instances:
                    return True
                frontier.append(parent_name)
        return False

    # -- coding ambiguity ---------------------------------------------------

    def _discriminators(self, op_name, cache):
        """Flattened bit patterns of an operation's coding.

        Nested groups expand into the cartesian product of their
        alternatives (capped); labels become don't-cares.
        """
        if op_name in cache:
            return cache[op_name]
        from repro.support.bitutils import BitPattern

        op = self._operations[op_name]
        # The accumulator starts as a single empty pattern (None stands in
        # for "zero-width", which BitPattern cannot represent).
        accum = [None]

        def concat(base, pattern):
            if base is None:
                return pattern
            return base.concat(pattern)

        for element in op.coding:
            if isinstance(element, m.CodingPattern):
                accum = [concat(a, element.pattern) for a in accum]
            elif isinstance(element, m.CodingLabel):
                accum = [
                    concat(a, BitPattern.any(element.width)) for a in accum
                ]
            else:
                alternatives = op.child_slots()[element.name]
                expanded = []
                for alt in alternatives:
                    for sub in self._discriminators(alt, cache):
                        for a in accum:
                            expanded.append(concat(a, sub))
                            if len(expanded) > _MAX_DISCRIMINATORS:
                                break
                if len(expanded) > _MAX_DISCRIMINATORS:
                    # Fall back to fully unconstrained bits for this slot.
                    width = self._group_width(op, element.name)
                    expanded = [
                        concat(a, BitPattern.any(width)) for a in accum
                    ]
                accum = expanded
        cache[op_name] = accum
        return accum

    def _check_coding_ambiguity(self, model):
        cache = {}
        for op in self._operations.values():
            for slot_name, alternatives in op.child_slots().items():
                if len(alternatives) < 2:
                    continue
                if not all(
                    self._operations[a].has_coding for a in alternatives
                ):
                    continue
                for i, name_a in enumerate(alternatives):
                    for name_b in alternatives[i + 1 :]:
                        self._check_pair(
                            op, slot_name, name_a, name_b, cache
                        )

    def _check_pair(self, op, slot_name, name_a, name_b, cache):
        for pat_a in self._discriminators(name_a, cache):
            for pat_b in self._discriminators(name_b, cache):
                if pat_a.width == pat_b.width and pat_a.overlaps(pat_b):
                    raise CodingError(
                        "ambiguous coding: alternatives %r and %r of %r in "
                        "operation %r overlap (%s vs %s)"
                        % (name_a, name_b, slot_name, op.name, pat_a, pat_b)
                    )

    def _warn_unused(self, model):
        used = {model.config.root_operation}
        for op in self._operations.values():
            for alternatives in op.child_slots().values():
                used.update(alternatives)
            for variant_items in op.all_section_variants():
                for item in variant_items:
                    if isinstance(item, m.Activation):
                        used.update(
                            n for n in item.names if n in self._operations
                        )
        for name in self._operations:
            if name not in used:
                self._sink.warn(
                    "operation %r is never referenced" % name
                )
