"""Cycle-accurate processor substrate shared by all simulators.

The pipeline driver, processor state and micro-operation scheduling are
deliberately *shared* between the interpretive and the compiled
simulators: the simulators differ only in when decoding, operation
sequencing and behaviour specialisation happen, which is exactly the
variable the paper's experiments isolate.
"""

from repro.machine.state import ProcessorState
from repro.machine.control import PipelineControl
from repro.machine.schedule import ScheduledBehavior, build_schedule
from repro.machine.driver import IssueSlot, Pipeline

__all__ = [
    "ProcessorState",
    "PipelineControl",
    "ScheduledBehavior",
    "build_schedule",
    "IssueSlot",
    "Pipeline",
]
