"""Pipeline control interface exposed to behaviour code.

Behaviours receive a :class:`PipelineControl` as their ``c`` argument and
call the control intrinsics ``flush()``, ``stall(n)`` and ``halt()``
through it.  The driver inspects and clears the request flags once per
executed stage.
"""

from __future__ import annotations

from repro.support.errors import SimulationError


class PipelineControl:
    """Collects control requests raised during one pipeline stage.

    ``observer`` (a :class:`repro.obs.Observer`, or None) receives one
    trace event per raised control request; it survives :meth:`reset`
    so a reloaded program keeps its instrumentation.
    """

    __slots__ = (
        "current_stage", "flush_below", "stall_cycles", "halted", "observer",
    )

    def __init__(self):
        self.current_stage = 0
        self.flush_below = -1  # highest stage index requesting a flush
        self.stall_cycles = 0
        self.halted = False
        self.observer = None

    def reset(self):
        self.current_stage = 0
        self.flush_below = -1
        self.stall_cycles = 0
        self.halted = False

    # -- intrinsics --------------------------------------------------------

    def request_flush(self):
        """Squash all in-flight instructions younger than the caller.

        "Younger" means occupying an earlier pipeline stage in the same
        cycle.  This is the pipeline operation (e.g. after a taken
        branch) that the paper notes simple instruction sequencers, such
        as nML's, cannot express.
        """
        if self.observer is not None:
            self.observer.on_flush(self.current_stage)
        if self.current_stage > self.flush_below:
            self.flush_below = self.current_stage

    def request_stall(self, cycles):
        """Freeze instruction fetch for ``cycles`` cycles (bubbles issue)."""
        if not isinstance(cycles, int) or cycles < 0:
            raise SimulationError("stall() needs a non-negative cycle count")
        if self.observer is not None:
            self.observer.on_stall(self.current_stage, cycles)
        self.stall_cycles += cycles

    def request_halt(self):
        """Stop fetching; the pipeline drains and simulation ends.

        Instructions younger than the halting one are squashed, so code
        placed after a ``halt`` instruction never executes.
        """
        if self.observer is not None:
            self.observer.on_halt(self.current_stage)
        self.halted = True
        self.request_flush()
