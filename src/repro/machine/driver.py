"""The generic pipeline driver.

One driver serves every simulator level; only the *front-end* differs:

* interpretive: the front-end fetches, decodes, schedules and binds
  behaviours on every call (all work at run-time),
* compiled levels: the front-end is a table lookup into pre-computed
  issue slots (work moved to simulation-compile time).

Cycle semantics (one :meth:`Pipeline.step`):

1. *advance*: the oldest issue slot retires, everything shifts one stage
   deeper, and (unless stalled or halted) the front-end provides a new
   slot for stage 0 from the current PC; the PC advances past the
   fetched words.
2. *execute*: occupied stages run their micro-operations, **oldest
   (deepest) stage first**.  Same-cycle writes from older instructions
   are therefore visible to younger instructions in earlier stages,
   which yields sequential semantics for interlock-free pipelines and
   exposed-latency semantics (delay slots) when results are written in
   late stages.
3. *control*: a ``flush()`` raised at stage *k* squashes the slots in
   stages younger than *k* in the same cycle, before they execute;
   ``halt()`` additionally stops fetching, and :meth:`Pipeline.run`
   returns once the pipeline has drained.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional, Tuple

from repro.support.errors import SimulationError, SimulationTimeout


@dataclass(frozen=True)
class IssueSlot:
    """Everything one fetch issues into the pipeline in one cycle.

    For scalar models this is one instruction; for VLIW models one
    *execute packet* (several instructions issued together).

    ``ops_by_stage``
        Per pipeline stage, the tuple of argument-less callables to run
        when the slot occupies that stage.
    ``words``
        Program-memory words consumed (PC advance).
    ``insn_count``
        Instructions contained (statistics).
    ``label``
        Optional human-readable description (tracing/debug).
    """

    ops_by_stage: Tuple[Tuple[object, ...], ...]
    words: int
    insn_count: int
    label: Optional[str] = None


def trap_slot(model, message):
    """An issue slot that raises when (and only when) it executes.

    Front-ends return trap slots for fetches that cannot be decoded or
    fall outside the known program.  The pipeline keeps fetching past
    taken branches and ``halt`` until they execute, so such fetches are
    normal -- they are squashed before their execute stage and the trap
    never fires.  If one *does* reach its execute stage, the program
    really ran into undefined memory and the trap reports it.
    """
    if model.config.execute_stage is not None:
        stage = model.pipeline.stage_index(model.config.execute_stage)
    else:
        stage = model.pipeline.depth - 1

    def trap():
        raise SimulationError(message)

    ops = tuple(
        (trap,) if index == stage else ()
        for index in range(model.pipeline.depth)
    )
    return IssueSlot(ops_by_stage=ops, words=1, insn_count=1, label="<trap>")


class Pipeline:
    """Drives issue slots through the model's pipeline stages.

    Observability: ``step`` is an instance attribute selected by
    :meth:`set_observer` -- the unhooked :meth:`_step_plain` when no
    observer is attached (bytecode-identical to the pre-instrumentation
    hot loop, so the disabled path costs nothing) or
    :meth:`_step_traced`, which additionally emits fetch/bubble/squash
    trace events and updates the metrics registry.
    """

    __slots__ = (
        "_model", "_state", "_control", "_frontend", "_pc_name",
        "_depth", "_watcher", "_read_pc", "_write_pc", "slots", "pcs",
        "cycles", "instructions_retired", "_observer", "step",
    )

    def __init__(self, model, state, control, frontend, watcher=None,
                 observer=None):
        self._model = model
        self._state = state
        self._control = control
        self._frontend = frontend
        self._pc_name = model.pc_name
        self._depth = model.pipeline.depth
        self._watcher = watcher
        # Bound accessors so the hot loop skips the per-cycle attribute
        # name lookup (the PC register is fixed for the model's lifetime).
        self._read_pc = partial(getattr, state, self._pc_name)
        self._write_pc = partial(setattr, state, self._pc_name)
        self.slots = [None] * self._depth
        # Issue addresses parallel to ``slots`` (None for bubbles):
        # checkpointing captures this window and restore re-fetches it,
        # so in-flight work survives a snapshot on any simulator kind.
        self.pcs = [None] * self._depth
        self.cycles = 0
        self.instructions_retired = 0
        self._observer = None
        self.step = self._step_plain
        if observer is not None:
            self.set_observer(observer)

    def set_observer(self, observer):
        """Attach (or detach, with None) a :class:`repro.obs.Observer`."""
        self._observer = observer
        self.step = (
            self._step_plain if observer is None else self._step_traced
        )

    @property
    def state(self):
        return self._state

    @property
    def control(self):
        return self._control

    @property
    def drained(self):
        return all(slot is None for slot in self.slots)

    def reset(self):
        self.slots = [None] * self._depth
        self.pcs = [None] * self._depth
        self.cycles = 0
        self.instructions_retired = 0
        self._control.reset()

    @property
    def window_pcs(self):
        """Issue addresses of the in-flight window, stage 0 first."""
        return tuple(self.pcs)

    def wrap_frontend(self, wrapper):
        """Replace the front-end with ``wrapper(current_frontend)``.

        Used by the resilience layer to interpose the program-memory
        write guard between the pipeline and the simulation table.
        """
        self._frontend = wrapper(self._frontend)

    def restore_window(self, pcs, cycles, instructions_retired):
        """Rebuild the in-flight window from checkpointed issue pcs.

        The front-end is a pure function of (pc, program memory), so
        re-fetching against restored memory reproduces the checkpointed
        slots exactly -- on *any* simulator kind, which is what makes
        checkpoints portable across kinds.
        """
        pcs = list(pcs)
        if len(pcs) != self._depth:
            raise SimulationError(
                "checkpoint window depth %d does not match pipeline "
                "depth %d" % (len(pcs), self._depth)
            )
        self.slots = [
            None if pc is None else self._frontend(pc) for pc in pcs
        ]
        self.pcs = pcs
        self.cycles = cycles
        self.instructions_retired = instructions_retired

    def _step_plain(self):
        """Simulate one cycle (unhooked path; keep in sync with
        :meth:`_step_traced`)."""
        control = self._control
        slots = self.slots
        pcs = self.pcs

        # -- advance ------------------------------------------------------
        retiring = slots.pop()
        pcs.pop()
        if retiring is not None:
            self.instructions_retired += retiring.insn_count
        if control.halted:
            incoming = None
            issue_pc = None
        elif control.stall_cycles > 0:
            control.stall_cycles -= 1
            incoming = None
            issue_pc = None
        else:
            pc = self._read_pc()
            incoming = self._frontend(pc)
            issue_pc = pc if incoming is not None else None
            if incoming is not None:
                self._write_pc(pc + incoming.words)
        slots.insert(0, incoming)
        pcs.insert(0, issue_pc)

        # -- execute (oldest first) + same-cycle flush ---------------------
        for stage in range(self._depth - 1, -1, -1):
            slot = slots[stage]
            if slot is None:
                continue
            if stage < control.flush_below:
                slots[stage] = None
                pcs[stage] = None
                continue
            ops = slot.ops_by_stage[stage]
            if ops:
                control.current_stage = stage
                for fn in ops:
                    fn()
        control.flush_below = -1

        self.cycles += 1
        if self._watcher is not None:
            self._watcher(self)

    def _step_traced(self):
        """One cycle with trace hooks (same semantics as
        :meth:`_step_plain`, plus event emission)."""
        control = self._control
        slots = self.slots
        pcs = self.pcs
        observer = self._observer

        # -- advance ------------------------------------------------------
        retiring = slots.pop()
        pcs.pop()
        if retiring is not None:
            self.instructions_retired += retiring.insn_count
        if control.halted:
            incoming = None
            issue_pc = None
            observer.on_bubble(self.cycles, "drain")
        elif control.stall_cycles > 0:
            control.stall_cycles -= 1
            incoming = None
            issue_pc = None
            observer.on_bubble(self.cycles, "stall")
        else:
            pc = self._read_pc()
            incoming = self._frontend(pc)
            issue_pc = pc if incoming is not None else None
            if incoming is not None:
                self._write_pc(pc + incoming.words)
                observer.on_issue(self.cycles, pc, incoming)
            else:
                observer.on_bubble(self.cycles, "frontend")
        slots.insert(0, incoming)
        pcs.insert(0, issue_pc)

        # -- execute (oldest first) + same-cycle flush ---------------------
        squashed = 0
        for stage in range(self._depth - 1, -1, -1):
            slot = slots[stage]
            if slot is None:
                continue
            if stage < control.flush_below:
                slots[stage] = None
                pcs[stage] = None
                squashed += 1
                continue
            ops = slot.ops_by_stage[stage]
            if ops:
                control.current_stage = stage
                for fn in ops:
                    fn()
        control.flush_below = -1
        if squashed:
            observer.on_squash(self.cycles, squashed)

        self.cycles += 1
        if self._watcher is not None:
            self._watcher(self)

    def run(self, max_cycles=50_000_000):
        """Run until the pipeline halts and drains; returns cycles run."""
        start = self.cycles
        while not (self._control.halted and self.drained):
            if self.cycles - start >= max_cycles:
                raise SimulationTimeout(
                    "simulation exceeded %d cycles without halting"
                    % max_cycles,
                    budget="cycles", limit=max_cycles, cycles=self.cycles,
                )
            self.step()
        return self.cycles - start

    def run_chunk(self, cycles):
        """Step for up to ``cycles`` cycles or until halted-and-drained.

        The budgeted-run building block: never raises on exhausting the
        chunk, just returns how many cycles actually ran, so callers can
        interleave wall-clock checks and checkpoints at cycle
        boundaries.
        """
        start = self.cycles
        end = start + cycles
        control = self._control
        while self.cycles < end and not (control.halted and self.drained):
            self.step()
        return self.cycles - start
