"""Execute-packet extraction for VLIW models.

On TMS320C6x-style machines each 32-bit word carries a *parallel bit*;
a set bit chains the following word into the same execute packet, up to
the fetch-packet size.  Scalar models trivially issue one word.

Both the interpretive simulator (at run-time) and the simulation
compiler (at compile-time) use this single implementation, so packet
boundaries can never disagree between simulation levels.
"""

from __future__ import annotations


def packet_extent(model, read_word, pc, limit):
    """Number of words in the execute packet starting at ``pc``.

    ``read_word(address)`` returns the instruction word at ``address``;
    ``limit`` is the first address past the readable region.
    """
    config = model.config
    if config.fetch_packet_words <= 1:
        return 1
    pbit = 1 << config.parallel_bit
    count = 1
    while (
        count < config.fetch_packet_words
        and pc + count < limit
        and read_word(pc + count - 1) & pbit
    ):
        count += 1
    return count
