"""Operation scheduling: decoded instruction -> per-stage micro-operations.

This implements the paper's *operation sequencing* model requirement
(its Section 4.2): from the pipeline assignment of operations (``IN
pipe.STAGE``) and the ACTIVATION chains, derive the intra-instruction
precedence of operations -- which behaviour runs in which pipeline stage
(the paper's Figure 2).

The schedule is *decode-dependent*: IF/SWITCH guards may select
different behaviours or activations per instruction encoding, so the
schedule is computed from a :class:`repro.coding.DecodedNode`.  The
simulation compiler calls this once per program location
(compile-time); the interpretive simulator calls it on every fetch
(run-time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.coding.decoder import DecodedNode
from repro.support.errors import LisaSemanticError


@dataclass(frozen=True)
class ScheduledBehavior:
    """One behaviour of one operation instance, placed in a stage."""

    stage: int
    node: DecodedNode  # operation instance providing the operand context
    behavior: object  # repro.lisa.model.Behavior


def build_schedule(node, model):
    """Compute the per-stage behaviour list for a decoded instruction.

    Returns a tuple of :class:`ScheduledBehavior`, ordered by activation
    precedence within each stage (parents before activated children).
    ``flush``/``halt`` requests and PC writes happen when the scheduled
    stage executes, which is how delay slots and pipeline flushes emerge.
    """
    items = []
    _visit(node, model, _root_stage(node, model), items, guard=set())
    items.sort(key=lambda item: item.stage)
    return tuple(items)


def _root_stage(node, model):
    operation = node.operation
    if operation.stage is not None:
        return model.stage_of(operation)
    return model.stage_of(operation)  # default execute stage


def _visit(node, model, inherited_stage, items, guard):
    operation = node.operation
    if operation.name in guard:
        raise LisaSemanticError(
            "activation cycle through operation %r" % operation.name
        )
    guard = guard | {operation.name}
    if operation.stage is not None:
        stage = model.stage_of(operation)
    else:
        stage = inherited_stage
    variant = node.variant(model)
    for behavior in variant.behaviors:
        items.append(ScheduledBehavior(stage, node, behavior))
    for name in variant.activations:
        for child in _activation_targets(node, model, name):
            _visit(child, model, stage, items, guard)


def _activation_targets(node, model, name):
    """Resolve one ACTIVATION name to decoded child nodes.

    A name can be a GROUP/INSTANCE slot of this operation (yielding the
    decoded sub-operation) or a global helper operation without coding
    (yielding a fresh node parented here so its REFERENCEs resolve
    through this instruction's operands).
    """
    if name in node.children:
        yield node.children[name]
        return
    if name in node.operation.references:
        kind, value = node.lookup(name)
        if kind != "child":
            raise LisaSemanticError(
                "ACTIVATION of %r: reference %r is not an operation"
                % (node.operation.name, name)
            )
        yield value
        return
    operation = model.operations.get(name)
    if operation is None:
        raise LisaSemanticError(
            "ACTIVATION of %r names unknown operation %r"
            % (node.operation.name, name)
        )
    yield DecodedNode(operation=operation, parent=node, slot_name=None)
