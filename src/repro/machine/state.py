"""Architectural state: registers, memories, program counter.

Resources are exposed as plain instance attributes named exactly as in
the LISA description (``state.R`` is a list, ``state.PC`` an int), so
generated behaviour code accesses them without any indirection.  Values
are kept in *canonical* form: signed types as signed Python ints, so
reads need no conversion -- writers canonicalise.
"""

from __future__ import annotations

from repro.support.errors import SimulationError


class ProcessorState:
    """Mutable architectural state for one machine model."""

    def __init__(self, model):
        self._model = model
        self._register_defs = model.registers
        self._memory_defs = model.memories
        self._pc_name = model.pc_name
        # Observability hook for the *checked* accessors below.  The
        # generated/interpreted behaviour code writes resources directly
        # (that is the whole point of the representation), so these
        # events cover the tool surface: debuggers, co-simulation
        # peripherals, tests and programmatic pokes.
        self._obs = None
        self.reset()

    @property
    def model(self):
        return self._model

    def reset(self):
        """Zero all registers and memories."""
        for reg in self._register_defs.values():
            if reg.is_file:
                setattr(self, reg.name, [0] * reg.count)
            else:
                setattr(self, reg.name, 0)
        for mem in self._memory_defs.values():
            setattr(self, mem.name, [0] * mem.size)

    # -- checked accessors (tools/tests; generated code goes direct) -------

    @property
    def pc(self):
        return getattr(self, self._pc_name)

    @pc.setter
    def pc(self, value):
        dtype = self._register_defs[self._pc_name].dtype
        setattr(self, self._pc_name, dtype.canonical(value))

    def read_register(self, name, index=None):
        reg = self._register_defs.get(name)
        if reg is None:
            raise SimulationError("unknown register %r" % name)
        storage = getattr(self, name)
        if reg.is_file:
            if index is None:
                raise SimulationError(
                    "register file %r needs an index" % name
                )
            self._check_index(name, index, reg.count)
            return storage[index]
        if index is not None:
            raise SimulationError("register %r is scalar" % name)
        return storage

    def write_register(self, name, *args):
        if len(args) == 1:
            index, value = None, args[0]
        elif len(args) == 2:
            index, value = args
        else:
            raise SimulationError("write_register takes (name, [index,] value)")
        reg = self._register_defs.get(name)
        if reg is None:
            raise SimulationError("unknown register %r" % name)
        value = reg.dtype.canonical(value)
        if reg.is_file:
            if index is None:
                raise SimulationError("register file %r needs an index" % name)
            self._check_index(name, index, reg.count)
            getattr(self, name)[index] = value
        else:
            if index is not None:
                raise SimulationError("register %r is scalar" % name)
            setattr(self, name, value)
        if self._obs is not None:
            self._obs.on_reg_write(name, index, value)

    def read_memory(self, name, address):
        mem = self._memory_defs.get(name)
        if mem is None:
            raise SimulationError("unknown memory %r" % name)
        self._check_index(name, address, mem.size)
        return getattr(self, name)[address]

    def write_memory(self, name, address, value):
        mem = self._memory_defs.get(name)
        if mem is None:
            raise SimulationError("unknown memory %r" % name)
        self._check_index(name, address, mem.size)
        value = mem.dtype.canonical(value)
        getattr(self, name)[address] = value
        if self._obs is not None:
            self._obs.on_mem_write(name, address, value)

    def load_words(self, memory_name, base, words):
        """Bulk-load ``words`` into ``memory_name`` starting at ``base``."""
        mem = self._memory_defs.get(memory_name)
        if mem is None:
            raise SimulationError("unknown memory %r" % memory_name)
        if base < 0 or base + len(words) > mem.size:
            raise SimulationError(
                "load of %d words at %d overflows memory %r (size %d)"
                % (len(words), base, memory_name, mem.size)
            )
        storage = getattr(self, memory_name)
        canonical = mem.dtype.canonical
        for offset, word in enumerate(words):
            storage[base + offset] = canonical(word)

    def _check_index(self, name, index, limit):
        if not isinstance(index, int) or index < 0 or index >= limit:
            raise SimulationError(
                "index %r out of range for %r (size %d)" % (index, name, limit)
            )

    # -- comparison / snapshotting (accuracy cross-checks) -----------------

    def snapshot(self):
        """A deep copy of all architectural state, keyed by resource name."""
        snap = {}
        for reg in self._register_defs.values():
            value = getattr(self, reg.name)
            snap[reg.name] = list(value) if reg.is_file else value
        for mem in self._memory_defs.values():
            snap[mem.name] = list(getattr(self, mem.name))
        return snap

    def restore_snapshot(self, snap):
        """Restore all architectural state from a :meth:`snapshot` dict.

        Register files and memories are written *in place* (slice
        assignment), so any wrapper installed over a storage list --
        e.g. the resilience layer's guarded program memory -- and any
        outstanding references stay valid across a restore.
        """
        for reg in self._register_defs.values():
            if reg.name not in snap:
                raise SimulationError(
                    "snapshot is missing register %r" % reg.name
                )
            value = snap[reg.name]
            if reg.is_file:
                storage = getattr(self, reg.name)
                if len(value) != len(storage):
                    raise SimulationError(
                        "snapshot register file %r has %d entries, "
                        "expected %d" % (reg.name, len(value), len(storage))
                    )
                storage[:] = value
            else:
                setattr(self, reg.name, value)
        for mem in self._memory_defs.values():
            if mem.name not in snap:
                raise SimulationError(
                    "snapshot is missing memory %r" % mem.name
                )
            value = snap[mem.name]
            storage = getattr(self, mem.name)
            if len(value) != len(storage):
                raise SimulationError(
                    "snapshot memory %r has %d cells, expected %d"
                    % (mem.name, len(value), len(storage))
                )
            storage[:] = value

    def differences(self, other):
        """Resource names whose contents differ between two states.

        This is the paper's "same accuracy level" check: two simulators
        are equivalent iff this list is empty after any program.
        """
        diffs = []
        mine = self.snapshot()
        theirs = other.snapshot()
        for name in mine:
            if mine[name] != theirs.get(name):
                diffs.append(name)
        return diffs
