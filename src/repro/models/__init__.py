"""Shipped processor models, written in the LISA dialect.

===========  ===================================================================
``tinydsp``  16-bit, 4-stage (IF/ID/EX/WB) flushing pipeline; the paper's
             non-orthogonal mode-bit example (Section 5.1)
``c54x``     TMS320C54x-flavoured 16-bit accumulator DSP, 6-stage pipeline
             (the paper's hand-written-simulator comparison point)
``c62x``     TMS320C6201-flavoured 32-bit VLIW DSP: 11-stage pipeline,
             8-word fetch packets with a parallel bit, exposed delay
             slots (the paper's evaluation target)
===========  ===================================================================

Models load lazily and are cached; each load re-runs the full LISA
compiler, so :func:`load_model` timing is the paper's "model translation
time" measurement (E3).
"""

from __future__ import annotations

import os

from repro.lisa.semantics import compile_source
from repro.support.errors import ReproError

_MODEL_DIR = os.path.dirname(os.path.abspath(__file__))

MODEL_REGISTRY = {
    "tinydsp": "tinydsp.lisa",
    "c54x": "c54x.lisa",
    "c62x": "c62x.lisa",
}

_cache = {}


def model_source_path(name):
    """Filesystem path of a shipped model's LISA source."""
    try:
        filename = MODEL_REGISTRY[name]
    except KeyError:
        raise ReproError(
            "unknown model %r (available: %s)"
            % (name, ", ".join(sorted(MODEL_REGISTRY)))
        ) from None
    return os.path.join(_MODEL_DIR, filename)


def model_source(name):
    """LISA source text of a shipped model."""
    with open(model_source_path(name), "r", encoding="utf-8") as handle:
        return handle.read()


def load_model(name, use_cache=True):
    """Compile (or fetch from cache) a shipped model by name."""
    if use_cache and name in _cache:
        return _cache[name]
    model = compile_source(model_source(name), model_source_path(name))
    if use_cache:
        _cache[name] = model
    return model
