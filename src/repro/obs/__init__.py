"""Unified observability: trace events, phase spans, metrics.

One instrumentation subsystem wired through every simulator kind and
the simulation compiler:

* **Trace events** (:mod:`repro.obs.events`) -- structured records
  emitted from hook points in the pipeline drivers (fetch, bubble,
  squash), pipeline control (stall/flush/halt), the static scheduler
  (static-to-dynamic fallback), the program analyzer (hazard verdicts),
  the state accessors (checked register/memory writes) and the
  simulation-table cache, with pluggable sinks
  (:mod:`repro.obs.sinks`).
* **Phase-timing spans** (:mod:`repro.obs.spans`) -- nested wall-clock
  timing around the simulation-compilation steps (decoding,
  sequencing, instantiation), cache lookup/store and program load; the
  paper's Figure 6 measurement as a built-in.
* **A metrics registry** (:mod:`repro.obs.metrics`) -- counters,
  gauges and histograms (per-address/per-opcode dispatch counts,
  static-vs-dynamic composition ratio, cache hit rate, CPI, bubble
  cycles) snapshotted at run end.
* **Exporters** (:mod:`repro.obs.export`) -- JSON-lines, Chrome
  trace-event format (loadable in Perfetto / ``chrome://tracing``) and
  a text summary.

The disabled path is near-free by construction: hook sites hold an
observer reference that is ``None`` when observability is off and
check it once, and the pipeline drivers swap in an entirely unhooked
step function (``benchmarks/bench_trace_overhead.py`` proves the
bound).

Usage::

    from repro import obs

    observer = obs.Observer()
    simulator = create_simulator(model, "static", observer=observer)
    simulator.load_program(program)    # compile-phase spans recorded
    simulator.run()                    # cycle events + metrics recorded
    obs.write_trace(observer, "trace.json")   # open in Perfetto
    observer.snapshot()                       # metrics dict

or process-wide, without threading the observer through call sites::

    obs.install(obs.Observer())
    ...  # simulators created from here on pick it up
    obs.uninstall()
"""

from __future__ import annotations

from repro.obs.events import (
    BUBBLE,
    CACHE,
    CHECKPOINT,
    COUNTERS_MODE,
    DEFAULT_EVENT_CAPACITY,
    EVENT_KINDS,
    FALLBACK,
    FAULT,
    FETCH,
    FLUSH,
    GUARD_ELIDE,
    GUARD_REARM,
    GUARD_RESOLVE,
    HALT,
    HAZARD,
    MEM_WRITE,
    NATIVE,
    NATIVE_FALLBACK,
    OBSERVER_MODES,
    PROFILE_MODE,
    REG_WRITE,
    RESTORE,
    RUN_END,
    SELF_MODIFY,
    SQUASH,
    STALL,
    TIER_DEMOTE,
    TIER_PROMOTE,
    TIMEOUT,
    TRACE_MODE,
    Observer,
    TraceEvent,
)
from repro.obs.export import (
    TRACE_FORMATS,
    text_summary,
    to_chrome_trace,
    to_jsonl_lines,
    to_openmetrics,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import hot_region_report
from repro.obs.sinks import (
    NULL_SINK,
    CallbackSink,
    FlightRecorder,
    JsonLinesSink,
    ListSink,
    NullSink,
    Sink,
)
from repro.obs.spans import Span

# -- process-wide default observer -------------------------------------------

_GLOBAL = None


def install(observer):
    """Install a process-wide default observer.

    Simulators constructed without an explicit ``observer`` argument
    pick this up; already-constructed simulators are unaffected (use
    ``Simulator.attach_observer``).
    """
    global _GLOBAL
    _GLOBAL = observer
    return observer


def uninstall():
    """Remove the process-wide default observer (returns it)."""
    global _GLOBAL
    observer, _GLOBAL = _GLOBAL, None
    return observer


def get_observer():
    """The process-wide default observer, or None."""
    return _GLOBAL


class _NullSpan:
    """The disabled-path span: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


def span(observer, name, **args):
    """``observer.span(name, ...)`` when enabled, a no-op otherwise.

    The one-liner hook sites use around compilation phases::

        with obs.span(observer, "simcc.decode", words=n):
            ...
    """
    if observer is None:
        return NULL_SPAN
    return observer.span(name, **args)


def opcode_labeler(model, program):
    """A ``pc -> mnemonic`` labeler for ``Observer(labeler=...)``.

    Built from the generated disassembler; consulted only at
    ``finish_run`` to fold per-address dispatch counts into per-opcode
    counts, so the disassembly cost never lands on the hot path.
    Addresses outside the program (or undecodable words) label as None.
    """
    from repro.tools.disasm import Disassembler

    disassembler = Disassembler(model)
    words = {}
    for segment in program.segments_in(model.config.program_memory):
        for offset, word in enumerate(segment.words):
            words[segment.base + offset] = word

    def labeler(pc):
        word = words.get(pc)
        if word is None:
            return None
        try:
            text = disassembler.disassemble_word(word, address=pc)
        except Exception:
            return None
        return text.split(None, 1)[0] if text else None

    return labeler


__all__ = [
    "BUBBLE", "CACHE", "CHECKPOINT", "COUNTERS_MODE",
    "DEFAULT_EVENT_CAPACITY", "EVENT_KINDS", "FALLBACK", "FAULT",
    "FETCH", "FLUSH", "GUARD_ELIDE", "GUARD_REARM", "GUARD_RESOLVE",
    "HALT", "HAZARD", "MEM_WRITE", "NATIVE", "NATIVE_FALLBACK",
    "NULL_SINK", "NULL_SPAN", "OBSERVER_MODES", "PROFILE_MODE",
    "REG_WRITE",
    "RESTORE", "RUN_END", "SELF_MODIFY", "SQUASH", "STALL",
    "TIER_DEMOTE", "TIER_PROMOTE", "TIMEOUT",
    "TRACE_FORMATS", "TRACE_MODE",
    "CallbackSink", "FlightRecorder", "JsonLinesSink", "ListSink",
    "MetricsRegistry",
    "NullSink", "Observer", "Sink", "Span", "TraceEvent",
    "get_observer", "hot_region_report", "install", "opcode_labeler",
    "span", "text_summary",
    "to_chrome_trace", "to_jsonl_lines", "to_openmetrics", "uninstall",
    "write_metrics", "write_trace",
]
