"""Structured trace events and the observer that collects them.

The :class:`Observer` is the one object the rest of the system talks
to.  Hook sites throughout the simulators, the simulation compiler and
the cache hold a reference that is ``None`` when observability is off;
the entire disabled cost is that one ``is not None`` check (the
pipeline drivers go further and swap in an unhooked step function, so
their steady-state loop carries no check at all).

An observer owns

* a list of recorded :class:`TraceEvent` objects (optional -- metrics-
  only observers pass ``record=False``),
* any number of pluggable sinks (:mod:`repro.obs.sinks`) that see every
  event and span as it happens,
* a :class:`repro.obs.metrics.MetricsRegistry` updated inline by the
  hook helpers,
* a span stack for nested phase timing (:mod:`repro.obs.spans`).

Event timestamps are seconds on a monotonic clock, zeroed at observer
creation; ``clock`` is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from collections import deque

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTimer

# -- event kinds -------------------------------------------------------------

FETCH = "fetch"              # an issue slot entered the pipeline
BUBBLE = "bubble"            # a cycle issued nothing (stall/drain)
SQUASH = "squash"            # in-flight slots squashed by a flush
STALL = "stall"              # behaviour requested stall(n)
FLUSH = "flush"              # behaviour requested flush()
HALT = "halt"                # behaviour requested halt()
FALLBACK = "sched.fallback"  # static window fell back to dynamic path
HAZARD = "hazard.verdict"    # per-packet hazard verdict from analysis
REG_WRITE = "reg.write"      # checked register write
MEM_WRITE = "mem.write"      # checked memory write
CACHE = "cache"              # simulation-table cache lookup/store
RUN_END = "run.end"          # simulator run finished
SELF_MODIFY = "resilience.self_modify"  # store into compiled program memory
GUARD_RESOLVE = "resilience.resolve"    # stale packet recompiled/interpreted
CHECKPOINT = "resilience.checkpoint"    # checkpoint taken
RESTORE = "resilience.restore"          # checkpoint restored
TIMEOUT = "resilience.timeout"          # cycle/wall budget expired
FAULT = "resilience.fault"              # injected fault (test harness)
NATIVE = "native"                       # native artifact outcome (hit/compile)
NATIVE_FALLBACK = "native.fallback"     # native backend unavailable, degraded
GUARD_ELIDE = "resilience.guard_elide"  # proof elided fetch instrumentation
GUARD_REARM = "resilience.guard_rearm"  # elided guard re-armed by a store
TIER_PROMOTE = "tiering.promote"        # hot window moved to a higher tier
TIER_DEMOTE = "tiering.demote"          # window left a tier (SMC, failure)

EVENT_KINDS = (
    FETCH, BUBBLE, SQUASH, STALL, FLUSH, HALT,
    FALLBACK, HAZARD, REG_WRITE, MEM_WRITE, CACHE, RUN_END,
    SELF_MODIFY, GUARD_RESOLVE, CHECKPOINT, RESTORE, TIMEOUT, FAULT,
    NATIVE, NATIVE_FALLBACK, GUARD_ELIDE, GUARD_REARM,
    TIER_PROMOTE, TIER_DEMOTE,
)

# -- observer modes ----------------------------------------------------------

#: Per-cycle trace events plus full metrics (the historical behaviour).
#: The native backend cannot emit per-cycle events from inside a burst,
#: so trace-mode runs take the per-cycle Python path.
TRACE_MODE = "trace"
#: Metrics plus per-packet cycle attribution (``sim.cycles_by_pc``), no
#: per-cycle event objects -- native bursts stay enabled, flushing their
#: telemetry side-buffer into the registry at burst boundaries.
PROFILE_MODE = "profile"
#: Metrics only (no cycle attribution, no per-cycle events); the
#: cheapest always-on configuration, also burst-compatible.
COUNTERS_MODE = "counters"

OBSERVER_MODES = (TRACE_MODE, PROFILE_MODE, COUNTERS_MODE)

#: Default bound on the recorded-event ring (satellite: long traced runs
#: must not grow memory without limit).  Pass ``event_capacity=None``
#: for the old unbounded list.
DEFAULT_EVENT_CAPACITY = 1 << 18


class TraceEvent:
    """One structured trace record: timestamp, kind, open payload."""

    __slots__ = ("ts", "kind", "args")

    def __init__(self, ts, kind, args):
        self.ts = ts
        self.kind = kind
        self.args = args

    def __repr__(self):
        return "TraceEvent(%.6f, %r, %r)" % (self.ts, self.kind, self.args)

    def to_dict(self):
        payload = {"type": "event", "ts": self.ts, "kind": self.kind}
        payload.update(self.args)
        return payload


def _window_text(pcs):
    return "/".join("-" if pc is None else "0x%x" % pc for pc in pcs)


class Observer:
    """Collects trace events, spans and metrics for one (or more) runs.

    ``labeler`` optionally maps a program address to a human-readable
    label (typically the disassembly of the packet issued there); it is
    consulted only at :meth:`finish_run` to fold per-address dispatch
    counts into per-opcode counts -- never on the hot path.

    ``mode`` selects how much the per-cycle hook helpers produce:

    * ``"trace"`` (default) -- per-cycle trace events plus metrics plus
      per-packet cycle attribution.  Native bursts are disabled (events
      cannot be emitted from C), so runs take the per-cycle path.
    * ``"profile"`` -- metrics plus cycle attribution, no per-cycle
      event objects.  Native bursts stay enabled; the engine flushes
      its telemetry side-buffer here at burst boundaries.
    * ``"counters"`` -- metrics only; also burst-compatible.

    ``event_capacity`` bounds the recorded-event buffer as a ring: once
    full, the oldest event is evicted and the ``obs.events_dropped``
    counter ticks.  ``None`` keeps the historical unbounded list.
    """

    def __init__(self, sinks=(), metrics=None, clock=None, labeler=None,
                 record=True, mode=TRACE_MODE,
                 event_capacity=DEFAULT_EVENT_CAPACITY):
        if mode not in OBSERVER_MODES:
            raise ValueError(
                "unknown observer mode %r (choose from %s)"
                % (mode, ", ".join(OBSERVER_MODES))
            )
        self._clock = clock if clock is not None else time.perf_counter
        self._epoch = self._clock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sinks = list(sinks)
        self.mode = mode
        self._cycle_events = mode == TRACE_MODE
        self._attr_cycles = mode != COUNTERS_MODE
        self._last_issue_pc = None
        self._event_capacity = event_capacity
        if not record:
            self.events = None
        elif event_capacity is None:
            self.events = []
        else:
            self.events = deque(maxlen=event_capacity)
        self.spans = []
        self.labeler = labeler
        self._span_stack = []

    @property
    def wants_cycle_events(self):
        """Whether this observer needs one event object per cycle.

        The native burst engine checks this to decide whether an
        attached observer forces the per-cycle Python path (trace mode)
        or can be served by the in-burst telemetry flush
        (profile/counters modes).
        """
        return self._cycle_events

    @property
    def last_issue_pc(self):
        """The address of the most recently issued packet (or None).

        Stall and drain bubbles are attributed to this packet; the
        burst engine seeds the telemetry side-buffer with it so the
        attribution rule is identical across the Python and C paths.
        """
        return self._last_issue_pc

    # -- clock ----------------------------------------------------------------

    def now(self):
        """Seconds since observer creation (monotonic)."""
        return self._clock() - self._epoch

    # -- raw emission ----------------------------------------------------------

    def emit(self, kind, **args):
        """Record one event and forward it to every sink."""
        event = TraceEvent(self.now(), kind, args)
        events = self.events
        if events is not None:
            if (self._event_capacity is not None
                    and len(events) == self._event_capacity):
                self.metrics.inc("obs.events_dropped")
            events.append(event)
        for sink in self.sinks:
            sink.event(event)
        return event

    def events_of(self, *kinds):
        """Recorded events filtered by kind, in emission order."""
        if self.events is None:
            return []
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    # -- spans -----------------------------------------------------------------

    def span(self, name, **args):
        """Context manager timing one named phase (spans nest)."""
        return SpanTimer(self, name, args)

    def _finish_span(self, span):
        self.spans.append(span)
        self.metrics.observe("span.%s" % span.name, span.duration)
        for sink in self.sinks:
            sink.span(span)

    def spans_of(self, name):
        return [span for span in self.spans if span.name == name]

    # -- pipeline hook helpers (hot path when enabled) ------------------------

    def on_issue(self, cycle, pc, slot):
        metrics = self.metrics
        metrics.inc("sim.issue_cycles")
        metrics.inc("sim.instructions_issued", slot.insn_count)
        metrics.bump("sim.fetch_by_pc", pc)
        metrics.bump("sim.packet_sizes", slot.insn_count)
        metrics.observe("sim.packet_insns", slot.insn_count)
        if self._attr_cycles:
            metrics.bump("sim.cycles_by_pc", pc)
        self._last_issue_pc = pc
        if self._cycle_events:
            self.emit(
                FETCH, cycle=cycle, pc=pc, words=slot.words,
                insns=slot.insn_count, label=slot.label,
            )

    def on_bubble(self, cycle, reason):
        metrics = self.metrics
        metrics.inc("sim.bubble_cycles")
        metrics.bump("sim.bubbles_by_reason", reason)
        # A bubble's cycle is billed to the packet that caused it: the
        # most recently issued one (stall latency, drain tail).
        if self._attr_cycles and self._last_issue_pc is not None:
            metrics.bump("sim.cycles_by_pc", self._last_issue_pc)
        if self._cycle_events:
            self.emit(BUBBLE, cycle=cycle, reason=reason)

    def on_squash(self, cycle, slots):
        self.metrics.inc("sim.squashed_slots", slots)
        if self._cycle_events:
            self.emit(SQUASH, cycle=cycle, slots=slots)

    def on_static_cycle(self):
        self.metrics.inc("sched.static_cycles")

    def on_dynamic_cycle(self):
        self.metrics.inc("sched.dynamic_cycles")

    # -- control hooks ---------------------------------------------------------

    def on_stall(self, stage, cycles):
        self.metrics.inc("control.stalls")
        if self._cycle_events:
            self.emit(STALL, stage=stage, cycles=cycles)

    def on_flush(self, stage):
        self.metrics.inc("control.flushes")
        if self._cycle_events:
            self.emit(FLUSH, stage=stage)

    def on_halt(self, stage):
        self.metrics.inc("control.halts")
        if self._cycle_events:
            self.emit(HALT, stage=stage)

    # -- state hooks -----------------------------------------------------------

    def on_reg_write(self, name, index, value):
        self.metrics.inc("state.reg_writes")
        self.emit(REG_WRITE, register=name, index=index, value=value)

    def on_mem_write(self, name, address, value):
        self.metrics.inc("state.mem_writes")
        self.emit(MEM_WRITE, memory=name, address=address, value=value)

    # -- scheduler / analysis hooks -------------------------------------------

    def on_fallback(self, pcs, pc, reason, verdict=None):
        """A pipeline window could not be statically composed."""
        self.metrics.inc("sched.fallback_windows")
        self.metrics.bump("sched.fallbacks_by_reason", reason)
        self.emit(
            FALLBACK, window=_window_text(pcs), pc=pc, reason=reason,
            verdict=verdict,
        )

    def on_hazard_verdict(self, pc, verdict):
        self.metrics.bump("analysis.verdicts", verdict)
        self.emit(HAZARD, pc=pc, verdict=verdict)

    # -- cache hooks -----------------------------------------------------------

    def on_cache(self, outcome, **args):
        self.metrics.bump("cache.outcomes", outcome)
        self.emit(CACHE, outcome=outcome, **args)

    # -- native backend hooks --------------------------------------------------

    def on_native(self, outcome, **args):
        """A native artifact outcome (``hit``/``compile``/``load``)."""
        self.metrics.bump("native.outcomes", outcome)
        self.emit(NATIVE, outcome=outcome, **args)

    def on_native_fallback(self, reason, **args):
        """The native backend degraded to the Python module path."""
        self.metrics.inc("native.fallbacks")
        self.emit(NATIVE_FALLBACK, reason=reason, **args)

    def on_burst_telemetry(self, pc_base, dispatch, cycles, insns,
                           drain_bubbles, stall_bubbles, squashed,
                           ctrl_stalls, ctrl_flushes, ctrl_halts,
                           stray_cycles, stray_pc, last_pc):
        """Fold one native burst's telemetry side-buffer into metrics.

        Called by :class:`repro.simcc.native.NativePipeline` after each
        burst in profile/counters mode.  ``dispatch[i]`` / ``cycles[i]``
        are per-packet counters for address ``pc_base + i``; ``insns``
        is the per-address instruction count the packet issues.  The
        update reproduces exactly what :meth:`on_issue` /
        :meth:`on_bubble` / :meth:`on_squash` and the control hooks
        would have accumulated cycle by cycle, so per-packet counters
        are bit-identical across the Python and native paths.
        """
        metrics = self.metrics
        issued = 0
        for index, count in enumerate(dispatch):
            if not count:
                continue
            pc = pc_base + index
            size = insns[index]
            issued += count
            metrics.inc("sim.instructions_issued", count * size)
            metrics.bump("sim.fetch_by_pc", pc, count)
            metrics.bump("sim.packet_sizes", size, count)
            metrics.observe_many("sim.packet_insns", size, count)
        if issued:
            metrics.inc("sim.issue_cycles", issued)
        bubbles = drain_bubbles + stall_bubbles
        if bubbles:
            metrics.inc("sim.bubble_cycles", bubbles)
        if drain_bubbles:
            metrics.bump("sim.bubbles_by_reason", "drain", drain_bubbles)
        if stall_bubbles:
            metrics.bump("sim.bubbles_by_reason", "stall", stall_bubbles)
        if squashed:
            metrics.inc("sim.squashed_slots", squashed)
        if ctrl_stalls:
            metrics.inc("control.stalls", ctrl_stalls)
        if ctrl_flushes:
            metrics.inc("control.flushes", ctrl_flushes)
        if ctrl_halts:
            metrics.inc("control.halts", ctrl_halts)
        if self._attr_cycles:
            for index, count in enumerate(cycles):
                if count:
                    metrics.bump("sim.cycles_by_pc", pc_base + index, count)
            # Bubble cycles attributed to a packet issued before the
            # burst (and outside the compiled range) accumulate in one
            # overflow bucket; the engine remembers which pc seeded it.
            if stray_cycles and stray_pc is not None:
                metrics.bump("sim.cycles_by_pc", stray_pc, stray_cycles)
        if last_pc is not None:
            self._last_issue_pc = last_pc

    # -- tiered execution hooks ------------------------------------------------

    def on_tier_promote(self, start, limit, tier, cycle, **args):
        """A hot window was promoted to a higher execution tier.

        ``tier`` is the tier entered (``"unfolded"`` / ``"native"``);
        ``cycle`` is the simulated cycle the promotion committed at (a
        burst/poll boundary).
        """
        metrics = self.metrics
        metrics.inc("tiering.promotions")
        metrics.bump("tiering.promotions_by_tier", tier)
        self.emit(TIER_PROMOTE, start=start, limit=limit, tier=tier,
                  cycle=cycle, **args)

    def on_tier_demote(self, start, limit, tier, cycle, cause, **args):
        """A window left its tier (self-modifying code, build failure).

        ``tier`` is the tier abandoned; ``cause`` explains why
        (``"self_modify"``, ``"compile_failed"``, ...).
        """
        metrics = self.metrics
        metrics.inc("tiering.demotions")
        metrics.bump("tiering.demotions_by_cause", cause)
        self.emit(TIER_DEMOTE, start=start, limit=limit, tier=tier,
                  cycle=cycle, cause=cause, **args)

    # -- flight recorder -------------------------------------------------------

    def enable_flight_recorder(self, capacity=256):
        """Attach (or resize) a bounded ring of recent events.

        Returns the :class:`repro.obs.sinks.FlightRecorder`; failed runs
        attach its :meth:`~repro.obs.sinks.FlightRecorder.snapshot` to
        the escaping exception (``exc.flight_recording``).
        """
        from repro.obs.sinks import FlightRecorder

        recorder = self.flight_recorder()
        if recorder is None:
            recorder = FlightRecorder(capacity)
            self.sinks.append(recorder)
        elif recorder.capacity != capacity:
            self.sinks.remove(recorder)
            recorder = FlightRecorder(capacity)
            self.sinks.append(recorder)
        return recorder

    def flight_recorder(self):
        """The attached flight recorder sink, or None."""
        from repro.obs.sinks import FlightRecorder

        for sink in self.sinks:
            if isinstance(sink, FlightRecorder):
                return sink
        return None

    # -- resilience hooks ------------------------------------------------------

    def on_self_modify(self, address, policy, invalidated):
        """A store landed in (compiled) program memory."""
        metrics = self.metrics
        metrics.inc("resilience.self_mod_writes")
        if invalidated:
            metrics.inc("resilience.invalidated_packets", invalidated)
        self.emit(
            SELF_MODIFY, address=address, policy=policy,
            invalidated=invalidated,
        )

    def on_guard_elide(self, **args):
        """A store-reachability proof elided fetch instrumentation."""
        self.metrics.inc("resilience.guard_elisions")
        self.emit(GUARD_ELIDE, **args)

    def on_guard_rearm(self, address):
        """A store into program memory re-armed an elided guard."""
        self.metrics.inc("resilience.guard_rearms")
        self.emit(GUARD_REARM, address=address)

    def on_guard_resolve(self, pc, action):
        """A stale packet was degraded per policy at fetch time."""
        metrics = self.metrics
        metrics.bump("resilience.fallbacks_by_action", action)
        if action == "recompile":
            metrics.inc("resilience.recompiled_packets")
        else:
            metrics.inc("resilience.interpreted_fetches")
        self.emit(GUARD_RESOLVE, pc=pc, action=action)

    def on_checkpoint(self, cycles, kind, auto=False):
        self.metrics.inc("resilience.checkpoints")
        self.emit(CHECKPOINT, cycles=cycles, sim=kind, auto=auto)

    def on_restore(self, cycles, kind):
        self.metrics.inc("resilience.restores")
        self.emit(RESTORE, cycles=cycles, sim=kind)

    def on_timeout(self, budget, cycles, limit):
        self.metrics.inc("resilience.timeouts")
        self.metrics.bump("resilience.timeouts_by_budget", budget)
        self.emit(TIMEOUT, budget=budget, cycles=cycles, limit=limit)

    def on_fault(self, fault, **details):
        self.metrics.inc("resilience.faults_injected")
        self.metrics.bump("resilience.faults_by_kind", fault)
        self.emit(FAULT, fault=fault, **details)

    # -- run finalisation ------------------------------------------------------

    def finish_run(self, simulator, stats):
        """Snapshot run-level gauges; called by ``Simulator.run``."""
        metrics = self.metrics
        metrics.set_gauge("run.cycles", stats.cycles)
        metrics.set_gauge("run.instructions", stats.instructions)
        metrics.set_gauge("run.cpi", stats.cpi)
        metrics.set_gauge("run.wall_seconds", stats.wall_seconds)
        metrics.set_gauge(
            "run.cycles_per_second", stats.simulated_cycles_per_second
        )
        metrics.set_gauge("run.kind", simulator.kind)
        static = metrics.counter("sched.static_cycles")
        dynamic = metrics.counter("sched.dynamic_cycles")
        if static or dynamic:
            metrics.set_gauge(
                "sched.static_cycle_ratio", static / (static + dynamic)
            )
        outcomes = metrics.family("cache.outcomes")
        hits = outcomes.get("memory_hit", 0) + outcomes.get("disk_hit", 0)
        lookups = hits + outcomes.get("miss", 0)
        if lookups:
            metrics.set_gauge("cache.hit_rate", hits / lookups)
        counts = getattr(
            getattr(simulator, "_engine", None), "dispatch_counts", None
        )
        if counts:
            for key, value in counts.items():
                metrics.set_gauge("native.%s" % key, value)
        if self.labeler is not None:
            self._fold_opcode_counts()
        self.emit(
            RUN_END, sim=simulator.kind, cycles=stats.cycles,
            instructions=stats.instructions,
        )

    def _fold_opcode_counts(self):
        """Fold per-address fetch counts into per-opcode dispatch counts."""
        labeler = self.labeler
        metrics = self.metrics
        for pc, count in metrics.family("sim.fetch_by_pc").items():
            label = labeler(pc)
            if not label:
                label = "<unknown>"
            metrics.bump("sim.dispatch_by_opcode", label, count)

    def snapshot(self):
        """The metrics snapshot (JSON-compatible)."""
        return self.metrics.snapshot()

    def close(self):
        for sink in self.sinks:
            sink.close()
