"""Trace exporters: JSON-lines, Chrome trace-event format, OpenMetrics
text exposition, text summary.

The Chrome trace-event output loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: phase spans render
as stacked slices on the "phases" track, per-cycle trace events as
instants on the "simulation" track, and the run-level metrics ride
along in ``otherData``.

The OpenMetrics output (:func:`to_openmetrics`) renders the metrics
snapshot in the Prometheus/OpenMetrics text exposition format, so a
scrape endpoint or a textfile collector can ingest simulator counters
directly.
"""

from __future__ import annotations

import json
import re

TRACE_FORMATS = ("chrome", "jsonl", "openmetrics", "summary")

_PID = 1
_TID_SIM = 0
_TID_PHASES = 1


def to_jsonl_lines(observer):
    """Every event, span and the final metrics snapshot as JSON lines."""
    lines = []
    for event in observer.events or ():
        lines.append(json.dumps(_jsonable(event.to_dict()), sort_keys=True))
    for span in observer.spans:
        payload = {"type": "span"}
        payload.update(span.to_dict())
        lines.append(json.dumps(_jsonable(payload), sort_keys=True))
    metrics = {"type": "metrics"}
    metrics.update(observer.snapshot())
    lines.append(json.dumps(_jsonable(metrics), sort_keys=True))
    return lines


def to_chrome_trace(observer, process_name="repro-sim"):
    """The observer's record as a Chrome trace-event JSON object."""
    trace_events = [
        {
            "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": _TID_SIM,
            "args": {"name": "simulation"},
        },
        {
            "name": "thread_name", "ph": "M", "pid": _PID,
            "tid": _TID_PHASES, "args": {"name": "phases"},
        },
    ]
    for span in observer.spans:
        args = {"depth": span.depth}
        if span.parent is not None:
            args["parent"] = span.parent
        args.update(span.args)
        trace_events.append({
            "name": span.name,
            "cat": "phase",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": _PID,
            "tid": _TID_PHASES,
            "args": args,
        })
    for event in observer.events or ():
        trace_events.append({
            "name": event.kind,
            "cat": "sim",
            "ph": "i",
            "ts": event.ts * 1e6,
            "s": "t",
            "pid": _PID,
            "tid": _TID_SIM,
            "args": _jsonable(event.args),
        })
    trace_events.sort(key=lambda entry: entry.get("ts", 0.0))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": _jsonable(observer.snapshot())},
    }


def _jsonable(value):
    """Recursively coerce a payload into JSON-encodable values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float):
        # NaN/Infinity are not valid JSON; strict parsers reject them.
        return value if value == value and abs(value) != float("inf") else None
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return str(value)


_METRIC_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _om_name(name):
    """A metric name sanitized for OpenMetrics ([a-zA-Z0-9_:])."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))
    if not _METRIC_NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _om_label_value(value):
    """A label value escaped per the exposition-format rules."""
    text = str(value)
    return (text.replace("\\", "\\\\")
                .replace("\"", "\\\"")
                .replace("\n", "\\n"))


def _om_number(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value or abs(value) == float("inf"):
            return None  # non-finite gauges are dropped, not emitted
        return repr(value)
    return str(value)


def to_openmetrics(observer):
    """The metrics snapshot in the OpenMetrics text exposition format.

    * counters (and keyed counter families, one labeled sample per key)
      become ``counter`` metrics with the mandatory ``_total`` suffix,
    * numeric gauges become ``gauge`` metrics (non-finite values are
      dropped -- the format has no useful NaN story for scrapers),
    * non-numeric gauges (e.g. ``run.kind``) become ``info`` metrics
      with the value carried as a label,
    * histograms become ``summary`` metrics (``_count``/``_sum``) plus
      ``_min``/``_max`` gauges.

    Dots in metric names map to underscores.  The output ends with the
    ``# EOF`` marker the OpenMetrics spec requires.
    """
    metrics = observer.metrics
    lines = []

    for name, value in sorted(metrics.counters.items()):
        om = _om_name(name)
        lines.append("# TYPE %s counter" % om)
        lines.append("%s_total %s" % (om, _om_number(value)))
    for family, bucket in sorted(metrics.families.items()):
        om = _om_name(family)
        lines.append("# TYPE %s counter" % om)
        for key, count in sorted(
            bucket.items(), key=lambda kv: str(kv[0])
        ):
            label = "0x%x" % key if isinstance(key, int) else str(key)
            lines.append('%s_total{key="%s"} %s' % (
                om, _om_label_value(label), _om_number(count)
            ))
    for name, value in sorted(metrics.gauges.items()):
        om = _om_name(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            rendered = _om_number(value)
            if rendered is None:
                continue
            lines.append("# TYPE %s gauge" % om)
            lines.append("%s %s" % (om, rendered))
        else:
            lines.append("# TYPE %s info" % om)
            lines.append('%s_info{value="%s"} 1' % (
                om, _om_label_value(value)
            ))
    for name, histogram in sorted(metrics.histograms.items()):
        om = _om_name(name)
        lines.append("# TYPE %s summary" % om)
        lines.append("%s_count %d" % (om, histogram.count))
        lines.append("%s_sum %s" % (om, _om_number(histogram.total)))
        for suffix, extreme in (("min", histogram.min),
                                ("max", histogram.max)):
            if extreme is None:
                continue
            lines.append("# TYPE %s_%s gauge" % (om, suffix))
            lines.append("%s_%s %s" % (om, suffix, _om_number(extreme)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def text_summary(observer, top=10):
    """A human-readable run summary: spans, counters, hot addresses."""
    metrics = observer.metrics
    lines = []
    if observer.spans:
        lines.append("phases:")
        for span in sorted(observer.spans, key=lambda s: s.start):
            lines.append(
                "  %s%-28s %8.3f ms"
                % ("  " * span.depth, span.name, span.duration * 1e3)
            )
    if metrics.counters:
        lines.append("counters:")
        for name, value in sorted(metrics.counters.items()):
            lines.append("  %-32s %d" % (name, value))
    if metrics.gauges:
        lines.append("gauges:")
        for name, value in sorted(metrics.gauges.items()):
            if isinstance(value, float):
                lines.append("  %-32s %.6g" % (name, value))
            else:
                lines.append("  %-32s %s" % (name, value))
    by_opcode = metrics.family("sim.dispatch_by_opcode")
    if by_opcode:
        lines.append("dispatch by opcode (top %d):" % top)
        ranked = sorted(by_opcode.items(), key=lambda kv: (-kv[1], kv[0]))
        for label, count in ranked[:top]:
            lines.append("  %10d  %s" % (count, label))
    by_pc = metrics.family("sim.fetch_by_pc")
    if by_pc:
        lines.append("hottest addresses (top %d):" % top)
        ranked = sorted(by_pc.items(), key=lambda kv: (-kv[1], kv[0]))
        for pc, count in ranked[:top]:
            lines.append("  %10d  0x%06x" % (count, pc))
    return "\n".join(lines)


def write_trace(observer, path, trace_format="chrome",
                process_name="repro-sim"):
    """Write the observer's record to ``path`` in the chosen format."""
    if trace_format not in TRACE_FORMATS:
        raise ValueError(
            "unknown trace format %r (expected one of %s)"
            % (trace_format, ", ".join(TRACE_FORMATS))
        )
    with open(path, "w", encoding="utf-8") as handle:
        if trace_format == "chrome":
            json.dump(to_chrome_trace(observer, process_name), handle)
            handle.write("\n")
        elif trace_format == "jsonl":
            for line in to_jsonl_lines(observer):
                handle.write(line)
                handle.write("\n")
        elif trace_format == "openmetrics":
            handle.write(to_openmetrics(observer))
        else:
            handle.write(text_summary(observer))
            handle.write("\n")


def write_metrics(observer, path):
    """Write the metrics snapshot to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_jsonable(observer.snapshot()), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
