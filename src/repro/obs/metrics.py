"""The metrics registry: counters, keyed counter families, gauges,
histograms.

One registry backs one :class:`repro.obs.Observer`.  The hot paths only
ever touch plain dict operations (``inc``/``bump``), so an *enabled*
run stays cheap; a *disabled* run never reaches this module at all (the
hook sites check for an attached observer first).

``snapshot()`` renders everything JSON-compatible: family keys become
strings (ints as hex, matching program addresses), histograms become
``{count, total, mean, min, max}`` records.
"""

from __future__ import annotations


def _key_text(key):
    if isinstance(key, int):
        return "0x%x" % key
    return str(key)


class Histogram:
    """Streaming count/total/min/max summary of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, value, times):
        """Merge ``times`` identical observations of ``value`` in O(1).

        Bit-identical to calling :meth:`observe` ``times`` times -- the
        native burst flush uses this to fold per-packet dispatch counts
        into the histogram without replaying every cycle.
        """
        if times <= 0:
            return
        self.count += times
        self.total += value * times
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else float("nan")

    def to_dict(self):
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean if self.count else None,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Counters, keyed counter families, gauges and histograms.

    * ``inc(name, n)`` -- a plain counter (``sim.issue_cycles``).
    * ``bump(family, key, n)`` -- one counter per key inside a family
      (``sim.fetch_by_pc`` keyed by program address,
      ``analysis.verdicts`` keyed by verdict name).
    * ``set_gauge(name, value)`` -- last-write-wins scalar (CPI,
      cycles/second, static-composition ratio).
    * ``observe(name, value)`` -- histogram sample (execute-packet
      sizes, span durations).
    """

    __slots__ = ("counters", "families", "gauges", "histograms")

    def __init__(self):
        self.counters = {}
        self.families = {}
        self.gauges = {}
        self.histograms = {}

    # -- writers (hot paths) ------------------------------------------------

    def inc(self, name, amount=1):
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def bump(self, family, key, amount=1):
        bucket = self.families.get(family)
        if bucket is None:
            bucket = self.families[family] = {}
        bucket[key] = bucket.get(key, 0) + amount

    def set_gauge(self, name, value):
        self.gauges[name] = value

    def observe(self, name, value):
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def observe_many(self, name, value, times):
        """``times`` identical histogram samples, merged in O(1)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe_many(value, times)

    # -- readers --------------------------------------------------------------

    def counter(self, name, default=0):
        return self.counters.get(name, default)

    def family(self, name):
        """The raw (unstringified) key -> count dict for one family."""
        return self.families.get(name, {})

    def snapshot(self):
        """A JSON-compatible copy of every metric."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "families": {
                family: {
                    _key_text(key): count
                    for key, count in sorted(
                        bucket.items(), key=lambda kv: _key_text(kv[0])
                    )
                }
                for family, bucket in sorted(self.families.items())
            },
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }
