"""Profile-guided hot-region reporting.

:func:`hot_region_report` turns one observed run's per-packet counters
into a stable, JSON-compatible ranking of where simulated time went:
per-packet attributed cycles (``sim.cycles_by_pc``, maintained by
trace/profile-mode observers on every backend -- the Python loops
attribute inline, native bursts flush their telemetry side-buffer) and
contiguous hot windows grouped from them.  The report is the input a
tiered-execution pass consumes to decide which regions earn the most
aggressive backend, and what ``repro-profile`` / ``repro-sim
--profile-out`` serialise.

Counters-mode observers skip cycle attribution; for them the report
falls back to ranking by raw fetch counts and says so in ``basis``.
"""

from __future__ import annotations

#: Report schema version; bump on any shape change so downstream
#: consumers (the future tiered-execution pass) can gate on it.
REPORT_VERSION = 1

#: A packet must own at least this share of attributed cycles to seed a
#: hot window.
DEFAULT_HOT_SHARE = 0.01

#: Hot packets at most this many program words apart merge into one
#: window (packets are multi-word, so adjacency is not pc+1).
DEFAULT_MAX_GAP = 4


def hot_region_report(observer, top=None, hot_share=DEFAULT_HOT_SHARE,
                      max_gap=DEFAULT_MAX_GAP, extents=None):
    """Rank packets and contiguous windows by attributed cycles.

    Returns a JSON-compatible dict::

        {
          "version": 1,
          "basis": "attributed_cycles" | "fetch_counts",
          "total_cycles": <int>,
          "run": {"kind": ..., "cycles": ..., "instructions": ...},
          "packets": [
            {"pc": int, "pc_hex": "0x..", "cycles": int, "fetches": int,
             "share": float, "label": str|None},
            ...sorted by cycles desc, then pc...
          ],
          "windows": [
            {"start": int, "end": int, "limit": int, "start_hex": ..,
             "end_hex": .., "packets": int, "cycles": int,
             "share": float},
            ...sorted by cycles desc, then start...
          ],
        }

    ``top`` truncates the packet ranking (windows always consider every
    hot packet); ``hot_share`` is the minimum cycle share for a packet
    to seed a window; ``max_gap`` is the maximum address gap between
    hot packets merged into one window.

    ``extents`` optionally maps each packet start to the program words
    the packet spans (``{pc: words}``, e.g. built from a simulation
    table's slots).  With it, window grouping measures gaps from where
    the previous packet *ends* rather than where it starts, and each
    window's ``limit`` covers the member words of its final packet --
    without it (extent 1 assumed), a multi-word packet whose last word
    is the final table slot would be silently cut out of the window a
    consumer promotes.  ``end`` stays the last hot packet's start
    address for backwards compatibility; ``limit`` is the exclusive end
    of the covered range.
    """
    metrics = observer.metrics
    attributed = metrics.family("sim.cycles_by_pc")
    if attributed:
        weights = dict(attributed)
        basis = "attributed_cycles"
    else:
        weights = dict(metrics.family("sim.fetch_by_pc"))
        basis = "fetch_counts"
    fetches = metrics.family("sim.fetch_by_pc")
    total = sum(weights.values())
    labeler = observer.labeler

    packets = []
    for pc, cycles in weights.items():
        label = None
        if labeler is not None:
            try:
                label = labeler(pc)
            except Exception:
                label = None
        packets.append({
            "pc": pc,
            "pc_hex": "0x%x" % pc,
            "cycles": cycles,
            "fetches": fetches.get(pc, 0),
            "share": cycles / total if total else 0.0,
            "label": label,
        })
    packets.sort(key=lambda entry: (-entry["cycles"], entry["pc"]))

    windows = _group_windows(weights, total, hot_share, max_gap,
                             extents=extents)

    gauges = metrics.gauges
    report = {
        "version": REPORT_VERSION,
        "basis": basis,
        "total_cycles": total,
        "run": {
            "kind": gauges.get("run.kind"),
            "cycles": gauges.get("run.cycles"),
            "instructions": gauges.get("run.instructions"),
        },
        "packets": packets[:top] if top is not None else packets,
        "windows": windows,
    }
    return report


def _group_windows(weights, total, hot_share, max_gap, extents=None):
    """Contiguous runs of hot packets, ranked by their summed cycles.

    ``extents`` (``{pc: words}``) makes grouping packet-extent aware:
    the gap to the next hot packet is measured from the previous
    packet's *last* member word, and the produced ``limit`` is the
    exclusive end of the final packet's words.  Without extents every
    packet is assumed one word wide -- which both splits windows of
    adjacent multi-word packets and, at the program-end boundary,
    reports a ``limit`` that drops the member words of a multi-word
    final packet.
    """
    if not total:
        return []
    hot = sorted(
        pc for pc, cycles in weights.items()
        if cycles / total >= hot_share
    )

    def extent_of(pc):
        if extents is None:
            return 1
        return max(1, int(extents.get(pc, 1)))

    windows = []
    for pc in hot:
        if windows and pc - windows[-1]["limit"] < max_gap:
            windows[-1]["end"] = pc
            windows[-1]["limit"] = max(
                windows[-1]["limit"], pc + extent_of(pc)
            )
            windows[-1]["packets"] += 1
            windows[-1]["cycles"] += weights[pc]
        else:
            windows.append({
                "start": pc, "end": pc, "limit": pc + extent_of(pc),
                "packets": 1, "cycles": weights[pc],
            })
    for window in windows:
        window["start_hex"] = "0x%x" % window["start"]
        window["end_hex"] = "0x%x" % window["end"]
        window["share"] = window["cycles"] / total
    windows.sort(key=lambda entry: (-entry["cycles"], entry["start"]))
    return windows
