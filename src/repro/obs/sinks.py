"""Pluggable trace sinks.

A sink receives every :class:`repro.obs.events.TraceEvent` and every
finished :class:`repro.obs.spans.Span` the moment it is produced.  The
observer fans out to any number of sinks; the *disabled* simulation
path never constructs events at all (hook sites check for an attached
observer first), so :class:`NullSink` exists for the half-way
configuration -- hooks live and metrics counting on, event storage off.
"""

from __future__ import annotations

import json
from collections import deque


class Sink:
    """Base sink: ignores everything (usable directly as a null sink)."""

    def event(self, event):  # pragma: no cover - trivial
        pass

    def span(self, span):  # pragma: no cover - trivial
        pass

    def close(self):  # pragma: no cover - trivial
        pass


#: Shared do-nothing sink instance.
NULL_SINK = Sink()

# The null sink under its spelled-out name.
NullSink = Sink


class ListSink(Sink):
    """Collects events and spans in memory (tests, exporters)."""

    def __init__(self):
        self.events = []
        self.spans = []

    def event(self, event):
        self.events.append(event)

    def span(self, span):
        self.spans.append(span)


class FlightRecorder(Sink):
    """A bounded ring of the most recent events, for post-mortems.

    The recorder keeps the last ``capacity`` :class:`TraceEvent`\\ s (and
    how many older ones it evicted).  ``Simulator.run`` attaches
    :meth:`snapshot` to any :class:`~repro.support.errors.SimulationError`
    or :class:`~repro.support.errors.SimulationTimeout` escaping the run,
    so a crash report carries the cycles leading up to it even when full
    event recording is off.  The ring survives checkpoint restores --
    pre-restore events stay visible, which is the point of a black box.
    """

    def __init__(self, capacity=256):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        self.dropped = 0

    def __len__(self):
        return len(self._ring)

    def event(self, event):
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)

    def snapshot(self):
        """The retained events, oldest first, as JSON-compatible dicts."""
        return [event.to_dict() for event in self._ring]

    def clear(self):
        self._ring.clear()
        self.dropped = 0


class CallbackSink(Sink):
    """Routes events/spans to user callables (either may be None)."""

    def __init__(self, on_event=None, on_span=None):
        self._on_event = on_event
        self._on_span = on_span

    def event(self, event):
        if self._on_event is not None:
            self._on_event(event)

    def span(self, span):
        if self._on_span is not None:
            self._on_span(span)


class JsonLinesSink(Sink):
    """Streams each event/span as one JSON object per line.

    ``stream`` is any object with ``write``; the sink never closes a
    stream it did not open.  Pass a path instead to let the sink own
    the file.
    """

    def __init__(self, stream_or_path):
        if hasattr(stream_or_path, "write"):
            self._stream = stream_or_path
            self._owned = False
        else:
            self._stream = open(stream_or_path, "w", encoding="utf-8")
            self._owned = True

    def event(self, event):
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self._stream.write("\n")

    def span(self, span):
        payload = {"type": "span"}
        payload.update(span.to_dict())
        self._stream.write(json.dumps(payload, sort_keys=True))
        self._stream.write("\n")

    def close(self):
        if self._owned:
            self._stream.close()
