"""Phase-timing spans.

A span measures one named phase of work (simulation-table decoding,
operation sequencing, instantiation, cache lookup/store, a whole
program load).  Spans nest: the observer keeps a stack, every finished
span records its depth and its parent's name, and the Chrome-trace
exporter renders them as stacked "X" slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Span:
    """One finished phase: ``[start, end)`` seconds on the observer clock."""

    name: str
    start: float
    end: float
    depth: int
    parent: Optional[str] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self):
        return self.end - self.start

    def contains(self, other):
        """Whether ``other`` nests (temporally) inside this span."""
        return self.start <= other.start and other.end <= self.end

    def to_dict(self):
        payload = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
        }
        if self.parent is not None:
            payload["parent"] = self.parent
        if self.args:
            payload["args"] = dict(self.args)
        return payload


class SpanTimer:
    """Re-entrant-free context manager recording one span on exit.

    Produced by :meth:`repro.obs.Observer.span`; not constructed
    directly.
    """

    __slots__ = ("_observer", "name", "args", "_start", "_depth", "_parent")

    def __init__(self, observer, name, args):
        self._observer = observer
        self.name = name
        self.args = args

    def __enter__(self):
        observer = self._observer
        stack = observer._span_stack
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = observer.now()
        return self

    def __exit__(self, exc_type, exc, tb):
        observer = self._observer
        end = observer.now()
        observer._span_stack.pop()
        observer._finish_span(
            Span(
                name=self.name,
                start=self._start,
                end=end,
                depth=self._depth,
                parent=self._parent,
                args=self.args,
            )
        )
        return False
