"""Resilience layer: keeping long compiled-simulation runs alive.

Compiled simulation moves decoding and sequencing to simulation-compile
time (the paper's whole premise) -- which silently breaks the moment
the application writes into program memory, and which loses hours of
work when a run overshoots a budget or dies mid-flight.  This package
closes those gaps:

* **Program-memory write guard** (:mod:`repro.resilience.guard`) --
  watches stores into the compiled program region and degrades
  gracefully per policy: ``error`` (typed
  :class:`repro.support.errors.StaleTableError`), ``recompile``
  (incremental re-decode of just the touched packets through the
  existing simulation-compiler pipeline and cache) or ``interpret``
  (per-region fallback to interpretive fetch-decode-execute).
* **Checkpoint/restore** (:mod:`repro.resilience.checkpoint`) --
  versioned, digest-stamped snapshots of the full architectural and
  engine state.  A checkpoint taken under one simulator kind restores
  under any other and resumes bit-exact.
* **Watchdog budgets** (:mod:`repro.resilience.watchdog`) -- cycle and
  wall-clock budgets raising a typed
  :class:`repro.support.errors.SimulationTimeout` that carries a
  checkpoint, so callers resume instead of rerunning.
* **Fault injection** (:mod:`repro.resilience.faults`) -- a
  deterministic harness (bit flips, program-memory patches, decode and
  compile faults, cache-entry corruption) used by the test suite to
  prove every degradation path actually fires.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    Checkpoint,
    program_digest,
)
from repro.resilience.faults import FaultInjector
from repro.resilience.guard import (
    GUARD_POLICIES,
    GuardedMemory,
    ProgramMemoryGuard,
)
from repro.resilience.watchdog import RunBudget, run_with_budget

__all__ = [
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "FaultInjector",
    "GUARD_POLICIES",
    "GuardedMemory",
    "ProgramMemoryGuard",
    "RunBudget",
    "program_digest",
    "run_with_budget",
]
