"""Versioned, digest-stamped simulation checkpoints.

A checkpoint captures everything needed to resume a run bit-exactly:

* the full architectural state (every register and memory, canonical),
* the engine state: cycle count, retired-instruction count, and the
  *issue-pc window* of in-flight slots (stage 0 first, ``None`` for
  bubbles),
* pipeline control (halted flag, pending stall cycles),
* accumulated wall-clock seconds (so resumed ``stats`` stay honest).

It deliberately does **not** capture the simulation table or any
compiled artefacts: the front-end of every simulator kind is a pure
function of (pc, program memory), so restoring memory and re-fetching
the window reproduces the in-flight slots exactly.  That is what makes
checkpoints *portable across kinds* -- snapshot under ``compiled``,
resume under ``interpretive`` (or vice versa), finish bit-exact.

Integrity: checkpoints are stamped with the model digest (from the
simulation-table cache's canonical model fingerprint) and a program
digest; ``restore`` refuses a checkpoint from a different model or
program with a typed :class:`repro.support.errors.CheckpointError`.
The on-disk format is versioned JSON with a whole-body SHA-256, so
truncation and tampering are detected at load.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.support.errors import CheckpointError

CHECKPOINT_FORMAT = 1

_FILE_MARKER = "repro-checkpoint"


def program_digest(program):
    """A stable fingerprint of a target program's loadable content."""
    blob = json.dumps(program.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _tiering_mode(simulator):
    """The simulator's tiering configuration as a plain mode string."""
    tiering = getattr(simulator, "tiering", "off")
    if tiering in (None, "off"):
        return "off"
    mode = getattr(tiering, "mode", None)
    return mode if mode is not None else str(tiering)


def _body_digest(body):
    blob = json.dumps(body, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class Checkpoint:
    """A resumable snapshot of one simulation run."""

    format: int
    model_name: str
    model_digest: str
    program_name: str
    program_digest: str
    kind: str
    cycles: int
    instructions: int
    wall_seconds: float
    window: Tuple[Optional[int], ...]
    halted: bool
    stall_cycles: int
    state: Dict[str, object] = field(repr=False)
    # Run-configuration metadata: how the snapshotting simulator was
    # configured.  Restore does not require them to match (checkpoints
    # stay kind- and backend-portable); they exist so a resume can
    # *re-apply* the original configuration instead of silently
    # reverting to defaults (``repro-sim --resume`` does exactly that).
    # Older checkpoint files simply lack the keys and load with the
    # defaults below.
    backend: str = "auto"
    tiering: str = "off"

    # -- capture / validation ----------------------------------------------

    @classmethod
    def capture(cls, simulator):
        """Snapshot a simulator (normally via ``Simulator.checkpoint``)."""
        from repro.simcc.cache import model_digest

        engine = simulator.engine
        control = simulator.control
        return cls(
            format=CHECKPOINT_FORMAT,
            model_name=simulator.model.name,
            model_digest=model_digest(simulator.model),
            program_name=simulator.program.name,
            program_digest=program_digest(simulator.program),
            kind=simulator.kind,
            cycles=engine.cycles,
            instructions=engine.instructions_retired,
            wall_seconds=simulator.stats.wall_seconds,
            window=tuple(engine.window_pcs),
            halted=control.halted,
            stall_cycles=control.stall_cycles,
            state=simulator.state.snapshot(),
            backend=getattr(simulator, "backend", "auto"),
            tiering=_tiering_mode(simulator),
        )

    def validate_for(self, simulator):
        """Refuse restore under a different model or program."""
        from repro.simcc.cache import model_digest

        if self.format != CHECKPOINT_FORMAT:
            raise CheckpointError(
                "checkpoint format %r is not supported (expected %d)"
                % (self.format, CHECKPOINT_FORMAT)
            )
        if self.model_digest != model_digest(simulator.model):
            raise CheckpointError(
                "checkpoint was taken under model %r, which does not "
                "match the loaded model %r"
                % (self.model_name, simulator.model.name)
            )
        if simulator.program is None:
            raise CheckpointError(
                "no program loaded; load the checkpointed program "
                "before restoring"
            )
        if self.program_digest != program_digest(simulator.program):
            raise CheckpointError(
                "checkpoint was taken from program %r, which does not "
                "match the loaded program %r"
                % (self.program_name, simulator.program.name)
            )

    # -- (de)serialisation --------------------------------------------------

    def to_payload(self):
        return {
            "format": self.format,
            "model_name": self.model_name,
            "model_digest": self.model_digest,
            "program_name": self.program_name,
            "program_digest": self.program_digest,
            "kind": self.kind,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "wall_seconds": self.wall_seconds,
            "window": list(self.window),
            "halted": self.halted,
            "stall_cycles": self.stall_cycles,
            "state": self.state,
            "backend": self.backend,
            "tiering": self.tiering,
        }

    @classmethod
    def from_payload(cls, payload):
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint body is not a mapping")
        fmt = payload.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(
                "checkpoint format %r is not supported (expected %d)"
                % (fmt, CHECKPOINT_FORMAT)
            )
        try:
            return cls(
                format=fmt,
                model_name=payload["model_name"],
                model_digest=payload["model_digest"],
                program_name=payload["program_name"],
                program_digest=payload["program_digest"],
                kind=payload["kind"],
                cycles=payload["cycles"],
                instructions=payload["instructions"],
                wall_seconds=payload["wall_seconds"],
                window=tuple(payload["window"]),
                halted=payload["halted"],
                stall_cycles=payload["stall_cycles"],
                state=payload["state"],
                backend=payload.get("backend", "auto"),
                tiering=payload.get("tiering", "off"),
            )
        except KeyError as exc:
            raise CheckpointError(
                "checkpoint body is missing field %s" % exc
            ) from exc

    def save(self, path):
        """Write the checkpoint as digest-stamped JSON; returns ``path``."""
        body = self.to_payload()
        document = {
            _FILE_MARKER: CHECKPOINT_FORMAT,
            "digest": _body_digest(body),
            "body": body,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return path

    @classmethod
    def load(cls, path):
        """Load and verify a checkpoint file.

        Raises :class:`CheckpointError` on unreadable, truncated,
        tampered or wrong-format files.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                "cannot read checkpoint %s: %s" % (path, exc)
            ) from exc
        if not isinstance(document, dict) or _FILE_MARKER not in document:
            raise CheckpointError(
                "%s is not a repro checkpoint file" % path
            )
        body = document.get("body")
        if body is None or document.get("digest") != _body_digest(body):
            raise CheckpointError(
                "checkpoint %s failed its integrity check "
                "(truncated or tampered)" % path
            )
        return cls.from_payload(body)
