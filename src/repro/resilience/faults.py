"""Deterministic fault injection for exercising the resilience paths.

The degradation machinery (write guard, checkpoint recovery, cache
quarantine, typed error annotation) is only trustworthy if every path
has actually fired in a test.  This harness injects the faults those
paths exist for, deterministically -- no randomness, every injection
point is an explicit (cycle, action) pair or an explicit file
corruption mode -- and logs each one (plus a ``resilience.fault`` trace
event and ``resilience.faults_injected`` metric when an observer is
attached).

Fault classes:

* **architectural bit flips**: :meth:`FaultInjector.flip_register_bit`,
  :meth:`FaultInjector.flip_memory_bit`;
* **self-modifying stores**: :meth:`FaultInjector.write_program_word`
  routes through the checked state accessors, so it hits the guarded
  program memory exactly like a behaviour-level store;
* **decode faults**: :meth:`FaultInjector.decode_fault` patches the
  decoder to raise for a chosen address;
* **compile-phase faults**: :meth:`FaultInjector.compile_fault` makes
  simulation compilation raise;
* **cache corruption**: :meth:`FaultInjector.corrupt_cache_entry`
  (truncation, bad magic, garbage bytes) and
  :meth:`FaultInjector.spoof_cache_format` (a well-formed entry from a
  different format version, which must be a *clean* miss, not
  quarantine).

:meth:`FaultInjector.run_with_faults` drives a simulator through a
(cycle, action) plan, firing each action at its exact cycle boundary.
"""

from __future__ import annotations

import marshal
import os
import signal
from contextlib import contextmanager

from repro.support.errors import DecodeError, ReproError


class FaultInjector:
    """Deterministic fault injection with a structured log."""

    def __init__(self, observer=None):
        self.observer = observer
        self.log = []

    def _record(self, kind, **details):
        self.log.append({"fault": kind, **details})
        if self.observer is not None:
            self.observer.on_fault(kind, **details)

    # -- architectural faults ----------------------------------------------

    def flip_register_bit(self, simulator, name, bit, index=None):
        """XOR one bit of a register (file entry when ``index`` given)."""
        value = simulator.state.read_register(name, index)
        flipped = value ^ (1 << bit)
        if index is None:
            simulator.state.write_register(name, flipped)
        else:
            simulator.state.write_register(name, index, flipped)
        self._record(
            "register_bit_flip", register=name, index=index, bit=bit,
            before=value, after=simulator.state.read_register(name, index),
        )

    def flip_memory_bit(self, simulator, memory, address, bit):
        """XOR one bit of a memory cell (via the checked accessors)."""
        value = simulator.state.read_memory(memory, address)
        simulator.state.write_memory(memory, address, value ^ (1 << bit))
        self._record(
            "memory_bit_flip", memory=memory, address=address, bit=bit,
            before=value,
            after=simulator.state.read_memory(memory, address),
        )

    def write_program_word(self, simulator, address, value):
        """Store an instruction word into program memory (an SMC event).

        Goes through ``ProcessorState.write_memory``, i.e. through the
        guarded storage when a write guard is armed -- the same path a
        behaviour-level store takes.
        """
        pmem = simulator.model.config.program_memory
        before = simulator.state.read_memory(pmem, address)
        simulator.state.write_memory(pmem, address, value)
        self._record(
            "program_write", memory=pmem, address=address,
            before=before, after=value,
        )

    # -- process faults -----------------------------------------------------

    def process_kill(self, simulator=None, sig=signal.SIGKILL):
        """Kill the current process (default: SIGKILL, uncatchable).

        The worker-death fault: with SIGKILL the process gets no chance
        to flush, hand off, or mark the job failed -- exactly what a
        supervisor must recover from.  The injection is recorded (and
        the observer flushed through its sinks) *before* the signal is
        raised, so a survivable signal still leaves a log entry; under
        SIGKILL the record only survives if it already left the process
        (e.g. down a pipe sink).  ``simulator`` is accepted (and
        ignored) so the method is usable directly as a fault-plan
        action.
        """
        self._record("process_kill", pid=os.getpid(), sig=int(sig))
        os.kill(os.getpid(), sig)

    # -- toolchain faults ---------------------------------------------------

    @contextmanager
    def decode_fault(self, address=None, message="injected decode fault"):
        """Make ``InstructionDecoder.decode`` raise (for one address, or
        for every address when ``address`` is None) inside the block."""
        from repro.coding.decoder import InstructionDecoder

        original = InstructionDecoder.decode
        injector = self
        fault_address = address

        def faulty(self, word, address=None):
            if fault_address is None or address == fault_address:
                injector._record(
                    "decode_fault", address=address, word=word,
                )
                raise DecodeError(message)
            return original(self, word, address=address)

        InstructionDecoder.decode = faulty
        try:
            yield self
        finally:
            InstructionDecoder.decode = original

    @contextmanager
    def compile_fault(self, message="injected compile fault"):
        """Make simulation compilation raise inside the block.

        Covers both the direct compiler path and the portable-table
        builder (which load-time cache misses *and* tiered window
        promotions go through), so the fault also reaches background
        promotion builds.
        """
        from repro.simcc import portable
        from repro.simcc.compiler import SimulationCompiler

        original = SimulationCompiler.compile
        original_portable = portable.build_portable_table
        injector = self

        def faulty(self, *args, **kwargs):
            injector._record("compile_fault")
            raise ReproError(message)

        def faulty_portable(*args, **kwargs):
            injector._record("compile_fault")
            raise ReproError(message)

        SimulationCompiler.compile = faulty
        portable.build_portable_table = faulty_portable
        try:
            yield self
        finally:
            SimulationCompiler.compile = original
            portable.build_portable_table = original_portable

    # -- cache faults -------------------------------------------------------

    def corrupt_cache_entry(self, cache, model, program, level="sequenced",
                            mode="truncate"):
        """Damage the on-disk cache entry for (model, program, level).

        ``mode``:

        * ``truncate`` -- keep only the first few bytes (torn write),
        * ``magic`` -- clobber the magic line (foreign file),
        * ``garbage`` -- replace the payload with junk bytes (bit rot).

        Returns the entry path.  Raises :class:`ReproError` when no
        entry exists (the test would silently pass otherwise).
        """
        from repro.simcc.cache import _MAGIC, table_digest

        digest = table_digest(model, program, level)
        path = cache.entry_path(digest)
        if not os.path.exists(path):
            raise ReproError("no cache entry to corrupt at %s" % path)
        if mode == "truncate":
            with open(path, "rb") as handle:
                head = handle.read(len(_MAGIC) + 4)
            with open(path, "wb") as handle:
                handle.write(head)
        elif mode == "magic":
            with open(path, "r+b") as handle:
                handle.write(b"XXXX")
        elif mode == "garbage":
            with open(path, "wb") as handle:
                handle.write(_MAGIC + b"\x00garbage\xff" * 16)
        else:
            raise ReproError("unknown cache corruption mode %r" % mode)
        self._record("cache_corruption", mode=mode, path=path)
        return path

    def spoof_cache_format(self, cache, model, program, level="sequenced",
                           format_version=0):
        """Replace an entry with a well-formed one of another format.

        The reader must treat this as a *clean* miss (an entry written
        by a different tool version), not as corruption: no quarantine
        counter, file left in place.
        """
        from repro.simcc.cache import _MAGIC, table_digest

        digest = table_digest(model, program, level)
        path = cache.entry_path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "meta": {"format": format_version, "digest": digest},
            "table": None,
        }
        with open(path, "wb") as handle:
            handle.write(_MAGIC + marshal.dumps(payload))
        self._record(
            "cache_format_spoof", format=format_version, path=path,
        )
        return path

    # -- plan-driven runs ---------------------------------------------------

    #: Fault-plan actions expressible as plain data (see
    #: :meth:`compile_plan`), mapped to the injector method each one
    #: drives.  ``process_kill`` makes worker-death schedules part of
    #: the same plan format as bit flips and program writes.
    PLAN_ACTIONS = {
        "process_kill": "process_kill",
        "write_program_word": "write_program_word",
        "flip_register_bit": "flip_register_bit",
        "flip_memory_bit": "flip_memory_bit",
    }

    def compile_plan(self, entries, attempt=None, resume_cycles=0):
        """Compile serialisable fault-plan entries into (cycle, action)
        pairs for :meth:`run_with_faults`.

        Each entry is a mapping ``{"cycle": N, "action": NAME}`` plus
        the action's keyword arguments under ``"args"``; names come
        from :data:`PLAN_ACTIONS`.  The format is JSON/pipe friendly,
        so schedules cross process boundaries -- the simulation
        service's chaos harness ships them to worker processes.

        Two filters make plans replayable across recovery attempts:

        * ``"attempts"`` (a list of attempt ordinals) restricts an
          entry to those attempts; entries without it fire on *every*
          attempt.  ``attempt=None`` skips the filter.
        * entries whose cycle is not beyond ``resume_cycles`` are
          dropped -- a job resumed from a checkpoint past the fault has
          already survived it.
        """
        plan = []
        for entry in entries:
            action_name = entry.get("action")
            method_name = self.PLAN_ACTIONS.get(action_name)
            if method_name is None:
                raise ReproError(
                    "unknown fault-plan action %r (choose from %s)"
                    % (action_name, ", ".join(sorted(self.PLAN_ACTIONS)))
                )
            cycle = int(entry.get("cycle", 0))
            allowed = entry.get("attempts")
            if (attempt is not None and allowed is not None
                    and attempt not in allowed):
                continue
            if cycle <= resume_cycles and resume_cycles > 0:
                continue
            method = getattr(self, method_name)
            args = dict(entry.get("args", {}))
            plan.append(
                (cycle, lambda sim, _m=method, _a=args: _m(sim, **_a))
            )
        return plan

    def run_with_faults(self, simulator, plan, max_cycles=50_000_000,
                        budget=None, on_checkpoint=None):
        """Run ``simulator`` firing ``plan`` actions at exact cycles.

        ``plan`` is an iterable of ``(cycle, action)`` pairs; each
        ``action`` is called with the simulator once the engine reaches
        that cycle (actions beyond the program's natural end never
        fire).  Returns :class:`repro.sim.base.SimulationStats` from the
        final ``run``.

        ``budget`` (a :class:`repro.resilience.watchdog.RunBudget`) and
        ``on_checkpoint`` apply to the final run exactly as in
        :meth:`repro.sim.base.Simulator.run`; additionally, the
        stepping phase that walks the engine up to each fault cycle
        honours ``budget.checkpoint_every``, so autosnapshots keep
        their cadence even while faults are pending -- a process-kill
        fault then finds a resume point already delivered.
        """
        engine = simulator.engine
        cadence = budget.checkpoint_every if budget is not None else None
        next_snapshot = (
            engine.cycles + cadence if cadence else None
        )
        for cycle, action in sorted(plan, key=lambda item: item[0]):
            while (
                engine.cycles < cycle
                and not simulator.halted
                and engine.cycles < max_cycles
            ):
                engine.step()
                if (next_snapshot is not None
                        and engine.cycles >= next_snapshot
                        and not simulator.halted):
                    snapshot = simulator.checkpoint(auto=True)
                    if on_checkpoint is not None:
                        on_checkpoint(snapshot)
                    next_snapshot = engine.cycles + cadence
            if simulator.halted:
                break
            action(simulator)
        return simulator.run(max_cycles=max_cycles, budget=budget,
                             on_checkpoint=on_checkpoint)
