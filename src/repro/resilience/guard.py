"""Program-memory write guard: self-modifying code under compiled simulation.

Compiled simulation bakes decode and sequencing results into the
simulation table at simulation-compile time.  A program that writes into
its own program memory invalidates that work: the table still holds the
*old* instruction's behaviours, so the simulation silently diverges from
the interpretive reference.  The guard closes this coherence hole:

* program-memory storage is wrapped in :class:`GuardedMemory`, a list
  subclass whose ``__setitem__`` notifies the guard (generated and
  interpreted behaviour code writes resources through plain list item
  assignment, so every store path is covered);
* the guard maps each written address to the issue packets whose encoding
  covers it and marks those packets *stale*;
* the engine's front-end is wrapped so a fetch of a stale packet
  degrades per policy instead of executing stale behaviours:

  ``error``
      raise a typed :class:`repro.support.errors.StaleTableError` at the
      *write* (fail fast, the conservative default semantics),
  ``recompile``
      re-decode just the touched packet from live program memory through
      the existing simulation-compiler pipeline (and cache) and patch the
      simulation table in place,
  ``interpret``
      serve the stale region from an interpretive fetch-decode-execute
      fallback while the rest of the program keeps its compiled speed.

Every degradation is observable: ``resilience.self_mod_writes``,
``resilience.invalidated_packets``, ``resilience.recompiled_packets``
and ``resilience.interpreted_fetches`` metrics plus
``resilience.self_modify`` / ``resilience.resolve`` trace events.
"""

from __future__ import annotations

from functools import partial

from repro.behavior.evaluator import EvalContext, execute_behavior
from repro.machine.driver import IssueSlot, trap_slot
from repro.machine.packets import packet_extent
from repro.machine.schedule import build_schedule
from repro.support.errors import (
    DecodeError,
    ReproError,
    SimulationError,
    StaleTableError,
)
from repro.tools.objfile import Program

GUARD_POLICIES = ("error", "recompile", "interpret")


def splice_table_window(table, mini, engine=None, mode="refresh", pcs=None):
    """Swap a window of ``mini``'s slots into live ``table``, bit-exactly.

    The one mechanism behind both coherence repair and tiered promotion:
    ``SimulationTable.make_frontend`` closures capture ``table.slots``
    by reference, so patching the dict in place is immediately visible
    to the running engine at the next fetch -- no engine restart, no
    re-entry protocol beyond flushing engine-side memoisation
    (``engine.flush_interned()``, when the engine interns window
    transitions that may embed the old slots).

    ``pcs`` restricts the splice to those packet starts (promotions
    must exclude patch-program tail packets whose extents were clipped
    by the window limit); ``None`` splices every slot of ``mini``.

    ``mode`` selects the safety semantics:

    ``"refresh"``
        the self-modify path: program words *changed*, so the packet's
        cross-packet hazard analysis is void -- force
        ``schedule_safety`` to ``"unknown"`` (dynamically-composed
        path) for every spliced packet.
    ``"promote"``
        the tiering path: program words are *unchanged*, only the slot
        representation got richer (e.g. sequenced -> instantiated), so
        the whole-program hazard analysis stays valid -- keep the
        table's original ``schedule_safety``.  Additionally adopt the
        mini table's per-packet lowered IR and absint proofs (creating
        the dicts on tables built at a level that skipped them), so a
        later native promotion of the same window can admit it.

    Returns ``{pc: words}`` for the spliced packets, the shape the
    guard's cover map refresh consumes.
    """
    if mode not in ("refresh", "promote"):
        raise ReproError("unknown splice mode %r" % (mode,))
    updates = {}
    for pc, slot in mini.slots.items():
        if pcs is not None and pc not in pcs:
            continue
        table.slots[pc] = slot
        table.has_control[pc] = mini.has_control.get(pc, True)
        if table.schedule_safety is not None and mode == "refresh":
            # The incremental compile cannot see cross-packet hazards
            # against untouched neighbours, so force these packets
            # onto the dynamically-composed path.
            table.schedule_safety[pc] = "unknown"
        if table.items_by_stage is not None and mini.items_by_stage:
            items = mini.items_by_stage.get(pc)
            if items is not None:
                table.items_by_stage[pc] = items
        if mode == "promote":
            if mini.ir_by_stage:
                ir = mini.ir_by_stage.get(pc)
                if ir is not None:
                    if table.ir_by_stage is None:
                        table.ir_by_stage = {}
                    table.ir_by_stage[pc] = ir
            mini_proofs = getattr(mini, "proofs", None)
            if mini_proofs:
                proof = mini_proofs.get(pc)
                if proof is not None:
                    if table.proofs is None:
                        table.proofs = {}
                    table.proofs[pc] = proof
        elif table.ir_by_stage is not None and mini.ir_by_stage:
            ir = mini.ir_by_stage.get(pc)
            if ir is not None:
                table.ir_by_stage[pc] = ir
        updates[pc] = slot.words
    if engine is not None:
        flush = getattr(engine, "flush_interned", None)
        if flush is not None:
            flush()
    return updates


class GuardedMemory(list):
    """Program-memory storage that notifies the guard on item stores.

    A plain ``list`` subclass so that *reads* (the hot fetch path and all
    behaviour loads) keep native list speed; only ``__setitem__`` pays
    for the hook, and only a single attribute load + None check when no
    guard is armed.
    """

    __slots__ = ("on_write",)

    def __init__(self, iterable=()):
        list.__init__(self, iterable)
        self.on_write = None

    def __setitem__(self, index, value):
        list.__setitem__(self, index, value)
        hook = self.on_write
        if hook is not None:
            hook(index)


class ProgramMemoryGuard:
    """Watches stores into the program region and degrades per policy.

    One guard serves one loaded program on one simulator; it is re-armed
    by ``Simulator.load_program``.  The kind-specific coupling (how to
    enumerate packets, how to invalidate and re-materialise them) lives
    in a small *target* adapter supplied by the simulator -- see
    :class:`TableGuardTarget`, :class:`PredecodedGuardTarget` and
    :class:`CoherentGuardTarget` below.
    """

    def __init__(self, simulator, policy):
        if policy not in GUARD_POLICIES:
            raise ReproError(
                "unknown self-modify policy %r (choose from %s)"
                % (policy, ", ".join(GUARD_POLICIES))
            )
        self.simulator = simulator
        self.policy = policy
        self.stale = set()
        self.elided = False
        self.stats = {
            "program_writes": 0,
            "self_mod_writes": 0,
            "invalidated_packets": 0,
            "recompiled_packets": 0,
            "interpreted_fetches": 0,
            "elisions": 0,
            "rearms": 0,
        }
        model = simulator.model
        self._pmem_name = model.config.program_memory
        self._depth = model.pipeline.depth
        self._target = None
        self._engine = None
        # address -> set of packet issue pcs whose encoding covers it
        self._covering = {}
        # packet issue pc -> words covered (for incremental re-covering)
        self._extent_of = {}
        self._suspended = False
        # lazy interpretive fallback machinery (policy "interpret")
        self._decoder = None
        self._eval_ctx = None

    @property
    def observer(self):
        # Read through to the simulator so attach_observer on the
        # simulator is immediately visible here too.
        return self.simulator.observer

    # -- arming ------------------------------------------------------------

    def attach(self, target, engine, elide=False):
        """Arm the guard: wrap storage, build the cover map, interpose.

        With ``elide=True`` (the simulator proved, via the absint
        store-reachability facts, that no compiled packet can store into
        program memory) the fetch-path interposer is *not* installed:
        clean programs fetch at full, uninstrumented speed.  Program
        memory stays wrapped, so an out-of-band store -- a debugger
        poke, fault injection, a checkpoint restore of patched memory --
        still reaches :meth:`_note_write`, which lazily installs the
        interposer before any stale packet can be fetched.  The first
        self-modifying write therefore behaves bit-identically to a
        never-elided guard (whose wrapper is a no-op while ``stale`` is
        empty).
        """
        self._target = target
        self._engine = engine
        self._wrap_memory()
        self._covering = {}
        self._extent_of = {}
        for pc, words in target.packet_map().items():
            self._cover(pc, words)
        self.elided = bool(elide)
        if self.elided:
            self.stats["elisions"] += 1
            observer = self.observer
            if observer is not None:
                observer.on_guard_elide(policy=self.policy)
        else:
            engine.wrap_frontend(self._make_frontend)
        return self

    def disarm(self):
        """Stop watching writes (the front-end wrapper stays, inert)."""
        storage = getattr(self.simulator.state, self._pmem_name, None)
        if isinstance(storage, GuardedMemory):
            storage.on_write = None
        self.stale.clear()

    def _wrap_memory(self):
        state = self.simulator.state
        storage = getattr(state, self._pmem_name)
        if not isinstance(storage, GuardedMemory):
            storage = GuardedMemory(storage)
            # Generated/interpreted behaviour code resolves the storage
            # attribute on every access, so the swap is visible to all
            # already-compiled behaviours immediately.
            setattr(state, self._pmem_name, storage)
        storage.on_write = self._on_write

    def _cover(self, pc, words):
        old = self._extent_of.get(pc)
        if old is not None:
            for address in range(pc, pc + old):
                pcs = self._covering.get(address)
                if pcs is not None:
                    pcs.discard(pc)
        self._extent_of[pc] = words
        for address in range(pc, pc + words):
            self._covering.setdefault(address, set()).add(pc)

    # -- the write path ----------------------------------------------------

    def _on_write(self, index):
        if self._suspended:
            return
        if isinstance(index, slice):
            storage = getattr(self.simulator.state, self._pmem_name)
            for address in range(*index.indices(len(storage))):
                self._note_write(address)
        else:
            self._note_write(index)

    def _note_write(self, address):
        self.stats["program_writes"] += 1
        pcs = self._covering.get(address)
        if not pcs:
            return  # a data store that happens to live in program memory
        if self.elided:
            # The static proof covered every *compiled* store; this one
            # arrived out of band (fault injection, debugger, restore of
            # patched memory).  Install the fetch interposer now --
            # before this write marks anything stale, the wrapper is a
            # no-op, so behaviour is bit-identical to a never-elided
            # guard from here on.
            self.elided = False
            self.stats["rearms"] += 1
            self._engine.wrap_frontend(self._make_frontend)
            observer = self.observer
            if observer is not None:
                observer.on_guard_rearm(address)
        self.stats["self_mod_writes"] += 1
        coherent = self._target.coherent
        fresh = (
            []
            if coherent
            else sorted(pc for pc in pcs if pc not in self.stale)
        )
        observer = self.observer
        if observer is not None:
            observer.on_self_modify(address, self.policy, len(fresh))
        if coherent:
            return  # e.g. interpretive: re-decodes every fetch anyway
        if self.policy == "error":
            raise StaleTableError(
                "store to program memory address 0x%x invalidates "
                "compiled packet(s) at %s; rerun with "
                "--on-self-modify recompile|interpret or use the "
                "interpretive simulator"
                % (
                    address,
                    ", ".join("0x%x" % pc for pc in sorted(pcs)),
                ),
                address=address,
                pcs=sorted(pcs),
            )
        if fresh:
            self.stats["invalidated_packets"] += len(fresh)
            self.stale.update(fresh)
        # Invalidate on *every* self-modifying write, not just the first
        # for a packet: under the interpret policy packets stay stale,
        # and a repeat write must still flush engine-side memoisation
        # (interned static transitions) built from the previous decode.
        self._target.invalidate(sorted(pcs))

    # -- the fetch path ----------------------------------------------------

    def _make_frontend(self, base):
        stale = self.stale
        resolve = self._resolve

        def guarded_frontend(pc):
            if pc in stale:
                return resolve(pc)
            return base(pc)

        return guarded_frontend

    def _resolve(self, pc):
        observer = self.observer
        if self.policy == "recompile":
            slot, updates = self._target.refresh(pc)
            for updated_pc, words in updates.items():
                self._cover(updated_pc, words)
                self.stale.discard(updated_pc)
            self.stats["recompiled_packets"] += 1
            if observer is not None:
                observer.on_guard_resolve(pc, "recompile")
            return slot
        slot = self._interpret(pc)
        self.stats["interpreted_fetches"] += 1
        if observer is not None:
            observer.on_guard_resolve(pc, "interpret")
        return slot

    def _interpret(self, pc):
        """Interpretive fetch-decode-schedule over *live* program memory.

        Mirrors ``InterpretiveSimulator._fetch_decode``; the packet stays
        stale, so every fetch of it re-decodes -- correct for regions the
        program keeps rewriting.
        """
        simulator = self.simulator
        model = simulator.model
        state = simulator.state
        pmem = getattr(state, self._pmem_name)
        size = len(pmem)
        if pc < 0 or pc >= size:
            return trap_slot(
                model,
                "instruction fetch outside program memory (pc=0x%x)" % pc,
            )
        if self._decoder is None:
            from repro.coding.decoder import InstructionDecoder

            self._decoder = InstructionDecoder(model)
            self._eval_ctx = EvalContext(state, simulator.control, model)
        extent = packet_extent(model, pmem.__getitem__, pc, size)
        ctx = self._eval_ctx
        stages = [[] for _ in range(self._depth)]
        for address in range(pc, pc + extent):
            try:
                node = self._decoder.decode(pmem[address], address=address)
            except DecodeError as exc:
                return trap_slot(model, str(exc))
            for item in build_schedule(node, model):
                stages[item.stage].append(
                    partial(
                        execute_behavior, item.behavior.statements,
                        item.node, ctx,
                    )
                )
        return IssueSlot(
            ops_by_stage=tuple(tuple(stage) for stage in stages),
            words=extent,
            insn_count=extent,
        )

    # -- checkpoint/restore coupling ---------------------------------------

    def suspend(self):
        """Stop classifying writes (used while a restore rewrites state)."""
        self._suspended = True

    def resync(self):
        """Re-derive staleness after a state restore.

        Any program-memory cell that differs from the loaded program
        image is treated as a (replayed) self-modifying write, so a
        checkpoint taken after an SMC event restores with the same
        stale set -- including raising under the ``error`` policy.
        """
        self._suspended = False
        simulator = self.simulator
        program = simulator.program
        if program is None:
            return
        pmem = getattr(simulator.state, self._pmem_name)
        canonical = simulator.model.memories[self._pmem_name].dtype.canonical
        for segment in program.segments_in(self._pmem_name):
            for offset, word in enumerate(segment.words):
                address = segment.base + offset
                if pmem[address] != canonical(word):
                    self._note_write(address)


class TableGuardTarget:
    """Guard coupling for the simulation-table kinds.

    Serves ``compiled``, ``unfolded``, ``static`` and
    ``unfolded_static`` simulators: packets come from
    ``SimulationTable.slots`` and a refresh runs the touched region back
    through the simulation compiler (reusing the cache when one is
    attached), patching the table in place.
    """

    coherent = False

    def __init__(self, simulator, engine):
        self._sim = simulator
        self._engine = engine
        pmem_name = simulator.model.config.program_memory
        self._pmem_name = pmem_name
        self._ranges = [
            (segment.base, segment.end)
            for segment in simulator.program.segments_in(pmem_name)
        ]

    def packet_map(self):
        return {
            pc: slot.words for pc, slot in self._sim.table.slots.items()
        }

    def invalidate(self, pcs):
        # Static composition (and level-3 column fusion) read per-pc
        # metadata and IR straight from the table, which is stale until
        # refreshed; flag the packets so every window containing them
        # takes the dynamically-composed path, which executes the live
        # (guard-resolved) slots.  A later refresh() restores the flags.
        table = self._sim.table
        for pc in pcs:
            table.has_control[pc] = True
            if table.schedule_safety is not None:
                table.schedule_safety[pc] = "unknown"
        # Interned window transitions may embed the stale slots; throw
        # the memoised transitions away so every subsequent window is
        # re-fetched through the guarded front-end.
        flush = getattr(self._engine, "flush_interned", None)
        if flush is not None:
            flush()
        # Native burst artifacts encode the *old* micro-ops and cannot
        # be patched in place: demote the touched packets to the Python
        # path permanently (the refreshed table serves them there).
        invalidate_native = getattr(self._engine, "invalidate_native",
                                    None)
        if invalidate_native is not None:
            invalidate_native(sorted(pcs))

    def refresh(self, pc):
        """Re-decode the packet at ``pc`` from live memory; patch table."""
        sim = self._sim
        state = sim.state
        pmem = getattr(state, self._pmem_name)
        limit = self._segment_limit(pc, len(pmem))
        extent = packet_extent(sim.model, pmem.__getitem__, pc, limit)
        words = [int(word) for word in pmem[pc:pc + extent]]
        patch = Program(name="<recompile:0x%x>" % pc, entry=pc)
        patch.add_segment(self._pmem_name, pc, words)
        if sim.cache is not None:
            mini = sim.cache.load_table(
                sim._simcc, patch, state, sim.control,
                level=sim.level, observer=sim.observer,
            )
        else:
            mini = sim._simcc.compile(
                patch, state, sim.control, level=sim.level,
                observer=sim.observer,
            )
        updates = self._merge(mini)
        return sim.table.slots[pc], updates

    def _merge(self, mini):
        return splice_table_window(
            self._sim.table, mini, mode="refresh"
        )

    def _segment_limit(self, pc, default):
        for base, end in self._ranges:
            if base <= pc < end:
                return end
        return default


class PredecodedGuardTarget:
    """Guard coupling for the predecoded simulator.

    Packets are per-address decode nodes plus extents; a refresh simply
    re-decodes the touched words into the node map.
    """

    coherent = False

    def __init__(self, simulator, engine):
        self._sim = simulator
        self._engine = engine
        pmem_name = simulator.model.config.program_memory
        self._pmem_name = pmem_name
        self._ranges = [
            (segment.base, segment.end)
            for segment in simulator.program.segments_in(pmem_name)
        ]

    def packet_map(self):
        return dict(self._sim._extents)

    def invalidate(self, pcs):
        pass

    def refresh(self, pc):
        sim = self._sim
        pmem = getattr(sim.state, self._pmem_name)
        limit = self._segment_limit(pc, len(pmem))
        extent = packet_extent(sim.model, pmem.__getitem__, pc, limit)
        updates = {}
        for address in range(pc, pc + extent):
            sim._nodes[address] = sim._decoder.decode(
                pmem[address], address=address
            )
        for address in range(pc, pc + extent):
            member_extent = packet_extent(
                sim.model, pmem.__getitem__, address, limit
            )
            sim._extents[address] = member_extent
            updates[address] = member_extent
        return sim._fetch(pc), updates

    def _segment_limit(self, pc, default):
        for base, end in self._ranges:
            if base <= pc < end:
                return end
        return default


class CoherentGuardTarget:
    """Guard coupling for simulators that re-decode on every fetch.

    The interpretive simulator is always coherent with program memory,
    so nothing needs invalidating -- but the guard still *classifies*
    and counts self-modifying writes, which keeps metrics comparable
    across kinds (and lets tests assert the reference also saw the SMC
    event).
    """

    coherent = True

    def __init__(self, simulator, engine):
        self._sim = simulator
        self._engine = engine

    def packet_map(self):
        program = self._sim.program
        pmem_name = self._sim.model.config.program_memory
        return {
            address: 1
            for segment in program.segments_in(pmem_name)
            for address in range(segment.base, segment.end)
        }

    def invalidate(self, pcs):
        pass

    def refresh(self, pc):
        raise SimulationError(
            "coherent simulator should never resolve a stale packet"
        )
