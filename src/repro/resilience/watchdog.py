"""Watchdog budgets: bounded runs with periodic autosnapshots.

Long compiled-simulation runs need two guarantees: they stop when told
to (cycle *and* wall-clock budgets, both raising a typed
:class:`repro.support.errors.SimulationTimeout`), and they stop
*resumably* -- the timeout carries a checkpoint, and an optional
autosnapshot interval persists progress while the run is healthy.

The mechanism is chunked execution: the engine's ``run_chunk`` steps a
bounded number of cycles and returns, so budget checks and snapshots
happen at cycle boundaries without putting any check on the per-cycle
hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.support.errors import SimulationTimeout

# Cycles between wall-clock deadline checks.  Large enough that the
# perf_counter call amortises to nothing, small enough that overshoot
# past a deadline stays well under a second on any host.
DEFAULT_CHECK_INTERVAL = 65_536


@dataclass
class RunBudget:
    """Limits and snapshot cadence for one :meth:`Simulator.run`.

    ``max_cycles``
        Cycle budget (in addition to the ``run(max_cycles=...)``
        argument; the tighter of the two wins).
    ``max_wall_seconds``
        Host wall-clock budget for this call.
    ``checkpoint_every``
        Take an automatic checkpoint every N simulated cycles.
    ``check_interval``
        Cycles between wall-clock checks (tune down for tests).
    """

    max_cycles: Optional[int] = None
    max_wall_seconds: Optional[float] = None
    checkpoint_every: Optional[int] = None
    check_interval: int = DEFAULT_CHECK_INTERVAL


def run_with_budget(simulator, engine, max_cycles, budget,
                    on_checkpoint=None):
    """Run ``engine`` to completion under ``budget``; returns cycles run.

    ``on_checkpoint`` is called with each automatic
    :class:`repro.resilience.checkpoint.Checkpoint`.  On budget
    exhaustion a :class:`SimulationTimeout` is raised with
    ``budget="cycles"`` or ``budget="wall"``; the caller
    (``Simulator.run``) attaches a final checkpoint and the faulting PC.
    """
    limit = max_cycles
    if budget.max_cycles is not None:
        limit = min(limit, budget.max_cycles)
    deadline = None
    if budget.max_wall_seconds is not None:
        deadline = time.perf_counter() + budget.max_wall_seconds

    control = simulator.control
    start = engine.cycles
    until_snapshot = budget.checkpoint_every

    def finished():
        return control.halted and engine.drained

    while not finished():
        ran = engine.cycles - start
        if ran >= limit:
            raise SimulationTimeout(
                "simulation exceeded %d cycles without halting" % limit,
                budget="cycles", limit=limit, cycles=engine.cycles,
            )
        chunk = limit - ran
        if until_snapshot is not None:
            chunk = min(chunk, until_snapshot)
        if deadline is not None:
            chunk = min(chunk, budget.check_interval)
            if time.perf_counter() >= deadline:
                raise SimulationTimeout(
                    "simulation exceeded wall-clock budget of %gs"
                    % budget.max_wall_seconds,
                    budget="wall", limit=budget.max_wall_seconds,
                    cycles=engine.cycles,
                )
        stepped = engine.run_chunk(chunk)
        if until_snapshot is not None:
            until_snapshot -= stepped
            if until_snapshot <= 0 and not finished():
                snapshot = simulator.checkpoint(auto=True)
                if on_checkpoint is not None:
                    on_checkpoint(snapshot)
                until_snapshot = budget.checkpoint_every
    return engine.cycles - start
