"""Fault-tolerant simulation job service.

The paper trades compile time for run time inside one process; serving
that speed means the unit of robustness must become the *job*, not the
process.  This package wraps the existing fast core (simulator kinds,
the shared simulation-table cache, run budgets, kind-portable
checkpoints) in a supervised multiprocess worker pool where every
failure mode is recoverable:

* a **worker crash** (SIGKILL, segfault, OOM kill) resurrects the job
  on a fresh worker from its last autosnapshot checkpoint, with
  exponential backoff and a bounded retry budget;
* a **wedged worker** (missed heartbeats) or an **attempt wall
  timeout** is killed and treated the same way;
* a job that keeps crashing is **quarantined** with a structured
  :class:`~repro.service.job.JobFailure` report (flight recording
  attached) instead of wedging the pool;
* degradation is **policy-driven**: a crash under ``backend=native``
  retries at ``backend=python``, a faulting table compile retries
  interpretively, and a corrupted shared-cache entry is quarantined
  and rebuilt through the cache's single-flight path.

Surface area:

* :class:`~repro.service.supervisor.Supervisor` -- the in-process pool
  (submit/status/result/cancel, ``drain``);
* ``repro-serve`` (:mod:`repro.service.server`) -- a stdlib-only HTTP
  front end;
* :class:`~repro.service.client.Client` -- the matching HTTP client;
* :mod:`repro.service.chaos` -- the fault-schedule harness CI drives.
"""

from __future__ import annotations

from repro.service.client import Client
from repro.service.job import (
    JOB_CANCELLED,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
    TERMINAL_STATES,
    JobFailure,
    JobSpec,
    ServicePolicy,
    TenantBudget,
)
from repro.service.supervisor import Supervisor

__all__ = [
    "Client",
    "JobFailure",
    "JobSpec",
    "ServicePolicy",
    "Supervisor",
    "TenantBudget",
    "JOB_PENDING",
    "JOB_RUNNING",
    "JOB_COMPLETED",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "TERMINAL_STATES",
]
