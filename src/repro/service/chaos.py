"""Chaos harness: fault schedules and golden comparison for the service.

The service's robustness claim is concrete: a job batch completed
under injected faults -- workers SIGKILLed mid-job, shared-cache
entries corrupted on disk -- must be **bit-identical** to the same
batch run serially with no faults at all.  This module packages what
that takes:

* :func:`build_app_spec` turns a generated application
  (:mod:`repro.apps`) into a :class:`~repro.service.job.JobSpec` whose
  memory dumps cover exactly the app's golden cells;
* :func:`run_reference` produces the serial no-fault golden result for
  one spec, in-process;
* :func:`kill_plan` builds the serialisable SIGKILL schedules the
  workers replay via
  :meth:`repro.resilience.faults.FaultInjector.compile_plan`;
* :func:`corrupt_cache_entries` garbles on-disk simulation-table
  entries so recovery also exercises the cache's corrupt-entry
  quarantine path;
* :func:`run_chaos` drives a whole batch and compares, and
  ``python -m repro.service.chaos`` wraps it for CI.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

from repro.service.job import JobSpec
from repro.support.errors import ReproError


def golden_dumps(app):
    """``(memory, base, length)`` windows spanning the app's golden
    cells -- what a job must return for bit-exact comparison."""
    dumps = []
    for memory, cells in sorted(app.expected.items()):
        base = min(cells)
        length = max(cells) - base + 1
        dumps.append((memory, base, length))
    return tuple(dumps)


def build_app_spec(app, toolset=None, **overrides):
    """A :class:`JobSpec` for a generated application.

    ``toolset`` (a :class:`repro.api.Toolset`) is built on demand when
    omitted.  Keyword overrides land on the spec (``kind``,
    ``backend``, ``checkpoint_every``, ``fault_plan``, ...).
    """
    if toolset is None:
        from repro.api import build_toolset, load_model

        toolset = build_toolset(load_model(app.model_name))
    program = app.assemble(toolset)
    fields = {
        "model": app.model_name,
        "program": program.to_dict(),
        "name": app.name,
        "max_cycles": app.max_cycles,
        "dumps": golden_dumps(app),
    }
    fields.update(overrides)
    return JobSpec.from_dict(JobSpec(**fields).to_dict())


def run_reference(spec):
    """The serial, no-fault golden result for one spec (in-process).

    Returns ``{"stats": ..., "memory": ...}`` shaped exactly like the
    service result payload, so comparison is a plain ``==``.
    """
    from repro.service.worker import _dump_memory, _resolve_model
    from repro.sim import create_simulator
    from repro.tools.objfile import Program

    model = _resolve_model(spec.model)
    program = Program.from_dict(spec.program)
    simulator = create_simulator(
        model, spec.kind, backend=spec.backend, tiering=spec.tiering
    )
    simulator.load_program(program)
    stats = simulator.run(spec.max_cycles)
    return {
        "stats": stats.to_dict(),
        "memory": _dump_memory(simulator.state, spec.dumps),
    }


def kill_plan(cycle, attempts=(1,)):
    """A fault plan that SIGKILLs the worker at ``cycle``.

    ``attempts=(1,)`` kills only the first attempt -- the recovery
    scenario: the retry resumes past the kill point from the last
    checkpoint.  ``attempts=None`` kills *every* attempt; paired with
    a kill cycle below the checkpoint cadence it guarantees quarantine
    (no checkpoint ever lands, so no attempt escapes the kill).
    """
    entry = {"cycle": int(cycle), "action": "process_kill", "args": {}}
    if attempts is not None:
        entry["attempts"] = [int(a) for a in attempts]
    return (entry,)


def corrupt_cache_entries(cache_dir, limit=None):
    """Garble on-disk simulation-table entries in-place.

    Returns the number of entries corrupted.  The next worker to load
    one hits the cache's integrity check, which quarantines (deletes)
    the entry, counts ``corrupt_entries``, and rebuilds through the
    single-flight path -- self-healing the service relies on.
    """
    pattern = os.path.join(str(cache_dir), "**", "*.simtab")
    paths = sorted(glob.glob(pattern, recursive=True))
    if limit is not None:
        paths = paths[:limit]
    for path in paths:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            # truncating mid-blob defeats the marshal payload
            # deterministically (overwriting bytes might land inside
            # an unused constant and slip through)
            handle.truncate(max(len(b"reprosimtab"), size // 2))
    return len(paths)


def compare_results(reference, result, label="job"):
    """Raise :class:`ReproError` unless a service result is
    bit-identical to its serial reference (memory dumps and cycle and
    instruction counts; wall time is host noise and excluded)."""
    problems = []
    if result["memory"] != reference["memory"]:
        problems.append("memory dumps differ")
    for key in ("cycles", "instructions"):
        if result["stats"].get(key) != reference["stats"].get(key):
            problems.append(
                "%s differ: %r != %r"
                % (key, result["stats"].get(key),
                   reference["stats"].get(key))
            )
    if problems:
        raise ReproError(
            "%s diverged from the serial no-fault run: %s"
            % (label, "; ".join(problems))
        )


def run_chaos(workers=4, jobs=12, cache_dir=None, report_dir=None,
              kill_cycle=3_000, checkpoint_every=1_000,
              timeout=600.0, taps=8, samples=48):
    """Run a chaos batch; returns a JSON-compatible summary.

    Before the batch, one warmup build populates the shared cache, its
    entries are truncated on disk, and a clean *probe* job is drained:
    the probe hits the corrupt entry, whose quarantine-and-rebuild
    shows up as ``corrupt_entries`` in the service cache metrics.  The
    batch proper then starts with ``workers`` first-attempt SIGKILL
    jobs -- every (idle) worker's first dispatch is a kill job, so
    every worker dies at least once -- with later jobs alternating
    kill plans and clean runs.  The whole batch must complete
    bit-identical to the serial no-fault reference within ``timeout``
    seconds (the bounded-time guarantee).
    """
    from repro.api import build_toolset, load_model
    from repro.apps import build_fir
    from repro.service.job import ServicePolicy
    from repro.service.supervisor import Supervisor

    app = build_fir("c62x", taps=taps, samples=samples)
    toolset = build_toolset(load_model(app.model_name))
    base_spec = build_app_spec(
        app, toolset, checkpoint_every=checkpoint_every
    )
    reference = run_reference(base_spec)
    if cache_dir:
        # warm the shared cache, then corrupt what was stored
        warm = build_app_spec(app, toolset)
        from repro.service.worker import _resolve_model
        from repro.sim import create_simulator
        from repro.simcc.cache import SimulationCache
        from repro.tools.objfile import Program

        warm_sim = create_simulator(
            _resolve_model(warm.model), warm.kind,
            cache=SimulationCache(cache_dir),
        )
        warm_sim.load_program(Program.from_dict(warm.program))
        corrupted = corrupt_cache_entries(cache_dir)
    else:
        corrupted = 0

    policy = ServicePolicy(
        max_retries=3, backoff_base=0.01, backoff_cap=0.25,
        heartbeat_timeout=60.0, report_dir=report_dir,
    )
    specs = []
    for index in range(jobs):
        plan = ()
        if index < workers or index % 2 == 0:
            plan = kill_plan(kill_cycle + 37 * index)
        specs.append(build_app_spec(
            app, toolset, name="chaos-%02d" % index,
            checkpoint_every=checkpoint_every, fault_plan=plan,
        ))

    summary = {
        "workers": workers,
        "jobs": jobs,
        "corrupted_cache_entries": corrupted,
        "killed_jobs": sum(1 for s in specs if s.fault_plan),
        "mismatches": [],
    }
    with Supervisor(workers=workers, cache_dir=cache_dir,
                    policy=policy) as pool:
        if corrupted:
            # the probe repairs the corrupt entry on a worker that
            # survives to report it (a SIGKILLed worker cannot)
            probe = pool.submit(build_app_spec(
                app, toolset, name="chaos-probe",
                checkpoint_every=checkpoint_every,
            ))
            pool.wait(probe, timeout=timeout)
            compare_results(reference, pool.result(probe),
                            label="chaos-probe")
        ids = [pool.submit(spec) for spec in specs]
        pool.drain(timeout=timeout)
        summary["max_attempts"] = 0
        for job_id in ids:
            status = pool.status(job_id)
            summary["max_attempts"] = max(
                summary["max_attempts"], status["attempt"]
            )
            if status["state"] != "completed":
                summary["mismatches"].append(
                    "%s: %s" % (job_id, status["state"])
                )
                continue
            try:
                compare_results(reference, pool.result(job_id),
                                label=job_id)
            except ReproError as exc:
                summary["mismatches"].append(str(exc))
        metrics = pool.metrics_snapshot()
        summary["worker_deaths"] = metrics["counters"].get(
            "service.worker_deaths", 0
        )
        summary["retries"] = metrics["counters"].get(
            "service.retries", 0
        )
        summary["cache"] = metrics["families"].get("service.cache", {})
    summary["ok"] = not summary["mismatches"]
    return summary


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description="Chaos-test the simulation service: SIGKILL "
                    "schedules plus cache corruption, verified "
                    "bit-identical against serial no-fault runs.",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=12)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--report-dir", default=None)
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)
    summary = run_chaos(
        workers=args.workers, jobs=args.jobs,
        cache_dir=args.cache_dir, report_dir=args.report_dir,
        timeout=args.timeout,
    )
    json.dump(summary, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0 if summary["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
