"""The HTTP client for ``repro-serve`` (stdlib ``urllib`` only).

A thin, typed wrapper over the JSON routes in
:mod:`repro.service.server`: tenant-budget rejections (HTTP 429) come
back as :class:`~repro.support.errors.BudgetExceededError`, everything
else the service refuses as :class:`~repro.support.errors.ServiceError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.service.job import TERMINAL_STATES, JobSpec
from repro.support.errors import BudgetExceededError, ServiceError


class Client:
    """Talks to one ``repro-serve`` instance.

    ::

        client = Client("http://127.0.0.1:8642")
        job = client.submit(spec)
        status = client.wait(job, timeout=120)
        result = client.result(job)
    """

    def __init__(self, base_url, timeout=30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, method, path, payload=None):
        url = "%s%s" % (self.base_url, path)
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
                kind = response.headers.get("Content-Type", "")
                if kind.startswith("application/json"):
                    return json.loads(body)
                return body
        except urllib.error.HTTPError as exc:
            self._raise_for(exc)
        except urllib.error.URLError as exc:
            raise ServiceError(
                "cannot reach %s: %s" % (url, exc.reason)
            ) from exc

    @staticmethod
    def _raise_for(exc):
        try:
            detail = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            detail = {}
        message = detail.get("error") or ("HTTP %d" % exc.code)
        if exc.code == 429:
            raise BudgetExceededError(
                message,
                tenant=detail.get("tenant"),
                budget=detail.get("budget"),
            ) from exc
        raise ServiceError(message) from exc

    # -- API ----------------------------------------------------------------

    def submit(self, spec):
        """Submit a :class:`JobSpec` (or its dict form); returns the
        job id."""
        if isinstance(spec, JobSpec):
            spec = spec.to_dict()
        return self._request("POST", "/v1/jobs", spec)["job"]

    def status(self, job_id):
        return self._request("GET", "/v1/jobs/%s" % job_id)

    def result(self, job_id):
        return self._request("GET", "/v1/jobs/%s/result" % job_id)

    def failure(self, job_id):
        """The quarantine report of a failed job."""
        return self._request("GET", "/v1/jobs/%s/failure" % job_id)

    def cancel(self, job_id):
        return self._request("POST", "/v1/jobs/%s/cancel" % job_id)

    def jobs(self):
        return self._request("GET", "/v1/jobs")["jobs"]

    def metrics_text(self):
        """The service metrics in OpenMetrics text form."""
        return self._request("GET", "/v1/metrics")

    def health(self):
        return self._request("GET", "/v1/healthz")

    def wait(self, job_id, timeout=None, poll=0.2):
        """Poll until the job is terminal; returns its final status.

        Raises :class:`ServiceError` when ``timeout`` seconds pass
        first.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    "job %s still %s after %gs"
                    % (job_id, status["state"], timeout)
                )
            time.sleep(poll)
