"""Job model for the simulation service: specs, policies, failures.

Everything here is plain data that crosses process (and, via the HTTP
front end, machine) boundaries as JSON: a :class:`JobSpec` describes
one simulation to run, a :class:`ServicePolicy` how the supervisor
reacts to failures, a :class:`TenantBudget` what one tenant may
consume, and a :class:`JobFailure` is the structured post-mortem of a
quarantined job.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.support.errors import ReproError

#: Job lifecycle states.
JOB_PENDING = "pending"        # queued (initial, and between retries)
JOB_RUNNING = "running"        # dispatched to a worker
JOB_COMPLETED = "completed"    # result available, golden-comparable
JOB_FAILED = "failed"          # quarantined with a JobFailure report
JOB_CANCELLED = "cancelled"    # cancelled by the client

TERMINAL_STATES = (JOB_COMPLETED, JOB_FAILED, JOB_CANCELLED)


@dataclass
class JobSpec:
    """One simulation job: what to run and under which limits.

    ``model`` is a shipped model name or a ``.lisa`` path resolvable by
    the worker; ``program`` is the serialised object file
    (:meth:`repro.tools.objfile.Program.to_dict`).  ``dumps`` lists
    ``(memory, base, length)`` windows returned with the result -- the
    service equivalent of ``repro-sim --dump``.  ``checkpoint_every``
    is the autosnapshot cadence in simulated cycles; every autosnapshot
    streams back to the supervisor and doubles as the heartbeat, so it
    also bounds how much work a crash can lose.  ``fault_plan``
    (chaos harness only) carries serialisable
    :meth:`repro.resilience.faults.FaultInjector.compile_plan` entries.
    """

    model: str
    program: Dict[str, object]
    name: str = "job"
    kind: str = "compiled"
    backend: str = "auto"
    tiering: str = "off"
    max_cycles: int = 50_000_000
    max_wall_seconds: Optional[float] = None
    checkpoint_every: int = 2_000
    on_self_modify: str = "off"
    tenant: str = "default"
    dumps: Tuple[Tuple[str, int, int], ...] = ()
    fault_plan: Tuple[Dict[str, object], ...] = ()

    def to_dict(self):
        payload = asdict(self)
        payload["dumps"] = [list(entry) for entry in self.dumps]
        payload["fault_plan"] = [dict(entry) for entry in self.fault_plan]
        return payload

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict) or "model" not in data \
                or "program" not in data:
            raise ReproError(
                "a job spec needs at least 'model' and 'program'"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                "unknown job spec field(s): %s"
                % ", ".join(sorted(unknown))
            )
        spec = cls(**{key: data[key] for key in data})
        spec.dumps = tuple(tuple(entry) for entry in spec.dumps)
        spec.fault_plan = tuple(dict(entry) for entry in spec.fault_plan)
        return spec


@dataclass
class ServicePolicy:
    """How the supervisor reacts to failing jobs and workers.

    ``max_retries`` bounds *re*-tries: a job may run at most
    ``max_retries + 1`` attempts before quarantine.  Backoff between
    attempts is exponential, ``backoff_base * 2**(attempt-1)`` capped
    at ``backoff_cap`` seconds.  A worker silent for
    ``heartbeat_timeout`` seconds (no message of any kind) is killed
    and its job treated as crashed.  ``degrade_native`` retries a job
    that crashed under ``backend=native`` at ``backend=python``;
    ``degrade_compile`` retries a job whose simulation-table compile
    faulted on the ``interpretive`` kind (no table to build).  Both
    degradations are recorded on the job and in ``service.*`` metrics.
    ``report_dir`` (optional) is where quarantine writes each
    :class:`JobFailure` as JSON.
    """

    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    heartbeat_timeout: float = 30.0
    degrade_native: bool = True
    degrade_compile: bool = True
    report_dir: Optional[str] = None


@dataclass
class TenantBudget:
    """Per-tenant admission limits, enforced at submit time.

    ``max_active_jobs`` bounds concurrently pending+running jobs;
    ``max_total_cycles`` bounds the tenant's lifetime simulated-cycle
    consumption (completed-job cycles accumulate against it);
    ``max_cycles_per_job`` rejects any single job asking for more.
    ``None`` disables a dimension.
    """

    max_active_jobs: Optional[int] = None
    max_total_cycles: Optional[int] = None
    max_cycles_per_job: Optional[int] = None


@dataclass
class JobFailure:
    """The structured post-mortem of a quarantined job.

    ``attempts`` holds one record per failed attempt (cause, error
    kind/message, the cycle position the attempt had reached, worker
    id/exit code); ``degradations`` the policy actions taken along the
    way; ``flight`` the last attempt's flight-recorder events when the
    worker lived long enough to send them (a SIGKILLed worker cannot).
    """

    job_id: str
    name: str
    tenant: str
    cause: str
    attempts: List[Dict[str, object]] = field(default_factory=list)
    degradations: List[Dict[str, object]] = field(default_factory=list)
    flight: List[Dict[str, object]] = field(default_factory=list)
    spec: Dict[str, object] = field(default_factory=dict)

    def to_dict(self):
        return {
            "format": 1,
            "job_id": self.job_id,
            "name": self.name,
            "tenant": self.tenant,
            "cause": self.cause,
            "attempts": list(self.attempts),
            "degradations": list(self.degradations),
            "flight": list(self.flight),
            "spec": dict(self.spec),
        }

    def save(self, directory):
        """Write the report as ``<directory>/<job_id>.json``; returns
        the path (best effort -- an unwritable report directory must
        not take the supervisor down with it)."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "%s.json" % self.job_id)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def spec_summary(spec):
    """The non-bulky part of a spec for status payloads and reports
    (the program image is elided; its name survives)."""
    return {
        "model": spec.model,
        "program": spec.program.get("name", "program"),
        "name": spec.name,
        "kind": spec.kind,
        "backend": spec.backend,
        "tiering": spec.tiering,
        "max_cycles": spec.max_cycles,
        "max_wall_seconds": spec.max_wall_seconds,
        "checkpoint_every": spec.checkpoint_every,
        "tenant": spec.tenant,
        "fault_plan": [dict(entry) for entry in spec.fault_plan],
    }
