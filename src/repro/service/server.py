"""``repro-serve``: a stdlib-only HTTP front end for the supervisor.

One :class:`~repro.service.supervisor.Supervisor` sits behind a
:class:`http.server.ThreadingHTTPServer`; a single background pump
thread drives the supervisor event loop while handler threads only
touch the (locked) public supervisor API.  The JSON routes:

====== ============================ =======================================
POST   ``/v1/jobs``                 submit a job spec; ``{"job": id}``
GET    ``/v1/jobs/<id>``            status
GET    ``/v1/jobs/<id>/result``     result (409 while not completed)
GET    ``/v1/jobs/<id>/failure``    quarantine report (404 until failed)
POST   ``/v1/jobs/<id>/cancel``     cancel
GET    ``/v1/jobs``                 ``{"jobs": [[id, state], ...]}``
GET    ``/v1/metrics``              OpenMetrics text exposition
GET    ``/v1/healthz``              liveness + pool size
====== ============================ =======================================

Tenant budget rejections map to HTTP 429, unknown jobs to 404, bad
specs to 400.  There is deliberately no TLS/auth story here -- the
service fronts a trusted lab network, like the remote co-simulation
bridge (:mod:`repro.cosim`).
"""

from __future__ import annotations

import argparse
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import SimpleNamespace

from repro.obs.export import to_openmetrics
from repro.service.job import JOB_FAILED, ServicePolicy, TenantBudget
from repro.service.supervisor import Supervisor
from repro.support.errors import BudgetExceededError, ReproError, ServiceError


class _Pump(threading.Thread):
    """Drives ``supervisor.pump`` until asked to stop."""

    def __init__(self, supervisor, poll=0.05):
        super().__init__(name="repro-serve-pump", daemon=True)
        self.supervisor = supervisor
        self.poll = poll
        self.stop_event = threading.Event()

    def run(self):
        while not self.stop_event.is_set():
            self.supervisor.pump(self.poll)

    def stop(self):
        self.stop_event.set()
        self.join(timeout=5.0)


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the supervisor's thread-safe API."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------

    @property
    def supervisor(self):
        return self.server.supervisor

    def _reply(self, code, payload):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, code, text, content_type="text/plain"):
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError("request body is not JSON: %s" % exc)

    def _job_id(self, parts):
        return parts[2] if len(parts) > 2 else None

    # -- routes -------------------------------------------------------------

    def do_GET(self):
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["v1", "healthz"]:
                with self.supervisor._lock:
                    workers = len(self.supervisor._workers)
                self._reply(200, {"ok": True, "workers": workers})
            elif parts == ["v1", "metrics"]:
                shim = SimpleNamespace(metrics=self.supervisor.metrics)
                self._reply_text(
                    200, to_openmetrics(shim),
                    content_type=(
                        "application/openmetrics-text; version=1.0.0"
                    ),
                )
            elif parts == ["v1", "jobs"]:
                self._reply(200, {"jobs": self.supervisor.jobs()})
            elif (len(parts) == 3 and parts[:2] == ["v1", "jobs"]):
                self._reply(200, self.supervisor.status(parts[2]))
            elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                  and parts[3] == "result"):
                self._reply(200, self.supervisor.result(parts[2]))
            elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                  and parts[3] == "failure"):
                failure = self.supervisor.failure(parts[2])
                if failure is None:
                    self._reply(404, {
                        "error": "job %s is not quarantined" % parts[2]
                    })
                else:
                    self._reply(200, failure)
            else:
                self._reply(404, {"error": "no such route"})
        except ServiceError as exc:
            self._service_error(exc)

    def do_POST(self):
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["v1", "jobs"]:
                spec = self._read_json()
                job_id = self.supervisor.submit(spec)
                self._reply(202, {"job": job_id})
            elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
                  and parts[3] == "cancel"):
                self._reply(200, self.supervisor.cancel(parts[2]))
            else:
                self._reply(404, {"error": "no such route"})
        except BudgetExceededError as exc:
            self._reply(429, {
                "error": str(exc),
                "tenant": exc.tenant,
                "budget": exc.budget,
            })
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})

    def _service_error(self, exc):
        message = str(exc)
        if "unknown job" in message:
            self._reply(404, {"error": message})
        elif "no result" in message:
            self._reply(409, {"error": message})
        elif "quarantined" in message:
            self._reply(409, {"error": message, "state": JOB_FAILED})
        else:
            self._reply(400, {"error": message})


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server bound to one supervisor; owns the pump thread."""

    daemon_threads = True

    def __init__(self, address, supervisor, verbose=False):
        super().__init__(address, ServiceHandler)
        self.supervisor = supervisor
        self.verbose = verbose
        self.pump = _Pump(supervisor)

    def start_pump(self):
        self.pump.start()

    def close(self):
        self.pump.stop()
        self.shutdown()
        self.server_close()
        self.supervisor.shutdown()


def _parse_tenant(text):
    """``name:active:total:per_job`` with ``-`` for unmetered slots."""
    fields = text.split(":")
    if len(fields) != 4:
        raise argparse.ArgumentTypeError(
            "tenant budgets look like name:active:total:per_job "
            "(use '-' for no limit)"
        )
    name = fields[0]

    def limit(raw):
        return None if raw in ("", "-") else int(raw)

    return name, TenantBudget(
        max_active_jobs=limit(fields[1]),
        max_total_cycles=limit(fields[2]),
        max_cycles_per_job=limit(fields[3]),
    )


def serve_main(argv=None):
    """Entry point for the ``repro-serve`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve simulation jobs over HTTP on a supervised "
                    "worker pool with checkpoint-based recovery.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker pool size (default: 2)")
    parser.add_argument("--cache-dir", default=None,
                        help="shared simulation-table cache directory")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="retry budget before quarantine")
    parser.add_argument("--heartbeat-timeout", type=float, default=30.0,
                        help="seconds of worker silence before a kill")
    parser.add_argument("--report-dir", default=None,
                        help="directory for JobFailure quarantine "
                             "reports")
    parser.add_argument("--tenant", action="append", default=[],
                        type=_parse_tenant, metavar="NAME:A:T:P",
                        help="tenant budget as "
                             "name:max_active:max_total_cycles:"
                             "max_cycles_per_job ('-' = unlimited)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    policy = ServicePolicy(
        max_retries=args.max_retries,
        heartbeat_timeout=args.heartbeat_timeout,
        report_dir=args.report_dir,
    )
    supervisor = Supervisor(
        workers=args.workers,
        cache_dir=args.cache_dir,
        policy=policy,
        tenants=dict(args.tenant),
    )
    server = ServiceServer((args.host, args.port), supervisor,
                           verbose=args.verbose)
    server.start_pump()
    host, port = server.server_address[:2]
    print("repro-serve: %d worker(s) on http://%s:%d/v1/" %
          (args.workers, host, port))
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("repro-serve: shutting down")
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(serve_main())
