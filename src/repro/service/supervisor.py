"""The supervisor: a worker-process pool with job resurrection.

The supervisor owns N worker processes (:mod:`repro.service.worker`),
a FIFO job queue, and one duplex pipe per worker.  Its event loop
(:meth:`Supervisor.pump`) multiplexes every worker pipe *and* every
worker process sentinel through one
:func:`multiprocessing.connection.wait` call, so a worker that dies
without a word -- SIGKILL, a segfaulting native burst, the OOM killer
-- wakes the supervisor exactly like a message would.

Failure handling is checkpoint-based: every autosnapshot a worker
streams back replaces the job's resume point, so resurrection on a
fresh worker loses at most ``checkpoint_every`` cycles.  Retries back
off exponentially and are bounded by the
:class:`~repro.service.job.ServicePolicy` retry budget; a job that
keeps dying is quarantined with a structured
:class:`~repro.service.job.JobFailure` report instead of wedging the
pool.  Degradation is policy-driven: a crash under ``backend=native``
retries at ``backend=python``, a faulting simulation-table compile
retries interpretively.

Threading: public methods take an internal lock and may be called from
any thread (the HTTP front end calls them from handler threads); the
blocking ``wait`` itself runs outside the lock so submits and status
queries never stall behind the poll.  Exactly one thread should drive
:meth:`pump`/:meth:`drain`/:meth:`wait`.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from multiprocessing.connection import wait as _mp_wait

from repro.obs import MetricsRegistry
from repro.service.job import (
    JOB_CANCELLED,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_PENDING,
    JOB_RUNNING,
    TERMINAL_STATES,
    JobFailure,
    JobSpec,
    ServicePolicy,
    spec_summary,
)
from repro.service.worker import worker_main
from repro.support.errors import BudgetExceededError, ServiceError

#: Failure causes treated as worker crashes (resurrect from checkpoint).
CRASH_CAUSES = ("worker_crash", "heartbeat_timeout")


class _Worker:
    """One pool slot: a process, its pipe, and what it is running."""

    __slots__ = ("id", "process", "conn", "job", "last_beat", "kill_cause")

    def __init__(self, worker_id, process, conn):
        self.id = worker_id
        self.process = process
        self.conn = conn
        self.job = None          # job id currently dispatched, if any
        self.last_beat = time.monotonic()
        self.kill_cause = None   # set before a deliberate SIGKILL


class _Job:
    """Supervisor-side job state (specs themselves live in ``spec``)."""

    __slots__ = (
        "id", "spec", "state", "attempt", "attempt_records",
        "degradations", "checkpoint", "cycles", "result", "failure",
        "flight", "next_eligible", "cancel_requested", "error",
        "submitted",
    )

    def __init__(self, job_id, spec):
        self.id = job_id
        self.spec = spec
        self.state = JOB_PENDING
        self.attempt = 0              # attempts started so far
        self.attempt_records = []     # one dict per failed attempt
        self.degradations = []        # policy actions taken
        self.checkpoint = None        # latest resume payload
        self.cycles = 0               # cycle position of that payload
        self.result = None            # set on completion
        self.failure = None           # JobFailure dict on quarantine
        self.flight = []              # last reported flight recording
        self.next_eligible = 0.0      # monotonic dispatch-not-before
        self.cancel_requested = False
        self.error = None             # last in-worker error message
        self.submitted = time.time()


def _pick_context(start_method=None):
    """Fork when the platform has it (workers inherit loaded modules
    for free); spawn otherwise.  ``worker_main`` is module-level, so
    both work."""
    methods = multiprocessing.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


class Supervisor:
    """A supervised simulation worker pool.

    ``workers`` fixes the pool size (dead workers are replaced, never
    mourned); ``cache_dir`` is the shared simulation-table cache
    directory handed to every worker; ``policy`` a
    :class:`~repro.service.job.ServicePolicy`; ``tenants`` maps tenant
    name to :class:`~repro.service.job.TenantBudget` (absent tenants
    are unmetered).  Usable as a context manager::

        with Supervisor(workers=4, cache_dir=cache) as pool:
            job = pool.submit(spec)
            pool.drain(timeout=120)
            result = pool.result(job)
    """

    def __init__(self, workers=2, cache_dir=None, policy=None,
                 tenants=None, start_method=None):
        if workers < 1:
            raise ServiceError("a pool needs at least one worker")
        self.policy = policy if policy is not None else ServicePolicy()
        self.cache_dir = cache_dir
        self.metrics = MetricsRegistry()
        self._tenants = dict(tenants) if tenants else {}
        self._tenant_cycles = {}
        self._ctx = _pick_context(start_method)
        self._lock = threading.RLock()
        self._jobs = {}
        self._order = []              # job ids in submit order (FIFO)
        self._workers = []
        self._ids = itertools.count(1)
        self._worker_ids = itertools.count(1)
        self._closed = False
        for _ in range(workers):
            self._spawn_worker()

    # -- pool plumbing ------------------------------------------------------

    def _spawn_worker(self):
        worker_id = next(self._worker_ids)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, self.cache_dir),
            name="repro-worker-%d" % worker_id,
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only its own end
        worker = _Worker(worker_id, process, parent_conn)
        self._workers.append(worker)
        return worker

    def _kill_worker(self, worker, cause):
        """SIGKILL a worker we have given up on; the death is then
        handled uniformly through its sentinel."""
        worker.kill_cause = cause
        try:
            os.kill(worker.process.pid, signal.SIGKILL)
        except (OSError, TypeError):  # already gone
            pass

    # -- submission and queries ---------------------------------------------

    def submit(self, spec):
        """Queue a job; returns its id.

        ``spec`` is a :class:`~repro.service.job.JobSpec` or its dict
        form.  Raises
        :class:`~repro.support.errors.BudgetExceededError` when the
        tenant's admission budget rejects the job.
        """
        # always a private copy: degradation rewrites spec fields
        # (backend, kind) and must never mutate the caller's object
        spec = JobSpec.from_dict(
            spec.to_dict() if isinstance(spec, JobSpec) else spec
        )
        with self._lock:
            if self._closed:
                raise ServiceError("the supervisor is shut down")
            self._check_tenant_budget(spec)
            job_id = "job-%06d" % next(self._ids)
            self._jobs[job_id] = _Job(job_id, spec)
            self._order.append(job_id)
            self.metrics.inc("service.jobs_submitted")
            self.metrics.bump("service.tenant_jobs", spec.tenant)
            return job_id

    def _check_tenant_budget(self, spec):
        budget = self._tenants.get(spec.tenant)
        if budget is None:
            return
        if (budget.max_cycles_per_job is not None
                and spec.max_cycles > budget.max_cycles_per_job):
            raise BudgetExceededError(
                "tenant %r may run at most %d cycles per job (asked "
                "for %d)" % (spec.tenant, budget.max_cycles_per_job,
                             spec.max_cycles),
                tenant=spec.tenant, budget="max_cycles_per_job",
            )
        if budget.max_active_jobs is not None:
            active = sum(
                1 for job in self._jobs.values()
                if job.spec.tenant == spec.tenant
                and job.state not in TERMINAL_STATES
            )
            if active >= budget.max_active_jobs:
                raise BudgetExceededError(
                    "tenant %r already has %d active job(s) (limit %d)"
                    % (spec.tenant, active, budget.max_active_jobs),
                    tenant=spec.tenant, budget="max_active_jobs",
                )
        if budget.max_total_cycles is not None:
            used = self._tenant_cycles.get(spec.tenant, 0)
            if used >= budget.max_total_cycles:
                raise BudgetExceededError(
                    "tenant %r has consumed %d simulated cycles "
                    "(lifetime limit %d)"
                    % (spec.tenant, used, budget.max_total_cycles),
                    tenant=spec.tenant, budget="max_total_cycles",
                )

    def _job(self, job_id):
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError("unknown job %r" % job_id)
        return job

    def status(self, job_id):
        """The job's current state as a JSON-compatible dict."""
        with self._lock:
            job = self._job(job_id)
            return {
                "job": job.id,
                "name": job.spec.name,
                "tenant": job.spec.tenant,
                "state": job.state,
                "attempt": job.attempt,
                "attempts": list(job.attempt_records),
                "degradations": list(job.degradations),
                "kind": job.spec.kind,
                "backend": job.spec.backend,
                "tiering": job.spec.tiering,
                "cycles": job.cycles,
                "cause": (job.failure or {}).get("cause"),
                "error": job.error,
            }

    def result(self, job_id):
        """The completed job's result payload.

        Raises :class:`ServiceError` unless the job completed; a
        quarantined job's error surfaces in the message.
        """
        with self._lock:
            job = self._job(job_id)
            if job.state == JOB_COMPLETED:
                payload = dict(job.result)
                payload["job"] = job.id
                payload["state"] = job.state
                payload["degradations"] = list(job.degradations)
                return payload
            if job.state == JOB_FAILED:
                raise ServiceError(
                    "job %s was quarantined (%s): %s"
                    % (job.id, (job.failure or {}).get("cause"),
                       job.error)
                )
            raise ServiceError(
                "job %s has no result (state: %s)" % (job.id, job.state)
            )

    def failure(self, job_id):
        """The quarantined job's :class:`JobFailure` report dict, or
        ``None`` while the job is not failed."""
        with self._lock:
            return self._job(job_id).failure

    def cancel(self, job_id):
        """Cancel a job: immediately when pending, by killing its
        worker when running; terminal jobs are left untouched."""
        with self._lock:
            job = self._job(job_id)
            if job.state in TERMINAL_STATES:
                return self.status(job_id)
            job.cancel_requested = True
            if job.state == JOB_PENDING:
                job.state = JOB_CANCELLED
                self.metrics.inc("service.jobs_cancelled")
            elif job.state == JOB_RUNNING:
                for worker in self._workers:
                    if worker.job == job.id:
                        self._kill_worker(worker, "cancelled")
                        break
            return self.status(job_id)

    def jobs(self):
        """``[(job_id, state), ...]`` in submission order."""
        with self._lock:
            return [(jid, self._jobs[jid].state) for jid in self._order]

    def metrics_snapshot(self):
        with self._lock:
            return self.metrics.snapshot()

    # -- the event loop -----------------------------------------------------

    def pump(self, timeout=0.05):
        """One event-loop turn: dispatch, wait, handle.  Returns the
        number of worker events handled (0 on a quiet turn)."""
        with self._lock:
            self._enforce_heartbeats()
            self._dispatch()
            waitables = {}
            for worker in self._workers:
                waitables[worker.conn] = worker
                waitables[worker.process.sentinel] = worker
        if not waitables:
            time.sleep(timeout)
            return 0
        ready = _mp_wait(list(waitables), timeout)
        handled = 0
        with self._lock:
            for obj in ready:
                worker = waitables.get(obj)
                if worker is None or worker not in self._workers:
                    continue  # replaced while we were waiting
                handled += 1
                if obj is worker.process.sentinel:
                    self._on_worker_death(worker)
                else:
                    self._drain_conn(worker)
            self._dispatch()
        return handled

    def drain(self, timeout=None, poll=0.05):
        """Pump until every submitted job is terminal.

        Raises :class:`ServiceError` if ``timeout`` (seconds) elapses
        first -- the bounded-time guarantee chaos tests lean on.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            with self._lock:
                if all(job.state in TERMINAL_STATES
                       for job in self._jobs.values()):
                    return
            if deadline is not None and time.monotonic() > deadline:
                with self._lock:
                    stuck = sorted(
                        jid for jid, job in self._jobs.items()
                        if job.state not in TERMINAL_STATES
                    )
                raise ServiceError(
                    "drain timed out after %gs with %d job(s) "
                    "unfinished: %s"
                    % (timeout, len(stuck), ", ".join(stuck))
                )
            self.pump(poll)

    def wait(self, job_id, timeout=None, poll=0.05):
        """Pump until one job is terminal; returns its status dict."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            with self._lock:
                job = self._job(job_id)
                if job.state in TERMINAL_STATES:
                    return self.status(job_id)
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    "job %s still %s after %gs"
                    % (job_id, self.status(job_id)["state"], timeout)
                )
            self.pump(poll)

    # -- event handling (lock held) ----------------------------------------

    def _dispatch(self):
        now = time.monotonic()
        for worker in self._workers:
            if worker.job is not None:
                continue
            job = self._next_eligible(now)
            if job is None:
                return
            job.attempt += 1
            job.state = JOB_RUNNING
            worker.job = job.id
            worker.last_beat = now
            try:
                worker.conn.send({
                    "type": "job",
                    "job": job.id,
                    "attempt": job.attempt,
                    "spec": job.spec.to_dict(),
                    "checkpoint": job.checkpoint,
                })
            except (BrokenPipeError, OSError):
                # the worker died between polls; give the attempt back
                # and let the sentinel path replace the worker
                job.attempt -= 1
                job.state = JOB_PENDING
                worker.job = None

    def _next_eligible(self, now):
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state == JOB_PENDING and job.next_eligible <= now:
                return job
        return None

    def _enforce_heartbeats(self):
        limit = self.policy.heartbeat_timeout
        if limit is None:
            return
        now = time.monotonic()
        for worker in self._workers:
            if (worker.job is not None and worker.kill_cause is None
                    and now - worker.last_beat > limit):
                self._kill_worker(worker, "heartbeat_timeout")

    def _drain_conn(self, worker):
        while True:
            try:
                if not worker.conn.poll():
                    return
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._on_worker_death(worker)
                return
            self._on_message(worker, message)

    def _on_message(self, worker, message):
        worker.last_beat = time.monotonic()
        kind = message.get("type")
        job = self._jobs.get(message.get("job", ""))
        if job is None or worker.job != job.id:
            return  # stale message from a cancelled/replaced attempt
        if kind == "started":
            self.metrics.inc("service.attempts_started")
        elif kind == "checkpoint":
            job.checkpoint = message["payload"]
            job.cycles = message["cycles"]
            self.metrics.inc("service.heartbeats")
        elif kind == "result":
            self._on_result(worker, job, message)
        elif kind == "error":
            self._on_error(worker, job, message)

    def _on_result(self, worker, job, message):
        worker.job = None
        job.state = JOB_COMPLETED
        job.result = {
            "stats": message.get("stats", {}),
            "memory": message.get("memory", []),
            "metrics": message.get("metrics", {}),
            "cache_stats": message.get("cache_stats", {}),
            "attempt": message.get("attempt", job.attempt),
        }
        job.cycles = job.result["stats"].get("cycles", job.cycles)
        tenant = job.spec.tenant
        self._tenant_cycles[tenant] = (
            self._tenant_cycles.get(tenant, 0)
            + int(job.result["stats"].get("cycles") or 0)
        )
        self.metrics.inc("service.jobs_completed")
        self._fold_worker_metrics(job.result["metrics"])
        for key, value in job.result["cache_stats"].items():
            self.metrics.bump("service.cache", key, value)
        if job.cancel_requested:
            # the kill raced the result; the result wins
            job.cancel_requested = False

    def _on_error(self, worker, job, message):
        worker.job = None
        job.error = "%s: %s" % (message.get("error"),
                                message.get("message"))
        job.flight = message.get("flight") or []
        if message.get("checkpoint"):
            job.checkpoint = message["checkpoint"]
            job.cycles = message["checkpoint"].get("cycles", job.cycles)
        for key, value in (message.get("cache_stats") or {}).items():
            self.metrics.bump("service.cache", key, value)
        if job.cancel_requested:
            job.state = JOB_CANCELLED
            self.metrics.inc("service.jobs_cancelled")
            return
        category = message.get("category")
        detail = {
            "category": category,
            "error": message.get("error"),
            "message": message.get("message"),
            "cycles": message.get("cycles"),
            "worker": worker.id,
        }
        if category == "timeout":
            if message.get("budget") == "wall":
                # per-attempt wall budget: resurrect from checkpoint
                self._attempt_failed(job, "wall_timeout", detail)
            else:
                # the job's own cycle budget: deterministic, final
                self._quarantine(job, "cycle_budget_exhausted", detail)
        elif category in ("compile", "stale_table"):
            self._attempt_failed(job, "compile_fault", detail,
                                 retry_only_if_degraded=True)
        else:
            # decode/simulation/checkpoint/internal errors are
            # deterministic -- a retry would fail identically
            self._quarantine(job, "%s_error" % category, detail)

    def _on_worker_death(self, worker):
        if worker not in self._workers:
            return
        # a killed worker may have spoken its last words already
        try:
            while worker.conn.poll():
                self._on_message(worker, worker.conn.recv())
        except (EOFError, OSError):
            pass
        self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=5.0)
        exitcode = worker.process.exitcode
        self.metrics.inc("service.worker_deaths")
        self.metrics.bump("service.worker_exit", str(exitcode))
        if not self._closed:
            self._spawn_worker()
        job = self._jobs.get(worker.job) if worker.job else None
        if job is None or job.state != JOB_RUNNING:
            return
        if job.cancel_requested or worker.kill_cause == "cancelled":
            job.state = JOB_CANCELLED
            self.metrics.inc("service.jobs_cancelled")
            return
        cause = worker.kill_cause or "worker_crash"
        self._attempt_failed(job, cause, {
            "worker": worker.id,
            "exitcode": exitcode,
            "cycles": job.cycles,
        })

    # -- failure policy (lock held) ----------------------------------------

    def _attempt_failed(self, job, cause, detail,
                        retry_only_if_degraded=False):
        job.attempt_records.append(
            {"attempt": job.attempt, "cause": cause, **detail}
        )
        degraded = self._maybe_degrade(job, cause)
        if retry_only_if_degraded and not degraded:
            return self._quarantine(job, cause, detail)
        if job.attempt >= self.policy.max_retries + 1:
            return self._quarantine(job, cause, detail)
        delay = min(
            self.policy.backoff_cap,
            self.policy.backoff_base * (2 ** max(job.attempt - 1, 0)),
        )
        job.state = JOB_PENDING
        job.next_eligible = time.monotonic() + delay
        self.metrics.inc("service.retries")

    def _maybe_degrade(self, job, cause):
        spec = job.spec
        policy = self.policy
        if (cause in CRASH_CAUSES and policy.degrade_native
                and spec.backend == "native"):
            spec.backend = "python"
            action = {
                "attempt": job.attempt, "action": "backend",
                "from": "native", "to": "python", "cause": cause,
            }
            job.degradations.append(action)
            self.metrics.bump("service.degradations", "native_to_python")
            return True
        if (cause == "compile_fault" and policy.degrade_compile
                and spec.kind not in ("interpretive", "predecoded")):
            action = {
                "attempt": job.attempt, "action": "kind",
                "from": spec.kind, "to": "interpretive", "cause": cause,
            }
            spec.kind = "interpretive"
            spec.backend = "auto"   # untabled kinds take no backend
            spec.tiering = "off"    # ... and no tiering
            job.degradations.append(action)
            self.metrics.bump(
                "service.degradations", "compile_to_interpretive"
            )
            return True
        return False

    def _quarantine(self, job, cause, detail=None):
        if detail is not None and (not job.attempt_records
                                   or job.attempt_records[-1].get(
                                       "attempt") != job.attempt):
            job.attempt_records.append(
                {"attempt": job.attempt, "cause": cause, **detail}
            )
        job.state = JOB_FAILED
        failure = JobFailure(
            job_id=job.id,
            name=job.spec.name,
            tenant=job.spec.tenant,
            cause=cause,
            attempts=list(job.attempt_records),
            degradations=list(job.degradations),
            flight=list(job.flight),
            spec=spec_summary(job.spec),
        )
        job.failure = failure.to_dict()
        self.metrics.inc("service.jobs_quarantined")
        if self.policy.report_dir:
            try:
                failure.save(self.policy.report_dir)
            except OSError:
                pass  # an unwritable report dir must not wedge the pool

    def _fold_worker_metrics(self, snapshot):
        """Accumulate a worker's counters/families into the pool
        registry (gauges and histograms are per-run and stay with the
        job result)."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.metrics.inc(name, value)
        for family, bucket in (snapshot.get("families") or {}).items():
            for key, value in bucket.items():
                self.metrics.bump(family, key, value)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, timeout=5.0):
        """Stop every worker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send({"type": "stop"})
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for worker in workers:
            worker.process.join(
                timeout=max(0.0, deadline - time.monotonic())
            )
            if worker.process.is_alive():
                self._kill_worker(worker, "shutdown")
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False
