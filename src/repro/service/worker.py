"""The worker process: runs one job at a time, streams progress back.

A worker is a long-lived child process holding one end of a duplex
pipe.  It loops receiving ``job`` messages, runs each under the
existing :class:`repro.resilience.watchdog.RunBudget` machinery with
periodic autosnapshots, and reports back with a small message
vocabulary:

``started``
    The job message was received; carries the worker pid and attempt.
``checkpoint``
    One autosnapshot (``checkpoint_every`` cadence); carries the full
    resumable payload.  Doubles as the heartbeat -- a worker making
    progress is never silent for long.
``result``
    The job halted; carries run statistics, the requested memory
    dumps, the worker's :mod:`repro.obs` metrics snapshot and the
    shared-cache statistics.
``error``
    The job failed *in process* (timeout, compile fault, simulation
    error); carries a category the supervisor's degradation policy
    dispatches on, the flight recording, and -- for timeouts -- the
    resume checkpoint.

A worker that dies without a word (SIGKILL, native crash) is detected
by the supervisor through its process sentinel; that path deliberately
has no code here -- it must work when no code can run.
"""

from __future__ import annotations

import os
import signal

from repro.support.errors import (
    CheckpointError,
    DecodeError,
    ReproError,
    SimulationTimeout,
    StaleTableError,
)


def _resolve_model(spec_model):
    from repro.api import compile_lisa_file, list_models, load_model

    if spec_model in list_models():
        return load_model(spec_model)
    return compile_lisa_file(spec_model)


def classify_error(exc, phase):
    """Map an in-worker exception to a degradation-policy category."""
    if isinstance(exc, SimulationTimeout):
        return "timeout"
    if isinstance(exc, StaleTableError):
        return "stale_table"
    if isinstance(exc, CheckpointError):
        return "checkpoint"
    if isinstance(exc, DecodeError):
        return "decode"
    if phase == "load":
        return "compile"
    return "simulation"


def _dump_memory(state, dumps):
    """The requested ``(memory, base, length)`` windows as JSON-safe
    ``[memory, base, [values...]]`` rows."""
    rows = []
    for memory, base, length in dumps:
        values = [
            state.read_memory(memory, base + offset)
            for offset in range(length)
        ]
        rows.append([memory, base, values])
    return rows


def run_job(conn, message, cache_dir):
    """Run one job message to a ``result``/``error`` reply on ``conn``."""
    from repro import obs
    from repro.resilience.checkpoint import Checkpoint
    from repro.resilience.faults import FaultInjector
    from repro.resilience.watchdog import RunBudget
    from repro.service.job import JobSpec
    from repro.sim import create_simulator
    from repro.tools.objfile import Program

    spec = JobSpec.from_dict(message["spec"])
    job_id = message["job"]
    attempt = int(message.get("attempt", 1))
    observer = obs.Observer(mode=obs.COUNTERS_MODE, record=False)
    recorder = observer.enable_flight_recorder(128)
    conn.send({
        "type": "started", "job": job_id, "attempt": attempt,
        "pid": os.getpid(),
    })
    phase = "load"
    cache = None
    try:
        model = _resolve_model(spec.model)
        program = Program.from_dict(spec.program)
        if cache_dir:
            from repro.simcc.cache import SimulationCache

            cache = SimulationCache(cache_dir)
        simulator = create_simulator(
            model, spec.kind, cache=cache, observer=observer,
            on_self_modify=(spec.on_self_modify
                            if spec.on_self_modify != "off" else None),
            backend=spec.backend, tiering=spec.tiering,
        )
        simulator.load_program(program)
        resume_cycles = 0
        if message.get("checkpoint"):
            snapshot = Checkpoint.from_payload(message["checkpoint"])
            simulator.restore(snapshot)
            resume_cycles = snapshot.cycles
        phase = "run"
        # a beat between the (potentially slow) load and the first
        # autosnapshot, so model compilation never reads as a wedge
        conn.send({"type": "progress", "job": job_id, "phase": "loaded"})
        budget = RunBudget(
            max_wall_seconds=spec.max_wall_seconds,
            checkpoint_every=spec.checkpoint_every,
            check_interval=4_096,
        )

        def on_checkpoint(snapshot):
            conn.send({
                "type": "checkpoint", "job": job_id,
                "cycles": snapshot.cycles,
                "payload": snapshot.to_payload(),
            })

        if spec.fault_plan:
            injector = FaultInjector(observer)
            plan = injector.compile_plan(
                spec.fault_plan, attempt=attempt,
                resume_cycles=resume_cycles,
            )
            stats = injector.run_with_faults(
                simulator, plan, max_cycles=spec.max_cycles,
                budget=budget, on_checkpoint=on_checkpoint,
            )
        else:
            stats = simulator.run(
                spec.max_cycles, budget=budget,
                on_checkpoint=on_checkpoint,
            )
        conn.send({
            "type": "result", "job": job_id, "attempt": attempt,
            "stats": stats.to_dict(),
            "memory": _dump_memory(simulator.state, spec.dumps),
            "metrics": observer.snapshot(),
            "cache_stats": dict(cache.stats) if cache is not None else {},
        })
    except ReproError as exc:
        checkpoint = getattr(exc, "checkpoint", None)
        conn.send({
            "type": "error", "job": job_id, "attempt": attempt,
            "phase": phase,
            "category": classify_error(exc, phase),
            "error": type(exc).__name__,
            "message": str(exc),
            "budget": getattr(exc, "budget", None),
            "cycles": getattr(exc, "cycles", None),
            "checkpoint": (checkpoint.to_payload()
                           if checkpoint is not None else None),
            "flight": recorder.snapshot(),
            "cache_stats": dict(cache.stats) if cache is not None else {},
        })
    except Exception as exc:  # never take the worker loop down on a job
        conn.send({
            "type": "error", "job": job_id, "attempt": attempt,
            "phase": phase, "category": "internal",
            "error": type(exc).__name__, "message": str(exc),
            "cycles": None, "checkpoint": None,
            "flight": recorder.snapshot(),
            "cache_stats": {},
        })


def worker_main(conn, worker_id, cache_dir=None):
    """The worker process entry point: serve jobs until told to stop.

    SIGINT is ignored so an interactive Ctrl-C reaches only the
    supervisor, which then shuts the pool down deliberately.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message.get("type")
            if kind == "stop":
                break
            if kind == "job":
                try:
                    run_job(conn, message, cache_dir)
                except (BrokenPipeError, OSError):
                    break  # supervisor went away mid-report
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
