"""Simulators, from fully interpretive to fully compiled.

========== ===== ======================= ===============================
kind       level decode / sequence       behaviour execution
========== ===== ======================= ===============================
interpretive  -- every fetch, run-time   AST interpretation, run-time
                                         variant resolution
predecoded    1  decode at load,         AST interpretation,
                 sequencing per fetch    cached variants
compiled      2  simulation table built  AST interpretation with
                 at load (dynamic        pre-bound operands
                 scheduling)
static        2  simulation table +      as ``compiled``, steady-state
                 statically scheduled    columns composed at run-start
                 columns
unfolded      3  simulation table with   generated Python per program
                 operation instantiation instruction, operands folded
unfolded_static  3+static: columns are additionally fused into single
                 generated functions (full simulation-loop unfolding)
========== ===== ======================= ===============================
"""

from repro.sim.base import Simulator
from repro.sim.interpretive import InterpretiveSimulator
from repro.sim.predecoded import PredecodedSimulator
from repro.sim.compiled import CompiledSimulator
from repro.sim.static import StaticScheduledSimulator
from repro.support.errors import ReproError

SIM_KINDS = (
    "interpretive",
    "predecoded",
    "compiled",
    "static",
    "unfolded",
    "unfolded_static",
)

#: Execution backends for the table-based kinds.  ``auto``/``python``
#: run the in-process exec backend; ``module`` forces the portable-table
#: (emitted-module) path; ``native`` additionally compiles proven
#: packets to C and bursts whole pipeline windows per call, falling
#: back to ``module`` behaviour (with one ``native.fallback`` event)
#: when no C toolchain is available.
SIM_BACKENDS = ("auto", "python", "module", "native")


def create_simulator(model, kind="compiled", cache=None, jobs=None,
                     verify_schedule=False, observer=None,
                     on_self_modify=None, backend="auto", tiering="off"):
    """Instantiate a simulator of the given ``kind`` for ``model``.

    ``cache`` (a :class:`repro.simcc.cache.SimulationCache`) and
    ``jobs`` tune load-time simulation compilation and only apply to
    the table-based kinds; the interpretive and predecoded simulators
    do no load-time compilation and ignore them.  ``verify_schedule``
    (static kinds only) raises :class:`repro.support.errors.
    SimulationError` instead of falling back to dynamic scheduling when
    a pipeline window is not proven hazard-free.  ``observer`` (a
    :class:`repro.obs.Observer`) enables trace events, phase spans and
    metrics for this simulator; omitted, the process-wide observer
    installed via :func:`repro.obs.install` applies.  ``on_self_modify``
    arms the program-memory write guard with the given degradation
    policy -- ``"error"``, ``"recompile"`` or ``"interpret"`` (see
    :mod:`repro.resilience.guard`); ``None``/``"off"`` runs unguarded.
    ``backend`` (table-based kinds only) selects the execution backend
    (see :data:`SIM_BACKENDS`); ``native`` degrades gracefully to the
    Python path when no C compiler is available -- it never errors.
    ``tiering`` (table-based kinds, non-native backends) enables
    adaptive tiered execution -- ``"auto"`` or ``"aggressive"`` (or a
    :class:`repro.sim.tiering.TierPolicy`) promotes profile-hot windows
    to richer representations mid-run; see :mod:`repro.sim.tiering`.
    """
    if backend not in SIM_BACKENDS:
        raise ReproError(
            "unknown simulation backend %r (expected one of %s)"
            % (backend, ", ".join(SIM_BACKENDS))
        )
    tiering_on = tiering not in (None, "off")
    if tiering_on:
        from repro.sim.tiering import TIERING_MODES, TierPolicy

        if (not isinstance(tiering, TierPolicy)
                and tiering not in TIERING_MODES):
            raise ReproError(
                "unknown tiering mode %r (choose from %s)"
                % (tiering, ", ".join(TIERING_MODES))
            )
        if kind in ("interpretive", "predecoded"):
            raise ReproError(
                "tiering requires a table-based simulator kind "
                "(compiled, static, unfolded or unfolded_static)"
            )
        if backend == "native":
            raise ReproError(
                "tiering and backend='native' are mutually exclusive: "
                "the native backend compiles everything eagerly, "
                "tiering promotes hot windows lazily"
            )
    else:
        tiering = "off"
    if kind in ("interpretive", "predecoded"):
        if backend not in ("auto", "python"):
            raise ReproError(
                "backend %r requires a table-based simulator kind "
                "(compiled, static, unfolded or unfolded_static)"
                % backend
            )
        if kind == "interpretive":
            simulator = InterpretiveSimulator(model, observer=observer)
        else:
            simulator = PredecodedSimulator(model, observer=observer)
    elif kind == "compiled":
        simulator = CompiledSimulator(model, level="sequenced",
                                      cache=cache, jobs=jobs,
                                      observer=observer, backend=backend,
                                      tiering=tiering)
    elif kind == "unfolded":
        simulator = CompiledSimulator(model, level="instantiated",
                                      cache=cache, jobs=jobs,
                                      observer=observer, backend=backend,
                                      tiering=tiering)
    elif kind == "static":
        simulator = StaticScheduledSimulator(model, level="sequenced",
                                             cache=cache, jobs=jobs,
                                             verify_schedule=verify_schedule,
                                             observer=observer,
                                             backend=backend,
                                             tiering=tiering)
    elif kind == "unfolded_static":
        simulator = StaticScheduledSimulator(model, level="instantiated",
                                             cache=cache, jobs=jobs,
                                             verify_schedule=verify_schedule,
                                             observer=observer,
                                             backend=backend,
                                             tiering=tiering)
    else:
        raise ReproError(
            "unknown simulator kind %r (expected one of %s)"
            % (kind, ", ".join(SIM_KINDS))
        )
    if on_self_modify not in (None, "off"):
        simulator.enable_write_guard(on_self_modify)
    return simulator


__all__ = [
    "SIM_KINDS",
    "SIM_BACKENDS",
    "create_simulator",
    "Simulator",
    "InterpretiveSimulator",
    "PredecodedSimulator",
    "CompiledSimulator",
    "StaticScheduledSimulator",
]
