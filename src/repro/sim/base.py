"""Common simulator shell: state, control, program loading, statistics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.control import PipelineControl
from repro.machine.state import ProcessorState
from repro.support.errors import SimulationError


@dataclass(frozen=True)
class SimulationStats:
    """Summary of one simulation run."""

    cycles: int
    instructions: int

    @property
    def cpi(self):
        if self.instructions == 0:
            return float("inf")
        return self.cycles / self.instructions


class Simulator:
    """Base class for all simulator kinds.

    Subclasses implement :meth:`_build_engine`, returning an object with
    ``step()``, ``run(max_cycles)``, ``cycles``, ``instructions_retired``
    and ``drained`` (either :class:`repro.machine.Pipeline` or the static
    driver).
    """

    kind = "abstract"

    def __init__(self, model):
        self.model = model
        self.state = ProcessorState(model)
        self.control = PipelineControl()
        self.program = None
        self._engine = None

    # -- lifecycle -----------------------------------------------------------

    def load_program(self, program):
        """Load ``program`` and prepare the simulation engine.

        For compiled simulators this is where simulation compilation
        happens (decode, sequencing, instantiation); time it to measure
        the paper's "compilation speed" (its Figure 6).
        """
        self.state.reset()
        self.control.reset()
        program.load_into(self.state)
        self.program = program
        self._engine = self._build_engine(program)
        return self

    def reset(self):
        """Reset state and reload the current program."""
        if self.program is None:
            raise SimulationError("no program loaded")
        self.load_program(self.program)

    def _build_engine(self, program):
        raise NotImplementedError

    @property
    def engine(self):
        if self._engine is None:
            raise SimulationError("no program loaded")
        return self._engine

    # -- running ---------------------------------------------------------------

    def step(self):
        """Simulate a single cycle."""
        self.engine.step()

    def run(self, max_cycles=50_000_000):
        """Run to completion; returns :class:`SimulationStats`."""
        self.engine.run(max_cycles)
        return self.stats

    def run_until(self, predicate, max_cycles=50_000_000):
        """Step until ``predicate(self)`` is true or the program halts.

        The debugger primitive: breakpoints, watchpoints and state
        conditions are all predicates.  Returns True when the predicate
        fired, False when the program halted first.
        """
        engine = self.engine
        for _ in range(max_cycles):
            if predicate(self):
                return True
            if self.halted:
                return False
            engine.step()
        raise SimulationError(
            "run_until exceeded %d cycles" % max_cycles
        )

    def run_to_pc(self, pc, max_cycles=50_000_000):
        """Run until the next fetch address reaches ``pc`` (breakpoint).

        Note this triggers when the *fetch* PC reaches the address --
        before the instruction there has executed, like a hardware
        breakpoint.
        """
        return self.run_until(
            lambda sim: sim.state.pc == pc, max_cycles
        )

    @property
    def cycles(self):
        return self.engine.cycles

    @property
    def stats(self):
        return SimulationStats(
            cycles=self.engine.cycles,
            instructions=self.engine.instructions_retired,
        )

    @property
    def halted(self):
        return self.control.halted and self.engine.drained
