"""Common simulator shell: state, control, program loading, statistics."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro import obs as _obs
from repro.machine.control import PipelineControl
from repro.machine.state import ProcessorState
from repro.support.errors import (
    ReproError,
    SimulationError,
    SimulationTimeout,
    annotate_simulation_error,
)


@dataclass(frozen=True)
class SimulationStats:
    """Summary of one simulation run.

    ``wall_seconds`` is the host wall-clock time accumulated inside
    :meth:`Simulator.run` (load-time simulation compilation is *not*
    included, matching the paper's split between its Figures 6 and 7).
    """

    cycles: int
    instructions: int
    wall_seconds: float = 0.0

    @property
    def cpi(self):
        """Cycles per instruction; NaN for a run that retired nothing."""
        if self.instructions == 0:
            return float("nan")
        return self.cycles / self.instructions

    @property
    def simulated_cycles_per_second(self):
        """Simulated cycles per host second (the paper's Figure 7 axis);
        NaN when no wall time was recorded."""
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.cycles / self.wall_seconds

    def to_dict(self):
        """JSON-compatible rendering (NaN becomes None)."""

        def _finite(value):
            return value if math.isfinite(value) else None

        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "wall_seconds": self.wall_seconds,
            "cpi": _finite(self.cpi),
            "simulated_cycles_per_second": _finite(
                self.simulated_cycles_per_second
            ),
        }


class Simulator:
    """Base class for all simulator kinds.

    Subclasses implement :meth:`_build_engine`, returning an object with
    ``step()``, ``run(max_cycles)``, ``cycles``, ``instructions_retired``
    and ``drained`` (either :class:`repro.machine.Pipeline` or the static
    driver).

    ``observer`` (a :class:`repro.obs.Observer`) wires the simulator
    into the observability layer: the engines emit per-cycle trace
    events, pipeline control emits stall/flush/halt events, load-time
    simulation compilation records phase spans, and :meth:`run`
    snapshots run-level metrics.  When omitted, the process-wide
    observer installed via :func:`repro.obs.install` applies; with
    neither, every hook site short-circuits on a ``None`` check and the
    pipeline drivers run their unhooked step functions.
    """

    kind = "abstract"

    def __init__(self, model, observer=None):
        self.model = model
        self.state = ProcessorState(model)
        self.control = PipelineControl()
        self.program = None
        self._engine = None
        self._wall_seconds = 0.0
        self._guard_policy = None
        self.guard = None
        self.observer = (
            observer if observer is not None else _obs.get_observer()
        )
        self._wire_observer()

    # -- observability ---------------------------------------------------------

    def _wire_observer(self):
        self.state._obs = self.observer
        self.control.observer = self.observer

    def attach_observer(self, observer):
        """Attach (or detach, with None) an observer; may be called
        before or after :meth:`load_program`."""
        self.observer = observer
        self._wire_observer()
        if self._engine is not None:
            self._engine.set_observer(observer)
        return observer

    def _attach_flight_recording(self, exc):
        """Pin the observer's flight-recorder ring to a failing run's
        exception (``exc.flight_recording``) for post-mortems."""
        observer = self.observer
        if observer is None:
            return exc
        recorder_of = getattr(observer, "flight_recorder", None)
        recorder = recorder_of() if callable(recorder_of) else None
        if recorder is not None:
            exc.flight_recording = recorder.snapshot()
        return exc

    # -- lifecycle -----------------------------------------------------------

    def load_program(self, program):
        """Load ``program`` and prepare the simulation engine.

        For compiled simulators this is where simulation compilation
        happens (decode, sequencing, instantiation); the ``sim.load``
        span (with the compile-phase spans nested inside) makes the
        paper's "compilation speed" (its Figure 6) a built-in
        measurement.
        """
        observer = self.observer
        with _obs.span(
            observer, "sim.load", kind=self.kind,
            program=getattr(program, "name", None),
        ):
            self.state.reset()
            self.control.reset()
            program.load_into(self.state)
            self.program = program
            self._engine = self._build_engine(program)
            if observer is not None:
                self._engine.set_observer(observer)
            self.guard = None
            if self._guard_policy is not None:
                self._arm_guard()
        self._wall_seconds = 0.0
        return self

    def reset(self):
        """Reset state and reload the current program."""
        if self.program is None:
            raise SimulationError("no program loaded")
        self.load_program(self.program)

    def _build_engine(self, program):
        raise NotImplementedError

    @property
    def engine(self):
        if self._engine is None:
            raise SimulationError("no program loaded")
        return self._engine

    @property
    def tier_manager(self):
        """The :class:`repro.sim.tiering.TierManager` steering adaptive
        tiered execution, or None when tiering is off (or no program is
        loaded yet)."""
        return getattr(self._engine, "manager", None)

    # -- resilience: write guard ----------------------------------------------

    def enable_write_guard(self, policy):
        """Watch stores into program memory; degrade per ``policy``.

        ``policy`` is ``"error"``, ``"recompile"`` or ``"interpret"``
        (see :mod:`repro.resilience.guard`); ``None``/``"off"`` disarms.
        May be called before or after :meth:`load_program` -- the guard
        is (re)armed on every program load.  Returns the armed
        :class:`~repro.resilience.guard.ProgramMemoryGuard` (or None
        when disarming).
        """
        if policy in (None, "off"):
            if self.guard is not None:
                self.guard.disarm()
            self._guard_policy = None
            self.guard = None
            return None
        from repro.resilience.guard import GUARD_POLICIES

        if policy not in GUARD_POLICIES:
            raise ReproError(
                "unknown self-modify policy %r (choose from %s)"
                % (policy, ", ".join(GUARD_POLICIES))
            )
        self._guard_policy = policy
        if self._engine is not None:
            self._arm_guard()
        return self.guard

    def _arm_guard(self):
        from repro.resilience.guard import ProgramMemoryGuard

        guard = ProgramMemoryGuard(self, self._guard_policy)
        self.guard = guard.attach(
            self._guard_target(self._engine), self._engine,
            elide=self._guard_store_proof(),
        )

    def _guard_store_proof(self):
        """Whether the absint store-reachability proofs license eliding
        the guard's fetch interposer.

        True only when this simulator runs a proof-carrying simulation
        table *and* no packet of it can element-store into program
        memory.  Kinds without a table (or tables without proofs --
        hand-built, legacy cache entries) answer False and keep the
        full interposer.
        """
        table = getattr(self, "table", None)
        if table is None:
            return False
        from repro.analysis import absint

        targets = absint.table_store_resources(table, self.model)
        if targets is None:
            return False
        return self.model.config.program_memory not in targets

    def _guard_target(self, engine):
        raise SimulationError(
            "simulator kind %r does not support the program-memory "
            "write guard" % self.kind
        )

    # -- resilience: checkpoint / restore --------------------------------------

    def checkpoint(self, auto=False):
        """Snapshot the run into a portable, resumable
        :class:`repro.resilience.checkpoint.Checkpoint`."""
        from repro.resilience.checkpoint import Checkpoint

        snapshot = Checkpoint.capture(self)
        if self.observer is not None:
            self.observer.on_checkpoint(
                snapshot.cycles, self.kind, auto=auto
            )
        return snapshot

    def restore(self, checkpoint):
        """Resume from a checkpoint (possibly taken under another kind).

        The currently loaded program and model must match the
        checkpoint's digests (:class:`repro.support.errors.CheckpointError`
        otherwise).  Architectural state is restored in place, pipeline
        control is re-established, and the in-flight window is re-fetched
        through this kind's own front-end -- so execution continues
        bit-exactly from the snapshot on *any* simulator kind.
        """
        engine = self.engine
        checkpoint.validate_for(self)
        guard = self.guard
        if guard is not None:
            guard.suspend()
        self.state.restore_snapshot(checkpoint.state)
        self.control.reset()
        self.control.halted = checkpoint.halted
        self.control.stall_cycles = checkpoint.stall_cycles
        if guard is not None:
            guard.resync()
        engine.restore_window(
            checkpoint.window, checkpoint.cycles, checkpoint.instructions
        )
        self._wall_seconds = checkpoint.wall_seconds
        if self.observer is not None:
            self.observer.on_restore(checkpoint.cycles, self.kind)
        return self

    # -- running ---------------------------------------------------------------

    def step(self):
        """Simulate a single cycle."""
        self.engine.step()

    def run(self, max_cycles=50_000_000, budget=None, on_checkpoint=None):
        """Run to completion; returns :class:`SimulationStats`.

        ``budget`` (a :class:`repro.resilience.watchdog.RunBudget`)
        additionally bounds the run by wall-clock time and/or cycles and
        can take periodic autosnapshots, delivered to ``on_checkpoint``.
        Budget exhaustion raises a typed
        :class:`repro.support.errors.SimulationTimeout` carrying the
        position and a checkpoint to :meth:`restore` from; any other
        mid-run :class:`ReproError` is annotated with the cycle count
        and fetch PC before propagating.
        """
        start = time.perf_counter()
        counted = False

        def _count():
            nonlocal counted
            if not counted:
                self._wall_seconds += time.perf_counter() - start
                counted = True

        engine = self.engine
        try:
            if budget is None:
                engine.run(max_cycles)
            else:
                from repro.resilience.watchdog import run_with_budget

                run_with_budget(
                    self, engine, max_cycles, budget, on_checkpoint
                )
        except SimulationTimeout as exc:
            _count()
            if exc.pc is None:
                exc.pc = self.state.pc
            if exc.checkpoint is None:
                try:
                    exc.checkpoint = self.checkpoint()
                except ReproError:
                    pass  # resumability is best-effort on a timeout
            if self.observer is not None:
                self.observer.on_timeout(exc.budget, exc.cycles, exc.limit)
            self._attach_flight_recording(exc)
            raise
        except ReproError as exc:
            _count()
            raise self._attach_flight_recording(annotate_simulation_error(
                exc, cycles=engine.cycles, pc=self.state.pc
            ))
        finally:
            _count()
        stats = self.stats
        if self.observer is not None:
            self.observer.finish_run(self, stats)
        return stats

    def run_until(self, predicate, max_cycles=50_000_000):
        """Step until ``predicate(self)`` is true or the program halts.

        The debugger primitive: breakpoints, watchpoints and state
        conditions are all predicates.  Returns True when the predicate
        fired, False when the program halted first.
        """
        engine = self.engine
        try:
            for _ in range(max_cycles):
                if predicate(self):
                    return True
                if self.halted:
                    return False
                engine.step()
        except ReproError as exc:
            raise self._attach_flight_recording(annotate_simulation_error(
                exc, cycles=engine.cycles, pc=self.state.pc
            ))
        timeout = SimulationTimeout(
            "run_until exceeded %d cycles" % max_cycles,
            budget="cycles", limit=max_cycles, cycles=engine.cycles,
            pc=self.state.pc,
        )
        try:
            timeout.checkpoint = self.checkpoint()
        except ReproError:
            pass
        if self.observer is not None:
            self.observer.on_timeout(
                timeout.budget, timeout.cycles, timeout.limit
            )
        self._attach_flight_recording(timeout)
        raise timeout

    def run_to_pc(self, pc, max_cycles=50_000_000):
        """Run until the next fetch address reaches ``pc`` (breakpoint).

        Note this triggers when the *fetch* PC reaches the address --
        before the instruction there has executed, like a hardware
        breakpoint.
        """
        return self.run_until(
            lambda sim: sim.state.pc == pc, max_cycles
        )

    @property
    def cycles(self):
        return self.engine.cycles

    @property
    def stats(self):
        return SimulationStats(
            cycles=self.engine.cycles,
            instructions=self.engine.instructions_retired,
            wall_seconds=self._wall_seconds,
        )

    @property
    def halted(self):
        return self.control.halted and self.engine.drained
