"""Levels 2 and 3 compiled simulation with dynamic scheduling.

The simulation compiler translates the loaded program into a simulation
table at load time; at run-time the front-end is a dictionary lookup and
the driver selects operations from the overlapping instructions in the
pipeline cycle by cycle -- the paper's *dynamic scheduling*.

``level="sequenced"`` (kind ``compiled``) reproduces exactly what the
paper implemented (steps 1+2); ``level="instantiated"`` (kind
``unfolded``) adds the announced third step, operation instantiation.
"""

from __future__ import annotations

from repro.machine.driver import Pipeline
from repro.sim.base import Simulator
from repro.simcc.generator import generate_simulation_compiler


def build_simulation_table(simulator, program):
    """Shared load-time table construction for the table-based kinds.

    The cache path always rehydrates a *portable* table; without a
    cache, the ``module``/``native`` backends also force the portable
    path (portable tables are what the emitted module and the native
    renderer consume), while ``auto``/``python`` compile directly.
    """
    if simulator._cache is not None:
        return simulator._cache.load_table(
            simulator._simcc, program, simulator.state, simulator.control,
            level=simulator._level, jobs=simulator._jobs,
            observer=simulator.observer,
        )
    if simulator.backend in ("module", "native"):
        portable = simulator._simcc.compile_portable(
            program, level=simulator._level, jobs=simulator._jobs,
            observer=simulator.observer,
        )
        return portable.bind(simulator.state, simulator.control)
    return simulator._simcc.compile(
        program, simulator.state, simulator.control,
        level=simulator._level, jobs=simulator._jobs,
        observer=simulator.observer,
    )


def maybe_wrap_native(simulator, engine):
    """Wrap ``engine`` for burst execution when backend is ``native``.

    Degrades silently (plus one ``native.fallback`` event) to the
    unwrapped engine when the native module cannot be built -- no C
    toolchain, an unmappable model, or no packet passing the analysis.

    When a profile/counters-mode observer is attached at load time, the
    module is built with in-burst telemetry so observed runs keep
    bursting (an observer attached *later* in those modes simply takes
    the per-cycle Python path until the program is reloaded).
    """
    if simulator.backend != "native":
        return engine
    from repro.simcc.native import NativePipeline, build_native_module

    observer = simulator.observer
    telemetry = (
        observer is not None
        and not getattr(observer, "wants_cycle_events", True)
    )
    module = build_native_module(
        simulator.model, simulator.table, cache=simulator._cache,
        observer=observer, telemetry=telemetry,
    )
    if module is None:
        return engine
    return NativePipeline(engine, simulator.state, simulator.control,
                          module)


def maybe_wrap_tiered(simulator, engine):
    """Wrap ``engine`` for adaptive tiering when the simulator asks.

    ``simulator.tiering`` is a mode string (``off``/``auto``/
    ``aggressive``) or a :class:`repro.sim.tiering.TierPolicy`; ``off``
    returns the engine unwrapped.
    """
    from repro.sim.tiering import TieredEngine, TierPolicy

    policy = TierPolicy.coerce(getattr(simulator, "tiering", "off"))
    if policy is None:
        return engine
    return TieredEngine(simulator, engine, policy)


class CompiledSimulator(Simulator):
    """Compiled simulator.

    ``cache`` accepts a :class:`repro.simcc.cache.SimulationCache`; when
    set, load-time simulation compilation is replaced by a cache lookup
    (compiling and storing on the first miss).  ``jobs`` fans a cold
    compile out over a worker pool (see :mod:`repro.simcc.parallel`).
    ``backend`` selects the execution backend (see
    :data:`repro.sim.SIM_BACKENDS`).  ``tiering`` enables adaptive
    tiered execution (see :mod:`repro.sim.tiering`): ``"auto"`` /
    ``"aggressive"`` (or a :class:`~repro.sim.tiering.TierPolicy`)
    promote profile-hot windows to richer representations mid-run.
    """

    def __init__(self, model, level="sequenced", cache=None, jobs=None,
                 observer=None, backend="auto", tiering="off"):
        super().__init__(model, observer=observer)
        self._level = level
        self._simcc = generate_simulation_compiler(model, validate=False)
        self._cache = cache
        self._jobs = jobs
        self.backend = backend
        self.tiering = tiering
        self.table = None

    @property
    def kind(self):
        return "compiled" if self._level == "sequenced" else "unfolded"

    @property
    def level(self):
        return self._level

    @property
    def cache(self):
        return self._cache

    def _guard_target(self, engine):
        from repro.resilience.guard import TableGuardTarget

        return TableGuardTarget(self, engine)

    def _build_engine(self, program):
        # Simulation compilation happens here, at load time.
        self.table = build_simulation_table(self, program)
        engine = Pipeline(
            self.model, self.state, self.control,
            self.table.make_frontend(self.model),
        )
        return maybe_wrap_tiered(self, maybe_wrap_native(self, engine))
