"""Levels 2 and 3 compiled simulation with dynamic scheduling.

The simulation compiler translates the loaded program into a simulation
table at load time; at run-time the front-end is a dictionary lookup and
the driver selects operations from the overlapping instructions in the
pipeline cycle by cycle -- the paper's *dynamic scheduling*.

``level="sequenced"`` (kind ``compiled``) reproduces exactly what the
paper implemented (steps 1+2); ``level="instantiated"`` (kind
``unfolded``) adds the announced third step, operation instantiation.
"""

from __future__ import annotations

from repro.machine.driver import Pipeline
from repro.sim.base import Simulator
from repro.simcc.generator import generate_simulation_compiler


class CompiledSimulator(Simulator):
    """Compiled simulator.

    ``cache`` accepts a :class:`repro.simcc.cache.SimulationCache`; when
    set, load-time simulation compilation is replaced by a cache lookup
    (compiling and storing on the first miss).  ``jobs`` fans a cold
    compile out over a worker pool (see :mod:`repro.simcc.parallel`).
    """

    def __init__(self, model, level="sequenced", cache=None, jobs=None,
                 observer=None):
        super().__init__(model, observer=observer)
        self._level = level
        self._simcc = generate_simulation_compiler(model, validate=False)
        self._cache = cache
        self._jobs = jobs
        self.table = None

    @property
    def kind(self):
        return "compiled" if self._level == "sequenced" else "unfolded"

    @property
    def level(self):
        return self._level

    @property
    def cache(self):
        return self._cache

    def _guard_target(self, engine):
        from repro.resilience.guard import TableGuardTarget

        return TableGuardTarget(self, engine)

    def _build_engine(self, program):
        # Simulation compilation happens here, at load time.
        if self._cache is not None:
            self.table = self._cache.load_table(
                self._simcc, program, self.state, self.control,
                level=self._level, jobs=self._jobs,
                observer=self.observer,
            )
        else:
            self.table = self._simcc.compile(
                program, self.state, self.control, level=self._level,
                jobs=self._jobs, observer=self.observer,
            )
        return Pipeline(
            self.model, self.state, self.control,
            self.table.make_frontend(self.model),
        )
