"""The interpretive reference simulator (the role of TI's sim62x).

Everything happens at run-time, on every single fetch: the instruction
words are read from simulated program memory, decoded through the coding
tree, IF/SWITCH variants are resolved, the per-stage operation schedule
is rebuilt and behaviours are executed by AST interpretation.  No
caching -- deliberately, because this simulator is the baseline against
which compiled simulation is measured.
"""

from __future__ import annotations

from functools import partial

from repro.behavior.evaluator import EvalContext, execute_behavior
from repro.coding.decoder import InstructionDecoder
from repro.machine.driver import IssueSlot, Pipeline, trap_slot
from repro.machine.schedule import build_schedule
from repro.sim.base import Simulator
from repro.machine.packets import packet_extent
from repro.support.errors import DecodeError


class InterpretiveSimulator(Simulator):
    kind = "interpretive"

    def __init__(self, model, observer=None):
        super().__init__(model, observer=observer)
        self._decoder = InstructionDecoder(model)
        self._depth = model.pipeline.depth
        self._pmem_name = model.config.program_memory
        self._pmem_size = model.memories[self._pmem_name].size

    def _guard_target(self, engine):
        from repro.resilience.guard import CoherentGuardTarget

        return CoherentGuardTarget(self, engine)

    def _build_engine(self, program):
        return Pipeline(
            self.model, self.state, self.control, self._fetch_decode
        )

    def _fetch_decode(self, pc):
        """Fetch, decode, schedule and bind -- all at run-time."""
        if pc < 0 or pc >= self._pmem_size:
            return trap_slot(
                self.model,
                "instruction fetch outside program memory (pc=0x%x)" % pc,
            )
        pmem = getattr(self.state, self._pmem_name)
        extent = packet_extent(
            self.model, pmem.__getitem__, pc, self._pmem_size
        )
        ctx = EvalContext(self.state, self.control, self.model)
        stages = [[] for _ in range(self._depth)]
        for address in range(pc, pc + extent):
            try:
                node = self._decoder.decode(pmem[address], address=address)
            except DecodeError as exc:
                return trap_slot(self.model, str(exc))
            for item in build_schedule(node, self.model):
                stages[item.stage].append(
                    partial(
                        execute_behavior, item.behavior.statements,
                        item.node, ctx,
                    )
                )
        return IssueSlot(
            ops_by_stage=tuple(tuple(stage) for stage in stages),
            words=extent,
            insn_count=extent,
        )
