"""Level-1 compiled simulation: compile-time decoding only.

The whole program is decoded once, when it is loaded (the paper's first
compiled-simulation step).  Operation sequencing still happens at
run-time: on every fetch the per-stage schedule is rebuilt from the
pre-decoded instruction and behaviours are AST-interpreted, though with
decode-time variants cached (variant resolution is part of decoding).
"""

from __future__ import annotations

from functools import partial

from repro.behavior.evaluator import EvalContext, execute_behavior
from repro.coding.decoder import InstructionDecoder
from repro.machine.driver import IssueSlot, Pipeline, trap_slot
from repro.machine.schedule import build_schedule
from repro.sim.base import Simulator
from repro.machine.packets import packet_extent


class PredecodedSimulator(Simulator):
    kind = "predecoded"

    def __init__(self, model, observer=None):
        super().__init__(model, observer=observer)
        self._decoder = InstructionDecoder(model)
        self._depth = model.pipeline.depth
        self._pmem_name = model.config.program_memory
        self._nodes = {}
        self._extents = {}
        self._ctx = None

    def _guard_target(self, engine):
        from repro.resilience.guard import PredecodedGuardTarget

        return PredecodedGuardTarget(self, engine)

    def _build_engine(self, program):
        # Compile-time decoding: one pass over the program image.
        self._nodes = {}
        self._extents = {}
        self._ctx = EvalContext(
            self.state, self.control, self.model, variant_cache={}
        )
        for segment in program.segments_in(self._pmem_name):
            words = segment.words
            base = segment.base
            limit = base + len(words)

            def read_word(address, _words=words, _base=base):
                return _words[address - _base]

            for offset, word in enumerate(words):
                pc = base + offset
                self._nodes[pc] = self._decoder.decode(word, address=pc)
            for pc in range(base, limit):
                self._extents[pc] = packet_extent(
                    self.model, read_word, pc, limit
                )
        return Pipeline(self.model, self.state, self.control, self._fetch)

    def _fetch(self, pc):
        """Run-time operation sequencing over pre-decoded instructions."""
        node = self._nodes.get(pc)
        if node is None:
            return trap_slot(
                self.model,
                "fetch outside the pre-decoded region (pc=0x%x)" % pc,
            )
        extent = self._extents[pc]
        ctx = self._ctx
        stages = [[] for _ in range(self._depth)]
        for address in range(pc, pc + extent):
            for item in build_schedule(self._nodes[address], self.model):
                stages[item.stage].append(
                    partial(
                        execute_behavior, item.behavior.statements,
                        item.node, ctx,
                    )
                )
        return IssueSlot(
            ops_by_stage=tuple(tuple(stage) for stage in stages),
            words=extent,
            insn_count=extent,
        )
