"""Static scheduling of the simulation table (paper Section 3).

Dynamic scheduling selects the operations of the instructions
overlapping in the pipeline at run-time, cycle by cycle.  *Static*
scheduling performs that composition once per pipeline occupancy: for a
window of issue addresses in flight, the cross-instruction *column* of
the simulation table (the paper's Figure 3) is flattened into a single
operation list -- or, at level 3, fused into one generated function
(full simulation-loop unfolding).

Implementation: pipeline occupancies are interned as *window nodes*.
A node carries the composed column and a transition dictionary keyed by
the next fetch address, so the steady-state loop body runs as

    node = node.next[pc]; for fn in node.column: fn()

with no per-cycle allocation, no table lookup and no per-stage
scheduling -- the paper's "operations scheduled at compile time".

Windows containing instructions that may raise pipeline-control
requests (flush/stall/halt) are never composed statically, because
same-cycle squash semantics require per-stage interleaving; those
cycles fall back to the dynamic path, and a flush re-interns the
squashed window.  PC redirection needs no special handling: the fetch
address is read from the live PC, so delay-slot branches work inside
static columns.

When the simulation table carries ``schedule_safety`` verdicts (from
:mod:`repro.analysis`), composition is additionally gated on every
in-flight instruction being proven ``hazard_free``: a window touching a
``conflicting`` or ``unknown`` packet falls back to the dynamic
per-stage path, which is always order-correct.  ``verify_schedule``
turns that fallback into a :class:`SimulationError`, for running a
program as a proof that its schedule is fully static.
"""

from __future__ import annotations

from functools import partial

from repro.sim.base import Simulator
from repro.simcc import ir
from repro.simcc.generator import generate_simulation_compiler
from repro.support.errors import SimulationError, SimulationTimeout


class _WindowNode:
    """One interned pipeline occupancy."""

    __slots__ = ("pcs", "slots", "column", "retire_insns", "empty", "next")

    def __init__(self, pcs, slots, column, retire_insns, empty):
        self.pcs = pcs  # tuple of issue pcs (None = bubble), stage 0 first
        self.slots = slots  # parallel tuple of IssueSlots / None
        self.column = column  # flattened ops (oldest first) or None
        self.retire_insns = retire_insns  # insn_count leaving on advance
        self.empty = empty
        self.next = {}  # incoming pc (or None) -> _WindowNode


class StaticPipeline:
    """Pipeline driver running statically scheduled columns."""

    __slots__ = (
        "_model", "_state", "_control", "_table", "_frontend",
        "_column_compiler", "_pc_name", "_depth", "_read_pc",
        "_write_pc", "_interned", "_root", "_node", "cycles",
        "instructions_retired", "_safety", "_verify_schedule",
        "_observer", "step",
    )

    def __init__(self, model, state, control, table, column_compiler=None,
                 verify_schedule=False, observer=None):
        self._model = model
        self._state = state
        self._control = control
        self._table = table
        self._frontend = table.make_frontend(model)
        self._column_compiler = column_compiler
        self._safety = table.schedule_safety
        self._verify_schedule = verify_schedule
        self._pc_name = model.pc_name
        self._depth = model.pipeline.depth
        # Bound accessors: the hot loop reads/writes the PC every cycle
        # and the register name never changes after construction.
        self._read_pc = partial(getattr, state, self._pc_name)
        self._write_pc = partial(setattr, state, self._pc_name)
        self._observer = None
        self.step = self._step_plain
        self._interned = {}
        self._root = self._intern((None,) * self._depth, (None,) * self._depth)
        self._node = self._root
        self.cycles = 0
        self.instructions_retired = 0
        if observer is not None:
            self.set_observer(observer)

    def set_observer(self, observer):
        """Attach (or detach, with None) a :class:`repro.obs.Observer`."""
        self._observer = observer
        self.step = (
            self._step_plain if observer is None else self._step_traced
        )

    # -- bookkeeping ----------------------------------------------------------

    @property
    def window(self):
        """Current (pc, slot) window, youngest first (for inspection)."""
        node = self._node
        return [
            None if pc is None else (pc, slot)
            for pc, slot in zip(node.pcs, node.slots)
        ]

    @property
    def drained(self):
        return self._node.empty

    @property
    def window_pcs(self):
        """Issue addresses of the in-flight window, stage 0 first."""
        return tuple(self._node.pcs)

    def reset(self):
        self._node = self._root
        self.cycles = 0
        self.instructions_retired = 0
        self._control.reset()

    def wrap_frontend(self, wrapper):
        """Replace the front-end with ``wrapper(current_frontend)`` (the
        resilience write guard interposes here); flushes the interned
        window graph so cached transitions cannot bypass the wrapper."""
        self._frontend = wrapper(self._frontend)
        self.flush_interned()

    def flush_interned(self):
        """Drop every interned window and cached transition.

        Called after simulation-table entries are invalidated (self-
        modifying code): interned nodes hold pre-fetched slots and
        pre-composed columns, so future transitions must re-fetch
        through the (guarded) front-end.  The current in-flight window
        keeps its already-fetched slots -- matching hardware, where
        instructions past fetch execute the code that was fetched.
        """
        for node in self._interned.values():
            node.next.clear()
        self._node.next.clear()
        self._interned = {}
        depth = self._depth
        self._root = self._intern((None,) * depth, (None,) * depth)

    def restore_window(self, pcs, cycles, instructions_retired):
        """Rebuild the in-flight window from checkpointed issue pcs by
        replaying the fetches through the (pure) front-end -- see
        :meth:`repro.machine.driver.Pipeline.restore_window`."""
        pcs = tuple(pcs)
        if len(pcs) != self._depth:
            raise SimulationError(
                "checkpoint window depth %d does not match pipeline "
                "depth %d" % (len(pcs), self._depth)
            )
        node = self._root
        for pc in reversed(pcs):  # oldest instruction advances first
            slot = None if pc is None else self._frontend(pc)
            node = self._advance_node(node, pc, slot)
        self._node = node
        self.cycles = cycles
        self.instructions_retired = instructions_retired

    # -- interning --------------------------------------------------------------

    def _intern(self, pcs, slots):
        node = self._interned.get(pcs)
        if node is None:
            node = _WindowNode(
                pcs=pcs,
                slots=slots,
                column=self._compose_column(pcs, slots),
                retire_insns=slots[-1].insn_count if slots[-1] else 0,
                empty=all(pc is None for pc in pcs),
            )
            self._interned[pcs] = node
        return node

    def _advance_node(self, node, pc, slot):
        """The interned node for ``node``'s window shifted by one fetch."""
        next_node = node.next.get(pc)
        if next_node is None:
            pcs = (pc,) + node.pcs[:-1]
            slots = (slot,) + node.slots[:-1]
            next_node = self._intern(pcs, slots)
            node.next[pc] = next_node
        return next_node

    def _compose_column(self, pcs, slots):
        """Statically schedule one occupancy, or None if it contains
        control-capable (or unknown/trap) instructions, or instructions
        the hazard analysis could not prove safe to reorder."""
        observer = self._observer
        has_control = self._table.has_control
        for pc in pcs:
            if pc is not None and has_control.get(pc, True):
                if observer is not None:
                    observer.on_fallback(pcs, pc, "control")
                return None
        safety = self._safety
        if safety is not None:
            for pc in pcs:
                if pc is not None and safety.get(pc) != "hazard_free":
                    if observer is not None:
                        observer.on_fallback(
                            pcs, pc, "hazard",
                            verdict=safety.get(pc, "unknown"),
                        )
                    if self._verify_schedule:
                        raise SimulationError(
                            "schedule verification failed: window %s "
                            "contains 0x%x with hazard verdict %r -- the "
                            "region cannot be statically scheduled"
                            % (
                                "/".join(
                                    "-" if p is None else "0x%x" % p
                                    for p in pcs
                                ),
                                pc, safety.get(pc, "unknown"),
                            )
                        )
                    return None
        if self._column_compiler is not None:
            compiled = self._column_compiler(pcs, slots)
            if compiled is not None:
                return compiled
        ops = []
        for stage in range(self._depth - 1, -1, -1):
            slot = slots[stage]
            if slot is not None:
                ops.extend(slot.ops_by_stage[stage])
        return tuple(ops)

    # -- execution ----------------------------------------------------------------

    def _step_plain(self):
        """One cycle (unhooked path; keep in sync with
        :meth:`_step_traced`)."""
        control = self._control
        node = self._node

        # -- advance ------------------------------------------------------
        self.instructions_retired += node.retire_insns
        if control.halted:
            next_node = self._advance_node(node, None, None)
        elif control.stall_cycles > 0:
            control.stall_cycles -= 1
            next_node = self._advance_node(node, None, None)
        else:
            pc = self._read_pc()
            next_node = node.next.get(pc)
            if next_node is None:
                slot = self._frontend(pc)
                next_node = self._advance_node(node, pc, slot)
            self._write_pc(pc + next_node.slots[0].words)

        # -- execute ---------------------------------------------------------
        column = next_node.column
        if column is not None:
            for fn in column:
                fn()
        else:
            next_node = self._execute_dynamic(next_node, control)
        self._node = next_node
        self.cycles += 1

    def _step_traced(self):
        """One cycle with trace hooks (same semantics as
        :meth:`_step_plain`); counts static vs dynamic cycles and emits
        fetch/bubble/squash events so the metrics agree with the
        per-fetch simulator kinds even across cached transitions."""
        control = self._control
        node = self._node
        observer = self._observer

        # -- advance ------------------------------------------------------
        self.instructions_retired += node.retire_insns
        if control.halted:
            next_node = self._advance_node(node, None, None)
            observer.on_bubble(self.cycles, "drain")
        elif control.stall_cycles > 0:
            control.stall_cycles -= 1
            next_node = self._advance_node(node, None, None)
            observer.on_bubble(self.cycles, "stall")
        else:
            pc = self._read_pc()
            next_node = node.next.get(pc)
            if next_node is None:
                slot = self._frontend(pc)
                next_node = self._advance_node(node, pc, slot)
            self._write_pc(pc + next_node.slots[0].words)
            observer.on_issue(self.cycles, pc, next_node.slots[0])

        # -- execute ---------------------------------------------------------
        column = next_node.column
        if column is not None:
            observer.on_static_cycle()
            for fn in column:
                fn()
        else:
            observer.on_dynamic_cycle()
            entered = next_node
            next_node = self._execute_dynamic(next_node, control)
            if next_node is not entered:
                squashed = sum(
                    1 for before, after in zip(entered.pcs, next_node.pcs)
                    if before is not None and after is None
                )
                if squashed:
                    observer.on_squash(self.cycles, squashed)
        self._node = next_node
        self.cycles += 1

    def _execute_dynamic(self, node, control):
        """Per-stage execution with flush handling; returns the node for
        the (possibly squashed) resulting window."""
        slots = node.slots
        squashed = None
        for stage in range(self._depth - 1, -1, -1):
            slot = slots[stage]
            if slot is None:
                continue
            if stage < control.flush_below:
                if squashed is None:
                    squashed = list(node.pcs)
                squashed[stage] = None
                continue
            ops = slot.ops_by_stage[stage]
            if ops:
                control.current_stage = stage
                for fn in ops:
                    fn()
        control.flush_below = -1
        if squashed is None:
            return node
        new_slots = tuple(
            slot if pc is not None else None
            for pc, slot in zip(squashed, node.slots)
        )
        return self._intern(tuple(squashed), new_slots)

    def run(self, max_cycles=50_000_000):
        start = self.cycles
        while not (self._control.halted and self.drained):
            if self.cycles - start >= max_cycles:
                raise SimulationTimeout(
                    "simulation exceeded %d cycles without halting"
                    % max_cycles,
                    budget="cycles", limit=max_cycles, cycles=self.cycles,
                )
            self.step()
        return self.cycles - start

    def run_chunk(self, cycles):
        """Step for up to ``cycles`` cycles or until halted-and-drained;
        returns the cycles actually run (see
        :meth:`repro.machine.driver.Pipeline.run_chunk`)."""
        start = self.cycles
        end = start + cycles
        control = self._control
        while self.cycles < end and not (control.halted and self.drained):
            self.step()
        return self.cycles - start


class StaticScheduledSimulator(Simulator):
    """Simulation-table simulator with static scheduling.

    ``cache``/``jobs`` behave as on
    :class:`repro.sim.compiled.CompiledSimulator`.  Level-3 column
    *fusion* concatenates the lowered per-stage IR of every in-flight
    instruction (oldest first), re-runs dead-write elimination over the
    combined sequence -- a write superseded by a younger instruction in
    the same cycle is dropped -- and compiles one function per interned
    occupancy.  Cache-rehydrated tables carry the persisted IR, so they
    fuse exactly like freshly compiled ones.  ``column_stats``
    accumulates the pass counters across every fused column (the
    ``dead_writes_removed`` count is the observable proof that column
    DCE fires).
    """

    def __init__(self, model, level="sequenced", cache=None, jobs=None,
                 verify_schedule=False, observer=None, backend="auto",
                 tiering="off"):
        super().__init__(model, observer=observer)
        self._level = level
        self._simcc = generate_simulation_compiler(model, validate=False)
        self._cache = cache
        self._jobs = jobs
        self._verify_schedule = verify_schedule
        self.backend = backend
        self.tiering = tiering
        self.table = None
        self._column_counter = 0
        self._backend = ir.PythonExecBackend()
        self.column_stats = ir.PassStats()

    @property
    def kind(self):
        if self._level == "sequenced":
            return "static"
        return "unfolded_static"

    @property
    def level(self):
        return self._level

    @property
    def cache(self):
        return self._cache

    def _guard_target(self, engine):
        from repro.resilience.guard import TableGuardTarget

        return TableGuardTarget(self, engine)

    def _build_engine(self, program):
        from repro.sim.compiled import (
            build_simulation_table,
            maybe_wrap_native,
            maybe_wrap_tiered,
        )

        self.table = build_simulation_table(self, program)
        column_compiler = None
        if self._level == "instantiated":
            column_compiler = self._compile_column
        engine = StaticPipeline(
            self.model, self.state, self.control, self.table,
            column_compiler=column_compiler,
            verify_schedule=self._verify_schedule,
        )
        return maybe_wrap_tiered(self, maybe_wrap_native(self, engine))

    def _compile_column(self, pcs, slots):
        """Fuse a whole pipeline column into one generated function.

        The column concatenates the lowered IR of each in-flight
        instruction, deepest stage (oldest instruction) first, then
        re-runs dead-write elimination: composition opens exactly one
        new optimisation -- a write made dead by a younger instruction
        writing the same cell later in the same cycle.
        """
        table = self.table
        if table.ir_by_stage is None:
            # No lowered IR behind this table (hand-built or legacy):
            # let the caller compose the column from per-stage
            # functions instead.
            return None
        ops = []
        for stage in range(self.model.pipeline.depth - 1, -1, -1):
            pc = pcs[stage]
            if pc is not None:
                for func in table.ir_by_stage[pc][stage]:
                    ops.extend(func.ops)
        if not ops:
            return ()
        self._column_counter += 1
        func = ir.optimize_column(
            "column_%d" % self._column_counter, ops, self.model,
            stats=self.column_stats,
        )
        fn = self._backend.compile_function(func, self.state, self.control)
        return (fn,)
