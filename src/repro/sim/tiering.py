"""Adaptive tiered execution: profile-guided promotion of hot windows.

The classic trade-off in compiled simulation is *time to first result*
versus *steady-state speed*: the cheap table levels load fast but run
slower, the expensive ones (operation instantiation, native burst
compilation) run fast but pay heavy up-front compilation for the whole
program -- most of which never gets hot.  This module resolves the
trade-off adaptively: programs **start at their cheap base tier**,
in-burst/per-cycle telemetry feeds the hot-region report
(:func:`repro.obs.hot_region_report`), and the :class:`TierManager`
promotes *only the hot windows* up a tier lattice::

    base (sequenced table)  -->  unfolded (instantiated window)
                                      |
                                      v   (where absint proofs admit)
                            native (compiled burst, window-admitted)

Promotion is a bit-exact in-place splice: the windowed artifact is
compiled by :mod:`repro.simcc.partial` (full packet extents against the
original segment limits, cached per (digest, window, level) with
single-flight dedup) and swapped into the live simulation table through
:func:`repro.resilience.guard.splice_table_window` -- the exact
machinery the self-modifying-code guard uses, run in the opposite
direction.  Native promotion renders a window-admitted burst module
(:func:`repro.simcc.native.build_native_module` with ``admit_pcs``) and
wraps -- or re-arms, via ``NativePipeline.adopt_module`` -- the burst
engine around the running pipeline.

Builds optionally run on a background thread and **commit only at a
poll boundary on the simulating thread**, so the architectural state
never observes a half-spliced table.  The guard always wins races: a
self-modifying write poisons the touched addresses, discards any
overlapping in-flight build, and demotes already-promoted windows
(``tiering.demote`` with cause ``self_modify``); a failed background
build aborts without touching the running tier.

Once the profile stops producing promotion candidates the manager
**quiesces**: it rebuilds the native module telemetry-free (same
admitted set) and detaches its internal profile observer, so steady
state pays neither in-burst counters nor per-cycle attribution.  A
later self-modifying write resumes profiling.  Quiescence never touches
a user-attached observer.

Every transition is observable (``tiering.promote``/``tiering.demote``
events, ``tiering.*`` metrics) and recorded on a versioned, cycle-
stamped timeline (:meth:`TierManager.timeline_report`, actions
``promote``/``demote``/``abort``/``quiesce``) surfaced through
``repro-sim --tier-report`` and the ``tier_timeline`` field of
``--stats-json``.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.obs import PROFILE_MODE, Observer, hot_region_report
from repro.obs.profile import DEFAULT_MAX_GAP
from repro.support.errors import ReproError, SimulationTimeout

#: Tiering modes accepted by simulators / ``repro-sim --tiering``.
TIERING_MODES = ("off", "auto", "aggressive")

#: Schema version of :meth:`TierManager.timeline_report`.
TIMELINE_VERSION = 1

#: The tier lattice, cheap to expensive.
TIERS = ("base", "unfolded", "native")


@dataclasses.dataclass
class TierPolicy:
    """Knobs steering when and what the :class:`TierManager` promotes.

    ``poll_cycles``
        Promotion decisions happen only at poll boundaries, every this
        many simulated cycles (the engine never yields control
        mid-window, so splices are always architecturally clean).
    ``min_cycles``
        No promotion before this many cycles have accumulated -- the
        profile needs signal before it is worth acting on.
    ``hot_share`` / ``max_gap``
        Passed to :func:`repro.obs.hot_region_report`: the minimum
        attributed-cycle share for a packet to seed a hot window, and
        the maximum address gap merged into one window.
    ``promote_native``
        Whether proven windows continue past ``unfolded`` to the
        compiled burst tier (degrades silently without a C toolchain).
    ``background``
        Build promotion artifacts on a background thread, committing at
        the next poll; ``False`` builds synchronously inside the poll
        (deterministic commit points -- what the tests use).
    """

    mode: str = "auto"
    poll_cycles: int = 2000
    min_cycles: int = 2000
    hot_share: float = 0.01
    max_gap: int = DEFAULT_MAX_GAP
    promote_native: bool = True
    background: bool = True

    @classmethod
    def for_mode(cls, mode):
        """The stock policy for one of :data:`TIERING_MODES`."""
        if mode == "auto":
            return cls(mode="auto")
        if mode == "aggressive":
            # Promote early and eagerly: first poll already acts, a
            # tenth of the hot-share bar (warm packets between hot ones
            # would otherwise stay on the slow path and cap every burst
            # at the next unpromoted address), synchronous builds so
            # every promotion lands at a deterministic cycle stamp.
            return cls(mode="aggressive", poll_cycles=500, min_cycles=0,
                       hot_share=0.001, background=False)
        raise ReproError(
            "unknown tiering mode %r (choose from %s)"
            % (mode, ", ".join(TIERING_MODES))
        )

    @classmethod
    def coerce(cls, value):
        """A policy from a mode string, a policy, ``None`` or ``"off"``;
        ``None`` result means tiering is off."""
        if value in (None, "off"):
            return None
        if isinstance(value, cls):
            return value
        return cls.for_mode(value)


class _Build:
    """One in-flight promotion build (at most one exists at a time).

    ``fn`` runs either inline (synchronous policies) or on a daemon
    thread; the result is only ever *consumed* on the simulating thread
    at a poll boundary.  ``pcs`` is the packet-address footprint the
    guard checks overlapping self-modifying writes against.
    """

    def __init__(self, tier, start, limit, pcs, fn, background,
                 quiesce=False):
        self.tier = tier
        self.start = start
        self.limit = limit
        self.pcs = frozenset(pcs)
        self.quiesce = quiesce
        self.result = None
        self.error = None
        self.discarded = False
        self._finished = threading.Event()
        if background:
            thread = threading.Thread(
                target=self._run, args=(fn,),
                name="repro-tier-build", daemon=True,
            )
            thread.start()
        else:
            self._run(fn)

    def _run(self, fn):
        try:
            self.result = fn()
        except Exception as exc:  # surfaced as a tiering abort, not a crash
            self.error = exc
        finally:
            self._finished.set()

    @property
    def done(self):
        return self._finished.is_set()


class TierManager:
    """Decides, builds and commits tier transitions for one simulator.

    Owned by a :class:`TieredEngine`; all table mutation happens in
    :meth:`poll` on the simulating thread.  When the simulator has no
    observer the manager attaches its own record-free profile-mode
    observer to the inner engine -- cycle attribution is the price of
    admission for profile-guided anything.
    """

    def __init__(self, simulator, engine, policy):
        self._sim = simulator
        self._engine = engine
        self.policy = policy
        self._internal = None
        self._observer = simulator.observer
        if self._observer is None:
            self._internal = Observer(record=False, mode=PROFILE_MODE)
            engine.inner.set_observer(self._internal)
        self.timeline = []
        #: Addresses a self-modifying write touched: never promoted again.
        self._poisoned = set()
        #: Addresses a promotion build failed for: not retried.
        self._failed = set()
        #: Packet starts spliced at the instantiated level.
        self._unfolded = set()
        #: Packet starts the current native module proved and admits.
        self._native_admits = set()
        #: Packet starts ever handed to a native build (no re-attempts).
        self._native_attempted = set()
        self._native_off = False
        self._build = None
        self._base_instantiated = (
            getattr(simulator, "level", None) == "instantiated"
        )
        #: Consecutive polls that found nothing to plan.
        self._idle_polls = 0
        #: Profiling dropped after the promotion phase settled.
        self._quiesced = False

    # -- observer plumbing ---------------------------------------------------

    @property
    def observer(self):
        """The observer feeding the profile: the simulator's, or the
        manager's internal one."""
        return self._observer if self._observer is not None else self._internal

    def set_observer(self, observer):
        self._observer = observer
        if (
            observer is None
            and self._internal is not None
            and not self._quiesced
        ):
            # Keep profiling through the internal observer; without one
            # the manager would go blind.
            self._engine.inner.set_observer(self._internal)
        else:
            self._engine.inner.set_observer(observer)

    # -- the poll boundary ---------------------------------------------------

    #: Consecutive empty polls before profiling quiesces (the profile
    #: has clearly stopped producing new promotion candidates).
    QUIESCE_IDLE_POLLS = 3

    def poll(self):
        """Commit a finished build and/or plan the next promotion.

        Called by the :class:`TieredEngine` between run chunks -- the
        only place the live table is ever mutated.  Returns True while
        there is (or may soon be) work in flight; False means the
        manager is idle and the engine may back off its poll cadence.
        """
        build = self._build
        if build is not None:
            if not build.done:
                return True
            self._build = None
            self._commit(build)
            return True  # one transition per poll keeps stamps unambiguous
        if self._engine.cycles < self.policy.min_cycles:
            return True
        plan = self._plan()
        if plan is None:
            self._idle_polls += 1
            return self._maybe_quiesce()
        self._idle_polls = 0
        tier, start, limit, pcs, fn = plan
        self._build = _Build(tier, start, limit, pcs, fn,
                             self.policy.background)
        if not self.policy.background:
            build, self._build = self._build, None
            self._commit(build)
        return True

    # -- planning ------------------------------------------------------------

    def _hot_windows(self):
        table = self._sim.table
        extents = {pc: slot.words for pc, slot in table.slots.items()}
        report = hot_region_report(
            self.observer, hot_share=self.policy.hot_share,
            max_gap=self.policy.max_gap, extents=extents,
        )
        return report["windows"]

    def _clamp_to_segment(self, start, limit):
        """Clip a hot window to its enclosing program segment.

        Profile windows group by address adjacency, which can bridge a
        segment boundary; a promotion build only covers one segment.
        The clipped remainder stays hot and gets planned on a later
        poll.  Returns None when ``start`` lies in no segment.
        """
        sim = self._sim
        pmem = sim.model.config.program_memory
        for segment in sim.program.segments_in(pmem):
            if segment.base <= start < segment.end:
                return start, min(limit, segment.end)
        return None

    def _plan(self):
        """The next (tier, start, limit, pcs, builder) or None."""
        table = self._sim.table
        for window in self._hot_windows():
            clamped = self._clamp_to_segment(
                window["start"], window["limit"]
            )
            if clamped is None:
                continue
            start, limit = clamped
            span = set(range(start, limit))
            if span & self._poisoned or span & self._failed:
                continue
            pcs = span & set(table.slots)
            if not pcs:
                continue
            if not self._base_instantiated and not pcs <= self._unfolded:
                return self._plan_unfolded(start, limit, pcs)
            native = self._plan_native(start, limit, pcs)
            if native is not None:
                return native
        return None

    def _plan_unfolded(self, start, limit, pcs):
        from repro.simcc.partial import build_window_table

        sim = self._sim
        model, program = sim.model, sim.program
        cache, jobs = sim.cache, getattr(sim, "_jobs", None)

        def builder():
            return build_window_table(
                model, program, start, limit, level="instantiated",
                cache=cache, jobs=jobs,
            )

        return ("unfolded", start, limit, pcs, builder)

    def _plan_native(self, start, limit, pcs):
        if self._native_off or not self.policy.promote_native:
            return None
        table = self._sim.table
        ir_by_stage = table.ir_by_stage or {}
        ready = {pc for pc in pcs if pc in ir_by_stage}
        fresh = ready - self._native_attempted
        if not fresh:
            return None
        admit = frozenset(
            (self._native_attempted | ready) - self._poisoned
        )
        self._native_attempted |= ready
        sim = self._sim
        model, cache = sim.model, sim.cache
        # Snapshot the table: a background render must not race guard
        # refreshes mutating the live dicts mid-iteration.
        snapshot = dataclasses.replace(
            table,
            slots=dict(table.slots),
            has_control=dict(table.has_control),
            ir_by_stage=dict(ir_by_stage),
        )
        telemetry = (
            self.observer is not None
            and not getattr(self.observer, "wants_cycle_events", True)
        )
        # Background builds keep the observer out: emitting events from
        # a worker thread would interleave with the simulating thread.
        observer = None if self.policy.background else self.observer

        def builder():
            from repro.simcc.native import build_native_module

            return build_native_module(
                model, snapshot, cache=cache, observer=observer,
                telemetry=telemetry, admit_pcs=admit,
            )

        return ("native", start, limit, admit, builder)

    # -- quiescence ----------------------------------------------------------

    def _maybe_quiesce(self):
        """Drop profiling once the promotion phase has settled.

        The manager's internal profile-mode observer is what makes
        promotion possible -- and what taxes steady state: it forces
        per-cycle attribution on the Python tiers and in-burst
        telemetry in the native modules.  Once :data:`QUIESCE_IDLE_POLLS`
        consecutive polls planned nothing and at least one promotion is
        committed, stop paying: rebuild the native module without
        telemetry (same admitted set) and detach the internal observer.
        A later self-modifying write resumes profiling (:meth:`on_smc`).
        Only ever fires for the internal observer -- a user-attached
        observer keeps its telemetry for as long as it is attached.
        """
        if (
            self._quiesced
            or self._observer is not None
            or self._internal is None
            or self._idle_polls < self.QUIESCE_IDLE_POLLS
            or not (self._unfolded or self._native_admits)
        ):
            return False
        plan = self._plan_quiesce()
        if plan is None:
            # Pure-Python tiers: nothing to rebuild, just stop counting.
            self._quiesce_now(self._engine.cycles, "unfolded")
            return False
        tier, start, limit, pcs, fn = plan
        self._build = _Build(tier, start, limit, pcs, fn,
                             self.policy.background, quiesce=True)
        if not self.policy.background:
            build, self._build = self._build, None
            self._commit(build)
        return True

    def _plan_quiesce(self):
        """A telemetry-free rebuild of the current native module, or
        None when the inner engine runs pure Python tiers."""
        from repro.simcc.native import NativePipeline

        if not isinstance(self._engine.inner, NativePipeline):
            return None
        admit = frozenset(self._native_admits - self._poisoned)
        if not admit:
            return None
        table = self._sim.table
        sim = self._sim
        model, cache = sim.model, sim.cache
        snapshot = dataclasses.replace(
            table,
            slots=dict(table.slots),
            has_control=dict(table.has_control),
            ir_by_stage=dict(table.ir_by_stage or {}),
        )

        def builder():
            from repro.simcc.native import build_native_module

            return build_native_module(
                model, snapshot, cache=cache, observer=None,
                telemetry=False, admit_pcs=admit,
            )

        return ("native", min(admit), max(admit) + 1, admit, builder)

    def _commit_quiesce(self, build, cycle):
        if build.discarded or build.pcs & self._poisoned:
            # The guard already resumed profiling; stay instrumented.
            self._record("abort", build, cycle, cause="smc_overlap")
            return
        module = build.result
        if build.error is None and module is not None:
            self._engine.inner.adopt_module(module)
            self._native_admits = set(module.plan.native_pcs)
        # Even when the rebuild failed (keeping the instrumented
        # module), stop profiling -- retrying every poll would turn a
        # broken toolchain into a hot loop.
        self._quiesce_now(cycle, build.tier)

    def _quiesce_now(self, cycle, tier):
        self._quiesced = True
        self._idle_polls = 0
        if self._observer is None:
            self._engine.inner.set_observer(None)
        promoted = self._native_admits or self._unfolded
        self.timeline.append({
            "cycle": int(cycle), "action": "quiesce", "tier": tier,
            "start": int(min(promoted)) if promoted else 0,
            "limit": int(max(promoted) + 1) if promoted else 0,
            "cause": "profile_idle",
        })

    # -- committing ----------------------------------------------------------

    def _commit(self, build):
        cycle = self._engine.cycles
        if build.quiesce:
            self._commit_quiesce(build, cycle)
            return
        if build.discarded or build.pcs & self._poisoned:
            self._record("abort", build, cycle, cause="smc_overlap")
            return
        if build.error is not None:
            self._failed |= build.pcs
            if build.tier == "native":
                self._native_off = True
            self._record(
                "abort", build, cycle,
                cause="compile_failed: %s" % build.error,
            )
            return
        if build.tier == "unfolded":
            self._commit_unfolded(build, cycle)
        else:
            self._commit_native(build, cycle)

    def _commit_unfolded(self, build, cycle):
        from repro.resilience.guard import splice_table_window

        sim = self._sim
        mini = build.result.bind(sim.state, sim.control)
        pcs = set(build.pcs) - self._poisoned
        updates = splice_table_window(
            sim.table, mini, engine=self._engine.inner,
            mode="promote", pcs=pcs,
        )
        self._unfolded |= set(updates)
        self._record("promote", build, cycle, packets=len(updates))

    def _commit_native(self, build, cycle):
        module = build.result
        if module is None:
            # The build ladder degraded (no toolchain, nothing proven):
            # stop asking, the Python tiers keep running untouched.
            self._native_off = True
            self._record("abort", build, cycle, cause="native_unavailable")
            return
        from repro.simcc.native import NativePipeline

        inner = self._engine.inner
        if isinstance(inner, NativePipeline):
            inner.adopt_module(module)
        else:
            sim = self._sim
            native = NativePipeline(inner, sim.state, sim.control, module)
            native.set_observer(self.observer)
            self._engine.inner = native
        self._native_admits = set(module.plan.native_pcs)
        self._record(
            "promote", build, cycle, packets=len(module.plan.native_pcs)
        )

    def _record(self, action, build, cycle, cause=None, **extra):
        entry = {
            "cycle": int(cycle),
            "action": action,
            "tier": build.tier,
            "start": int(build.start),
            "limit": int(build.limit),
            "cause": cause,
        }
        self.timeline.append(entry)
        observer = self.observer
        if observer is None:
            return
        if action == "promote":
            observer.on_tier_promote(
                build.start, build.limit, build.tier, cycle, **extra
            )
        elif action == "abort":
            observer.metrics.inc("tiering.aborted_builds")
            observer.metrics.bump(
                "tiering.aborts_by_cause", (cause or "").split(":")[0]
            )

    # -- the guard wins every race -------------------------------------------

    def on_smc(self, pcs):
        """A self-modifying write invalidated ``pcs``.

        Called (through the :class:`TieredEngine`) on the guard's
        invalidate path: poison the addresses against future promotion,
        discard any overlapping in-flight build, and demote whatever
        was already promoted there -- the guard's refresh then serves
        the packet at the simulator's base level.
        """
        pcs = set(pcs)
        self._poisoned |= pcs
        self._idle_polls = 0
        if self._quiesced:
            # The program just changed shape: resume profiling so the
            # refreshed packets can earn promotion again.
            self._quiesced = False
            if self._observer is None and self._internal is not None:
                self._engine.inner.set_observer(self._internal)
        build = self._build
        if build is not None and build.pcs & pcs:
            build.discarded = True
        cycle = self._engine.cycles
        hit_native = pcs & self._native_admits
        hit_unfolded = pcs & self._unfolded
        self._native_admits -= hit_native
        self._unfolded -= hit_unfolded
        observer = self.observer
        for tier, hit in (("native", hit_native),
                          ("unfolded", hit_unfolded)):
            if not hit:
                continue
            start, limit = min(hit), max(hit) + 1
            self.timeline.append({
                "cycle": int(cycle), "action": "demote", "tier": tier,
                "start": int(start), "limit": int(limit),
                "cause": "self_modify",
            })
            if observer is not None:
                observer.on_tier_demote(
                    start, limit, tier, cycle, cause="self_modify"
                )

    # -- reporting -----------------------------------------------------------

    def timeline_report(self):
        """The versioned, cycle-stamped promotion timeline (JSON-safe)."""
        return {
            "version": TIMELINE_VERSION,
            "mode": self.policy.mode,
            "events": list(self.timeline),
        }


class TieredEngine:
    """Engine wrapper interleaving run chunks with tier-manager polls.

    The stable outer object: the guard, checkpoints and the simulator
    all hold *this* engine, while promotions swap the wrapped ``inner``
    (``Pipeline``/``StaticPipeline``, later a ``NativePipeline``
    around it) underneath without anyone re-arming.
    """

    def __init__(self, simulator, inner, policy):
        from repro.simcc.native import NativePipeline

        if isinstance(inner, NativePipeline):
            raise ReproError(
                "tiering requires a non-native base backend (the native "
                "backend already compiles everything eagerly)"
            )
        self.inner = inner
        self._control = simulator.control
        self.manager = TierManager(simulator, self, policy)
        self._poll_cycles = max(1, int(policy.poll_cycles))
        self._chunk = self._poll_cycles
        self._next_poll = self._poll_cycles

    # -- delegation ----------------------------------------------------------

    @property
    def cycles(self):
        return self.inner.cycles

    @property
    def instructions_retired(self):
        return self.inner.instructions_retired

    @property
    def drained(self):
        return self.inner.drained

    @property
    def window_pcs(self):
        return self.inner.window_pcs

    def reset(self):
        self.inner.reset()

    def set_observer(self, observer):
        self.manager.set_observer(observer)

    def wrap_frontend(self, wrapper):
        self.inner.wrap_frontend(wrapper)

    def restore_window(self, pcs, cycles, instructions_retired):
        self.inner.restore_window(pcs, cycles, instructions_retired)

    def flush_interned(self):
        flush = getattr(self.inner, "flush_interned", None)
        if flush is not None:
            flush()

    def invalidate_native(self, pcs):
        """Guard invalidation hook: the manager poisons/demotes first,
        then any wrapped burst engine drops its compiled windows."""
        self.manager.on_smc(pcs)
        invalidate = getattr(self.inner, "invalidate_native", None)
        if invalidate is not None:
            invalidate(pcs)
        # The table just changed under us: resume the dense poll cadence.
        self._chunk = self._poll_cycles
        self._next_poll = self.inner.cycles + self._poll_cycles

    def __getattr__(self, name):
        # Anything outside the engine contract falls through to the
        # wrapped engine (dispatch_counts, column stats, ...).
        if name.startswith("_") or name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- execution -----------------------------------------------------------

    #: Idle polls stretch the chunk between polls up to this multiple
    #: of ``poll_cycles`` (exponential backoff): once everything hot is
    #: promoted, a steady-state run spends its time in long bursts, not
    #: in re-ranking an unchanged profile.
    MAX_POLL_BACKOFF = 64

    def _poll(self):
        busy = self.manager.poll()
        if busy:
            self._chunk = self._poll_cycles
        else:
            self._chunk = min(
                self._chunk * 2,
                self._poll_cycles * self.MAX_POLL_BACKOFF,
            )
        self._next_poll = self.inner.cycles + self._chunk

    def step(self):
        self.inner.step()
        if self.inner.cycles >= self._next_poll:
            self._poll()

    def run(self, max_cycles=50_000_000):
        control = self._control
        start = self.cycles
        while not (control.halted and self.inner.drained):
            ran = self.cycles - start
            if ran >= max_cycles:
                raise SimulationTimeout(
                    "simulation exceeded %d cycles without halting"
                    % max_cycles,
                    budget="cycles", limit=max_cycles, cycles=self.cycles,
                )
            until_poll = max(1, self._next_poll - self.cycles)
            self.inner.run_chunk(min(until_poll, max_cycles - ran))
            if self.cycles >= self._next_poll:
                self._poll()
        return self.cycles - start

    def run_chunk(self, cycles):
        control = self._control
        start = self.cycles
        end = start + cycles
        while self.cycles < end and not (
            control.halted and self.inner.drained
        ):
            until_poll = max(1, self._next_poll - self.cycles)
            self.inner.run_chunk(min(until_poll, end - self.cycles))
            if self.cycles >= self._next_poll:
                self._poll()
        return self.cycles - start
