"""The simulation-compiler generator and the simulation compiler.

Mirrors the paper's Figure 5: the *generator* takes the model data base
and produces a processor-specific *simulation compiler*; the simulation
compiler translates target object code into a *simulation table* that
drives the compiled simulator.

Levels of compiled simulation (paper Section 3):

* ``sequenced`` -- compile-time decoding **and** operation sequencing
  (the two steps the paper implements): each program location gets a
  pre-decoded, pre-scheduled issue slot whose micro-operations are
  pre-bound behaviour executions.
* ``instantiated`` -- additionally performs *operation instantiation*:
  specialised Python code is generated per program instruction with
  operand values folded in (the paper's announced third step).
"""

from repro.simcc.compiler import SimulationCompiler, SimulationTable
from repro.simcc.generator import generate_simulation_compiler
from repro.simcc.emit import emit_simulator_module
from repro.simcc.portable import PortableTable, build_portable_table
from repro.simcc.cache import SimulationCache, table_digest

__all__ = [
    "SimulationCompiler",
    "SimulationTable",
    "generate_simulation_compiler",
    "emit_simulator_module",
    "PortableTable",
    "build_portable_table",
    "SimulationCache",
    "table_digest",
]
