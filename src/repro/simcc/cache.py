"""Persistent, content-addressed cache for compiled simulations.

The paper's thesis is moving work from simulation run-time to
simulation compile-time; this module moves it further -- out of the
process entirely.  A compiled simulation (as a state-independent
:class:`repro.simcc.portable.PortableTable`) is stored on disk keyed by
a digest of everything that determines its content:

* the LISA model data base (the JSON dump plus a stable rendering of
  every behaviour/guard AST, so editing an operation's arithmetic
  invalidates dependent tables),
* the program bytes (the serialised object file),
* the simulation level.

Any change to model, program or level therefore produces a different
key -- invalidation is automatic and exact, and entries never go stale.

Entry format (versioned): a magic line followed by one :mod:`marshal`
payload holding the table spec, the generated function sources, and
the pre-compiled code object.  Marshal is the same machinery behind
``.pyc`` files: loading is a single fast C pass and the code object
needs no re-parse.  Because marshal bytecode is CPython-version
specific, entries live under a ``v<format>-cp<maj><min>`` namespace;
a different interpreter simply misses and recompiles rather than
misreading.  Corrupt entries (truncation, bit-rot, concurrent writer
crashes) are detected, quarantined (deleted) and treated as misses.

An in-process LRU of rehydrated tables sits in front of the disk
store, so repeated loads of the same program in one process skip even
the ``exec``.
"""

from __future__ import annotations

import hashlib
import json
import marshal
import os
import sys
import tempfile
import threading
from collections import OrderedDict

from repro.lisa.database import model_to_json
from repro.simcc.portable import PortableTable

#: Bump when the entry layout or the portable-table payload changes.
#: 2: portable tables carry per-packet ``schedule_safety`` verdicts.
#: 3: portable tables store SimIR payloads instead of source text.
#: 4: native burst artifacts (.c source + shared object + metadata)
#:    ride alongside portable tables; older entries are clean misses.
#: 5: portable tables persist per-packet abstract-interpretation
#:    proofs (:mod:`repro.analysis.absint`); prior-rev entries are
#:    clean misses reported once as ``prior_format``.
#: 6: *partial* (windowed) table payloads for tiered promotion: entries
#:    are additionally keyed by an optional packet-address window and
#:    carry it in the payload, so hot-window promotions warm-start from
#:    cached artifacts; prior-rev entries are clean misses.
FORMAT_VERSION = 6

_MAGIC = b"repro-simtab\n"


def _version_tag():
    return "v%d-cp%d%d" % (
        FORMAT_VERSION, sys.version_info[0], sys.version_info[1]
    )


# -- digests -----------------------------------------------------------------


def _stable_ast_repr(model):
    """A deterministic rendering of every behaviour-relevant AST.

    ``model_to_json`` summarises behaviours structurally (it is a
    description, not an executable image), so two models differing only
    in an operation's arithmetic could dump identically.  Behaviour,
    expression and guard ASTs are frozen dataclasses whose ``repr`` is
    fully value-based, which makes them safe digest material.
    """
    from repro.lisa import model as m

    parts = []
    for op in model.operations.values():
        parts.append(op.name)
        for item in op.items:
            if isinstance(item, (m.IfSections, m.SwitchSections)):
                parts.append(repr(item))
        for items in op.all_section_variants():
            for item in items:
                if isinstance(item, (m.Behavior, m.Expression, m.Activation)):
                    parts.append(repr(item))
    return "\n".join(parts)


def model_digest(model):
    """Hex digest of the model data base (cached on the model)."""
    cached = getattr(model, "_simtab_digest", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(model_to_json(model).encode("utf-8"))
    digest.update(_stable_ast_repr(model).encode("utf-8"))
    digest = digest.hexdigest()
    try:
        model._simtab_digest = digest
    except AttributeError:
        pass
    return digest


def table_digest(model, program, level, window=None):
    """The content address of one compiled simulation.

    ``window`` (an inclusive-exclusive ``(start, limit)`` packet-address
    range) keys a *partial* table holding only the packets starting in
    that range -- the unit of tiered promotion.  A windowed entry never
    aliases the whole-program entry for the same (model, program,
    level).
    """
    digest = hashlib.sha256()
    digest.update(b"repro-simtab:%d\n" % FORMAT_VERSION)
    digest.update(model_digest(model).encode("ascii"))
    digest.update(b"\n")
    digest.update(
        json.dumps(program.to_dict(), sort_keys=True).encode("utf-8")
    )
    digest.update(b"\n")
    digest.update(level.encode("utf-8"))
    if window is not None:
        digest.update(b"\nwindow:%d-%d" % (int(window[0]), int(window[1])))
    return digest.hexdigest()


# -- the cache ---------------------------------------------------------------


class SimulationCache:
    """On-disk simulation-table cache with an in-process LRU in front.

    ``stats`` counts ``memory_hits``, ``disk_hits``, ``misses``,
    ``stores``, ``store_errors``, ``corrupt_entries``, and
    ``format_misses`` (entries written under a different payload
    format, reported as clean misses) for observability; the CLI
    prints them under ``--stats``.
    """

    def __init__(self, root, max_memory_entries=8):
        self.root = os.fspath(root)
        self._max_memory = max(0, int(max_memory_entries))
        self._memory = OrderedDict()
        # Single-flight build deduplication: digest -> lock.  Concurrent
        # get-or-build calls for the same entry (background tier
        # promotions racing) serialise here so the builder runs once.
        self._flights = {}
        self._flights_mutex = threading.Lock()
        self.stats = {
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "stores": 0,
            "store_errors": 0,
            "corrupt_entries": 0,
            "format_misses": 0,
            "native_hits": 0,
            "native_misses": 0,
            "native_stores": 0,
            "single_flight_waits": 0,
        }

    # -- high-level entry point ---------------------------------------------

    def load_table(self, compiler, program, state, control,
                   level="sequenced", jobs=None, observer=None):
        """Get-or-compile a simulation table bound to ``state``/``control``.

        On a hit the simulation compiler never runs: the portable table
        is rehydrated from memory or disk and bound.  On a miss the
        program is compiled (``jobs`` fans the work out), stored, and
        bound.  ``observer`` records lookup/store/bind spans and one
        ``cache`` event per outcome.
        """
        from repro import obs as _obs

        before = dict(self.stats)
        with _obs.span(observer, "cache.lookup", level=level):
            portable = self.load_portable(compiler.model, program, level)
        if observer is not None:
            for stat, outcome in (("memory_hits", "memory_hit"),
                                  ("disk_hits", "disk_hit"),
                                  ("misses", "miss")):
                if self.stats[stat] > before[stat]:
                    if (outcome == "miss" and self.stats["format_misses"]
                            > before["format_misses"]):
                        # The entry exists but was written under a prior
                        # payload format: one clean miss, flagged so the
                        # event stream explains the recompile.
                        observer.on_cache(outcome, level=level,
                                          prior_format=True)
                    else:
                        observer.on_cache(outcome, level=level)
        if portable is None:
            portable = compiler.compile_portable(program, level=level,
                                                 jobs=jobs, observer=observer)
            with _obs.span(observer, "cache.store", level=level):
                self.store_portable(compiler.model, program, level, portable)
            if observer is not None:
                observer.on_cache("store", level=level)
        with _obs.span(observer, "cache.bind", level=level):
            return portable.bind(state, control)

    # -- portable-table access ----------------------------------------------

    def load_portable(self, model, program, level, window=None):
        """The cached portable table, or None on a miss."""
        digest = table_digest(model, program, level, window=window)
        portable = self._memory_get(digest)
        if portable is not None:
            self.stats["memory_hits"] += 1
            return portable
        portable = self._disk_get(digest)
        if portable is not None:
            self.stats["disk_hits"] += 1
            self._memory_put(digest, portable)
            return portable
        self.stats["misses"] += 1
        return None

    def store_portable(self, model, program, level, portable, window=None):
        """Persist a portable table under its content address.

        An unwritable store (read-only filesystem, ``root`` pointing at
        a file, disk full) must never break simulation: the entry still
        lands in the in-process LRU and the failure is only counted.
        """
        digest = table_digest(model, program, level, window=window)
        try:
            self._disk_put(digest, portable)
            self.stats["stores"] += 1
        except OSError:
            self.stats["store_errors"] += 1
        self._memory_put(digest, portable)
        return digest

    def load_or_build_portable(self, model, program, level, builder,
                               window=None):
        """Single-flight get-or-build of a (possibly windowed) table.

        Concurrent calls for the same (model, program, level, window)
        run ``builder()`` exactly once: losers block on the winner's
        flight lock, then re-check the cache and pick up the published
        entry (counted as ``single_flight_waits``).  Used by the tiered
        execution manager, whose background promotions of the same hot
        window would otherwise compile the same artifact repeatedly.
        """
        digest = table_digest(model, program, level, window=window)
        portable = self.load_portable(model, program, level, window=window)
        if portable is not None:
            return portable
        with self._flight_lock(digest) as won:
            if not won:
                self.stats["single_flight_waits"] += 1
                portable = self.load_portable(model, program, level,
                                              window=window)
                if portable is not None:
                    return portable
            portable = builder()
            self.store_portable(model, program, level, portable,
                                window=window)
        return portable

    def _flight_lock(self, digest):
        """Context manager serialising builders of one entry.

        Yields True for the flight that created the lock (the probable
        builder), False for flights that had to queue behind it.
        """
        cache = self

        class _Flight:
            def __enter__(self):
                with cache._flights_mutex:
                    lock = cache._flights.get(digest)
                    self.won = lock is None
                    if lock is None:
                        lock = cache._flights[digest] = threading.Lock()
                    self.lock = lock
                self.lock.acquire()
                return self.won

            def __exit__(self, *exc):
                self.lock.release()
                with cache._flights_mutex:
                    if cache._flights.get(digest) is self.lock:
                        del cache._flights[digest]
                return False

        return _Flight()

    def module_source(self, model, program, level="sequenced", jobs=None):
        """The standalone emitted module for ``program``, served from the
        cache when possible (see :func:`repro.simcc.emit`)."""
        from repro.simcc.emit import emit_simulator_module

        return emit_simulator_module(model, program, level=level, jobs=jobs,
                                     cache=self)

    # -- native burst artifacts ---------------------------------------------

    def native_root(self):
        """Directory for native backend artifacts (versioned namespace)."""
        return os.path.join(self.root, _version_tag(), "native")

    def _native_paths(self, key):
        base = os.path.join(self.native_root(), key[:2], key[2:])
        return base + ".c", base + ".so", base + ".json"

    def load_native_artifact(self, key, compiler_id):
        """Paths of a valid cached native artifact, or ``None``.

        An artifact is valid only when its metadata matches the current
        payload format *and* the exact compiler identity (version line
        plus flags): a shared object built by a stale compiler must
        miss and be rebuilt, never loaded.
        """
        c_path, so_path, meta_path = self._native_paths(key)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            self.stats["native_misses"] += 1
            return None
        if (
            meta.get("format") != FORMAT_VERSION
            or meta.get("compiler") != compiler_id
            or not os.path.exists(so_path)
        ):
            self.stats["native_misses"] += 1
            return None
        self.stats["native_hits"] += 1
        return c_path, so_path

    def store_native_artifact(self, key, compiler_id, source, compile_fn):
        """Build and publish a native artifact under ``key``.

        ``compile_fn(c_path, so_path)`` performs the actual compile.
        The metadata file is written last (atomically), so a crashed
        build can never be mistaken for a valid artifact.
        """
        c_path, so_path, meta_path = self._native_paths(key)
        directory = os.path.dirname(c_path)
        os.makedirs(directory, exist_ok=True)
        with open(c_path, "w", encoding="utf-8") as handle:
            handle.write(source)
        tmp_so = so_path + ".tmp"
        compile_fn(c_path, tmp_so)
        os.replace(tmp_so, so_path)
        meta = {
            "format": FORMAT_VERSION,
            "compiler": compiler_id,
            "key": key,
        }
        fd, tmp_meta = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2)
        os.replace(tmp_meta, meta_path)
        self.stats["native_stores"] += 1
        return c_path, so_path

    # -- in-process LRU -----------------------------------------------------

    def _memory_get(self, digest):
        portable = self._memory.get(digest)
        if portable is not None:
            self._memory.move_to_end(digest)
        return portable

    def _memory_put(self, digest, portable):
        if self._max_memory == 0:
            return
        self._memory[digest] = portable
        self._memory.move_to_end(digest)
        while len(self._memory) > self._max_memory:
            self._memory.popitem(last=False)

    # -- disk store ---------------------------------------------------------

    def entry_path(self, digest):
        return os.path.join(
            self.root, _version_tag(), digest[:2], digest[2:] + ".simtab"
        )

    def _disk_get(self, digest):
        path = self.entry_path(digest)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            payload = marshal.loads(blob[len(_MAGIC):])
            if payload["meta"].get("format") != FORMAT_VERSION:
                # An entry written by a different (older or newer)
                # format that strayed into this version's namespace is
                # not corruption -- it is simply unusable here.  Treat
                # it as a clean miss and leave it alone.
                self.stats["format_misses"] += 1
                return None
            if payload["meta"]["digest"] != digest:
                raise ValueError("digest mismatch")
            return PortableTable.from_payload(payload["table"])
        except Exception:
            # Truncated, bit-rotted or wrong-format entry: quarantine it
            # and fall back to a plain miss.
            self.stats["corrupt_entries"] += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _disk_put(self, digest, portable):
        path = self.entry_path(digest)
        payload = {
            "meta": {
                "format": FORMAT_VERSION,
                "python": "%d.%d" % sys.version_info[:2],
                "digest": digest,
                "model": portable.model_name,
                "program": portable.program_name,
                "level": portable.level,
                "window": portable.window,
            },
            "table": portable.to_payload(),
        }
        blob = _MAGIC + marshal.dumps(payload)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        # Atomic publish: a concurrent reader sees the old entry or the
        # new one, never a torn write.
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
