"""The simulation compiler: target object code -> simulation table.

The simulation table (the paper's Figure 1) is two-dimensional: one
dimension is the program locations of the target application, the other
holds, per pipeline stage, the operations contributing to the transition
function.  Building it performs, at simulation-compile time:

1. instruction decoding (once per program word),
2. decode-time IF/SWITCH variant resolution,
3. operation sequencing (the per-stage micro-operation schedule),
4. VLIW execute-packet formation,
5. at level ``instantiated``, per-instruction Python code generation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.behavior import ast as bast
from repro.behavior.codegen import BehaviorCodegen
from repro.behavior.evaluator import EvalContext, execute_behavior
from repro.behavior.runtime import CONTROL_INTRINSICS
from repro.coding.decoder import InstructionDecoder
from repro.machine.driver import IssueSlot
from repro.machine.schedule import build_schedule
from repro.machine.packets import packet_extent
from repro.simcc import parallel
from repro.simcc.ir import PythonExecBackend, ops_have_control
from repro.support.errors import ReproError, SimulationError

LEVELS = ("sequenced", "instantiated")


@dataclass
class SimulationTable:
    """The compiled image of one program for one (state, control) pair.

    ``items_by_stage`` carries the decoded (node, behaviour) pairs
    behind each slot for consumers that re-sequence them; it is ``None``
    for tables rehydrated from a
    :class:`repro.simcc.portable.PortableTable` (decoded nodes do not
    survive serialisation).

    ``ir_by_stage`` carries, at level ``instantiated``, the lowered
    :class:`repro.simcc.ir.IRFunction` per packet member and stage --
    the form the static scheduler fuses whole columns from.  Portable
    tables rebuild it on :meth:`~repro.simcc.portable.PortableTable.
    bind`, so cache-rehydrated tables fuse columns too.

    ``schedule_safety`` maps canonical packet starts to hazard verdicts
    from :func:`repro.analysis.schedule_safety` (``hazard_free`` /
    ``conflicting`` / ``unknown``); the static scheduler composes
    columns only over proven regions.  ``None`` (hand-built or legacy
    tables) disables the gate.

    ``proofs`` maps packet starts to
    :class:`repro.analysis.absint.PacketProof` facts (nativisability,
    store-target reachability, per-resource value intervals).  Portable
    tables carry them through :meth:`bind`; ``None`` means no proof is
    available and consumers (guard elision, native admission) must stay
    conservative.
    """

    level: str
    slots: Dict[int, IssueSlot]
    has_control: Dict[int, bool]
    items_by_stage: Optional[Dict[int, Tuple[Tuple[object, ...], ...]]]
    instruction_count: int = 0
    word_count: int = 0
    schedule_safety: Optional[Dict[int, str]] = None
    ir_by_stage: Optional[Dict[int, Tuple[Tuple[object, ...], ...]]] = None
    proofs: Optional[Dict[int, object]] = None

    def slot_at(self, pc):
        slot = self.slots.get(pc)
        if slot is None:
            raise SimulationError(
                "simulation table has no entry for address 0x%x -- the "
                "program left the compiled region (compiled simulation "
                "cannot execute self-modified or unknown code)" % pc
            )
        return slot

    def make_frontend(self, model):
        """A pipeline front-end over this table.

        Unknown addresses yield trap slots instead of raising, so fetches
        past a not-yet-executed halt/branch behave like on the
        interpretive simulator (squashed before they execute).
        """
        from repro.machine.driver import trap_slot

        slots = self.slots

        def frontend(pc):
            slot = slots.get(pc)
            if slot is None:
                return trap_slot(
                    model,
                    "fetch outside the compiled region (pc=0x%x)" % pc,
                )
            return slot

        return frontend


class SimulationCompiler:
    """A processor-specific simulation compiler.

    Instances are produced by
    :func:`repro.simcc.generator.generate_simulation_compiler`; they are
    bound to one machine model and can compile any number of programs.
    """

    def __init__(self, model):
        self._model = model
        self._decoder = InstructionDecoder(model)
        self._depth = model.pipeline.depth

    @property
    def model(self):
        return self._model

    def compile(self, program, state, control, level="sequenced", jobs=None,
                observer=None):
        """Compile ``program`` into a :class:`SimulationTable`.

        The produced micro-operations are bound to ``state`` and
        ``control``; the table is only valid for that pair (this is the
        compiled-simulation trade-off: per-application, per-simulator
        specialisation in exchange for run-time speed).

        ``jobs`` fans the per-word decode/variant-resolve/schedule work
        out over a thread pool (see :mod:`repro.simcc.parallel`); the
        merge is by program order, so the produced table is identical to
        a serial compile.

        ``observer`` records one phase-timing span per simulation-
        compilation step (decoding, sequencing/instantiation, packet
        formation, hazard analysis) plus a ``hazard.verdict`` trace
        event per analysed packet -- the paper's Figure 6 measurement
        as a built-in.
        """
        if level not in LEVELS:
            raise ReproError(
                "unknown simulation level %r (expected one of %s)"
                % (level, ", ".join(LEVELS))
            )
        from repro import obs as _obs

        model = self._model
        pmem_name = model.config.program_memory
        segments = program.segments_in(pmem_name)
        variant_cache = {}
        ctx = EvalContext(state, control, model, variant_cache)
        codegen = BehaviorCodegen(model, variant_cache)

        slots = {}
        has_control = {}
        items_by_stage = {}
        ir_by_stage = {} if level == "instantiated" else None
        instruction_count = 0
        word_count = 0

        with _obs.span(observer, "simcc.compile", level=level):
            for segment in segments:
                words = segment.words
                word_count += len(words)
                base = segment.base
                limit = base + len(words)

                def read_word(address, _words=words, _base=base):
                    return _words[address - _base]

                # Step 1+2+3: decode and schedule every word once.  The
                # per-word results are independent, so this phase fans out.
                def decode_word(task):
                    pc, word = task
                    node = self._decoder.decode(word, address=pc)
                    return self._stage_split(build_schedule(node, model))

                tasks = [
                    (base + offset, word) for offset, word in enumerate(words)
                ]
                with _obs.span(observer, "simcc.decode", words=len(tasks)):
                    staged = parallel.map_tasks(decode_word, tasks, jobs=jobs)
                per_pc = {
                    task[0]: stages for task, stages in zip(tasks, staged)
                }
                instruction_count += len(tasks)

                # Step 5 (level "instantiated"): lower behaviours into
                # SimIR, optimise, and compile via the exec backend.
                ir_per_pc = None
                if level == "instantiated":
                    with _obs.span(observer, "simcc.instantiate",
                                   words=len(per_pc)):
                        instantiated = {
                            pc: self._instantiate(
                                pc, stages, codegen, state, control
                            )
                            for pc, stages in per_pc.items()
                        }
                    bound = {pc: fns for pc, (fns, _) in instantiated.items()}
                    ir_per_pc = {
                        pc: funcs for pc, (_, funcs) in instantiated.items()
                    }
                else:
                    with _obs.span(observer, "simcc.sequence",
                                   words=len(per_pc)):
                        bound = {
                            pc: self._sequence(stages, ctx)
                            for pc, stages in per_pc.items()
                        }

                # Step 4: form execute packets for every possible entry pc.
                with _obs.span(observer, "simcc.packetize",
                               words=limit - base):
                    for pc in range(base, limit):
                        extent = packet_extent(model, read_word, pc, limit)
                        members = range(pc, pc + extent)
                        ops_by_stage = tuple(
                            tuple(
                                itertools.chain.from_iterable(
                                    bound[member][stage]
                                    for member in members
                                )
                            )
                            for stage in range(self._depth)
                        )
                        slots[pc] = IssueSlot(
                            ops_by_stage=ops_by_stage,
                            words=extent,
                            insn_count=extent,
                        )
                        if ir_per_pc is not None:
                            # Exact: lowering already inlined every
                            # sub-operation, so the IR scan sees all
                            # control requests that can run.
                            has_control[pc] = any(
                                ops_have_control(func.ops)
                                for member in members
                                for stage_funcs in ir_per_pc[member]
                                for func in stage_funcs
                            )
                            ir_by_stage[pc] = tuple(
                                tuple(
                                    itertools.chain.from_iterable(
                                        ir_per_pc[member][stage]
                                        for member in members
                                    )
                                )
                                for stage in range(self._depth)
                            )
                        else:
                            has_control[pc] = any(
                                self._stages_have_control(per_pc[member], ctx)
                                for member in members
                            )
                        items_by_stage[pc] = tuple(
                            tuple(
                                itertools.chain.from_iterable(
                                    per_pc[member][stage]
                                    for member in members
                                )
                            )
                            for stage in range(self._depth)
                        )

            from repro.analysis import schedule_safety

            with _obs.span(observer, "simcc.analyze"):
                safety = schedule_safety(model, program)
            if observer is not None and safety:
                for pc, verdict in sorted(safety.items()):
                    observer.on_hazard_verdict(pc, verdict)

        return SimulationTable(
            level=level,
            slots=slots,
            has_control=has_control,
            items_by_stage=items_by_stage,
            instruction_count=instruction_count,
            word_count=word_count,
            schedule_safety=safety,
            ir_by_stage=ir_by_stage,
        )

    def compile_portable(self, program, level="sequenced", jobs=None,
                         observer=None):
        """Compile ``program`` into a state-independent
        :class:`repro.simcc.portable.PortableTable`.

        This is the cacheable form of simulation compilation: the table
        can be serialised, stored, and later bound to any state/control
        pair without re-running the compiler.  ``jobs`` fans the
        per-word codegen out over a process pool.
        """
        from repro.simcc.portable import build_portable_table

        return build_portable_table(self._model, program, level, jobs=jobs,
                                    observer=observer)

    # -- helpers -------------------------------------------------------------

    def _stage_split(self, schedule):
        """Split a schedule into per-stage tuples of (node, behavior)."""
        stages = [[] for _ in range(self._depth)]
        for item in schedule:
            stages[item.stage].append((item.node, item.behavior))
        return tuple(tuple(stage) for stage in stages)

    def _sequence(self, stages, ctx):
        """Level 2 binding: pre-bound behaviour executions per stage."""
        bound = []
        for stage_items in stages:
            fns = []
            for node, behavior in stage_items:
                fns.append(_BoundBehavior(behavior.statements, node, ctx))
            bound.append(tuple(fns))
        return tuple(bound)

    def _instantiate(self, pc, stages, codegen, state, control):
        """Level 3 binding: lower each occupied stage into one optimised
        :class:`repro.simcc.ir.IRFunction`, compile it through the exec
        backend, and keep the IR for static column fusion.

        Returns ``(bound, funcs)`` -- parallel per-stage tuples of
        compiled callables and their lowered IR."""
        backend = PythonExecBackend()
        bound = []
        funcs = []
        for stage, stage_items in enumerate(stages):
            if not stage_items:
                bound.append(())
                funcs.append(())
                continue
            func = codegen.lower_function(
                "insn_%x_stage_%d" % (pc, stage), stage_items
            )
            bound.append((backend.compile_function(func, state, control),))
            funcs.append((func,))
        return tuple(bound), tuple(funcs)

    def _stages_have_control(self, stages, ctx):
        return any(
            _behavior_has_control(behavior.statements, node, ctx)
            for stage_items in stages
            for node, behavior in stage_items
        )


class _BoundBehavior:
    """A pre-bound behaviour execution (level-2 micro-operation).

    Equivalent to ``functools.partial(execute_behavior, ...)`` but also
    carries its binding for inspection by tests and the emitter.
    """

    __slots__ = ("statements", "node", "ctx")

    def __init__(self, statements, node, ctx):
        self.statements = statements
        self.node = node
        self.ctx = ctx

    def __call__(self):
        execute_behavior(self.statements, self.node, self.ctx)


def _behavior_has_control(statements, node, ctx, _depth=0):
    """Whether behaviour statements may raise pipeline-control requests.

    Used to keep control-capable instructions out of statically scheduled
    columns (where same-cycle flush semantics could not be honoured).
    Recurses into sub-operation invocations using the decoded context.
    """
    if _depth > 16:
        return True  # pathological nesting: be conservative
    for stmt in statements:
        for node_ast in bast.walk(stmt):
            if not isinstance(node_ast, bast.Call):
                continue
            if node_ast.name in CONTROL_INTRINSICS:
                return True
            # A call that is not an intrinsic is a sub-operation
            # invocation; scan the selected child's behaviours.
            child = node.children.get(node_ast.name)
            if child is None and node_ast.name in node.operation.references:
                kind, payload = node.lookup(node_ast.name)
                child = payload if kind == "child" else None
            if child is not None:
                variant = ctx.variant_of(child)
                for behavior in variant.behaviors:
                    if _behavior_has_control(
                        behavior.statements, child, ctx, _depth + 1
                    ):
                        return True
    return False
