"""The simulation-compiler generator.

In the paper this step emits C++ source for a processor-specific
simulation compiler.  Here the "generation" step specialises and
validates a :class:`repro.simcc.compiler.SimulationCompiler` for the
model: it pre-computes coding layouts, exercises the decoder over every
reachable operation variant, and verifies that every behaviour can be
code-generated -- so that simulation compilation itself can never fail
on a legal program.  (A textual artefact can still be produced with
:func:`repro.simcc.emit.emit_simulator_module`.)
"""

from __future__ import annotations

from repro.coding.layout import layout_of
from repro.simcc.compiler import SimulationCompiler
from repro.support.errors import ReproError


def generate_simulation_compiler(model, validate=True):
    """Generate the processor-specific simulation compiler for ``model``."""
    if validate:
        _validate_codings(model)
    return SimulationCompiler(model)


def _validate_codings(model):
    """Force layout computation for every coded operation.

    This is the part of "generating the simulation compiler" that can
    fail: inconsistent codings surface here, at generation time, rather
    than during simulation compilation of some unlucky program.
    """
    problems = []
    for operation in model.operations.values():
        if not operation.has_coding:
            continue
        try:
            layout_of(operation)
        except ReproError as exc:  # collect all problems, report together
            problems.append("%s: %s" % (operation.name, exc))
    if problems:
        raise ReproError(
            "cannot generate simulation compiler for model %r:\n  %s"
            % (model.name, "\n  ".join(problems))
        )
