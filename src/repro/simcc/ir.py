"""SimIR: the typed micro-operation IR between sequencing and emission.

The paper's operation-instantiation step (Section 3, step 3) is a
*translation*: decoded operations become specialised code.  SimIR makes
that translation explicit.  Instead of three independent
string-generating paths (the exec'd function path, the standalone
module emitter, and the static column fusion) that had to agree
bit-for-bit while sharing no representation, behaviours now lower into
one small typed IR:

* decode-time constants (:class:`Const`) -- coding fields, defines and
  selected sub-operation expressions folded at simulation-compile time,
* resource reads/writes (:class:`ReadReg`/:class:`ReadElem`/
  :class:`WriteReg`/:class:`WriteElem`) carrying the declared width of
  the storage they touch,
* ALU operations (:class:`Alu`, :class:`Unary`, :class:`Intrinsic`,
  :class:`Select`) over unbounded integers,
* control intrinsics (:class:`Control`) targeting the pipeline-control
  object, and
* guards and loops (:class:`Guard`, :class:`Loop`) for run-time
  conditional behaviour.

A pass pipeline (:func:`run_passes`) optimises the lowered form --
constant folding of decoded operands, width-canonicalisation
coalescing, dead local/resource-write elimination, runtime-helper
hoisting -- and two backends consume the *same* lowered IR:

* :class:`PythonExecBackend` renders an :class:`IRFunction` and
  ``compile``/``exec``\\ s it in-process (the compiled simulator and the
  static column fuser), and
* :class:`ModuleBackend` renders the functions as standalone
  module-level source (the emitted simulator module).

Because both backends render from the same lowered ops, their outputs
are bit-identical by construction -- the cross-backend matrix in the
test suite asserts it on every application x model pair.  The IR is
also the persistence format: portable tables and the on-disk cache
store IR payloads (:func:`function_to_payload`), not source text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.behavior import ast as bast
from repro.behavior.runtime import (
    CODEGEN_GLOBALS,
    CODEGEN_INTRINSIC_NAMES,
    CONTROL_INTRINSICS,
    PURE_INTRINSICS,
)
from repro.support.bitutils import canonical_source, canonicalize
from repro.support.errors import BehaviorError

#: Prefix distinguishing behaviour-local variables in rendered source.
LOCAL_PREFIX = "_l_"

#: Inline-depth limit for sub-operation expansion during lowering.
MAX_LOWER_DEPTH = 64

_CMP_OPS = frozenset(["==", "!=", "<", ">", "<=", ">="])
_PLAIN_OPS = frozenset(["+", "-", "*", "&", "|", "^", "<<", ">>"])
_BOOL_OPS = frozenset(["&&", "||"])
_ALU_OPS = _PLAIN_OPS | _CMP_OPS | _BOOL_OPS | frozenset(["/", "%"])


class LoweringLimit(BehaviorError):
    """Sub-operation nesting exceeded the lowering depth limit."""


# ---------------------------------------------------------------------------
# IR nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Value:
    """Base class of SimIR value (expression) nodes."""


@dataclass(frozen=True)
class Const(Value):
    """A decode-time constant: coding field, define, or folded result."""

    value: int


@dataclass(frozen=True)
class ReadReg(Value):
    """Read a scalar register resource."""

    name: str


@dataclass(frozen=True)
class ReadElem(Value):
    """Read one element of a register file or memory."""

    resource: str
    index: Value


@dataclass(frozen=True)
class ReadLocal(Value):
    """Read a behaviour-local variable."""

    name: str


@dataclass(frozen=True)
class Unary(Value):
    """Unary ALU operation: ``-``, ``~`` or ``!``."""

    op: str
    operand: Value


@dataclass(frozen=True)
class Alu(Value):
    """Binary ALU operation over unbounded integers.

    Comparison and logical operators produce 0/1; division and modulo
    follow C semantics (truncation toward zero).
    """

    op: str
    left: Value
    right: Value


@dataclass(frozen=True)
class Intrinsic(Value):
    """A pure behaviour intrinsic (sext/zext/sat/abs/min/max)."""

    name: str
    args: Tuple[Value, ...]


@dataclass(frozen=True)
class Select(Value):
    """Ternary select: ``if_true if cond else if_false``."""

    cond: Value
    if_true: Value
    if_false: Value


@dataclass(frozen=True)
class MicroOp:
    """Base class of SimIR micro-operation (statement) nodes."""


@dataclass(frozen=True)
class WriteReg(MicroOp):
    """Write a scalar register, canonicalising to the declared width.

    ``width`` is ``None`` when a pass proved the value already
    canonical (or the target needs no canonicalisation); the backends
    then emit a raw store.  ``augmented`` marks read-modify-write
    updates lowered from ``op=`` assignments (the read is already part
    of ``value``; the flag only informs analyses).
    """

    name: str
    value: Value
    width: Optional[int] = None
    signed: bool = False
    augmented: bool = False


@dataclass(frozen=True)
class WriteElem(MicroOp):
    """Write one element of a register file or memory."""

    resource: str
    index: Value
    value: Value
    width: Optional[int] = None
    signed: bool = False
    augmented: bool = False


@dataclass(frozen=True)
class WriteLocal(MicroOp):
    """Write a behaviour-local variable (unbounded, never canonicalised)."""

    name: str
    value: Value


@dataclass(frozen=True)
class Control(MicroOp):
    """Invoke a pipeline-control intrinsic (flush/stall/halt)."""

    method: str  # the PipelineControl method name
    args: Tuple[Value, ...]


@dataclass(frozen=True)
class Guard(MicroOp):
    """Run-time conditional: execute ``then_ops`` or ``else_ops``."""

    cond: Value
    then_ops: Tuple[MicroOp, ...]
    else_ops: Tuple[MicroOp, ...] = ()


@dataclass(frozen=True)
class Loop(MicroOp):
    """Run-time while loop."""

    cond: Value
    body: Tuple[MicroOp, ...]


@dataclass(frozen=True)
class Eval(MicroOp):
    """Evaluate a value for completeness (trap parity with the
    evaluator: an expression statement may still fault)."""

    value: Value


@dataclass
class IRFunction:
    """One lowered micro-operation function (a (pc, stage) cell or a
    fused column).

    ``helpers`` holds the mangled runtime-helper names the body uses
    (``__sext`` etc.), filled in by :func:`hoist_helpers`; backends bind
    them as default parameters so the hot path uses local loads.
    """

    name: str
    ops: Tuple[MicroOp, ...]
    helpers: Tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# Lowering: behaviour AST x decoded operand context -> SimIR
# ---------------------------------------------------------------------------


class Lowerer:
    """Lowers decoded behaviours into SimIR micro-operations.

    Performs, at lowering time, exactly the resolution the former
    string generator performed: coding fields fold to :class:`Const`,
    group operands inline the selected sub-operation's EXPRESSION,
    sub-operation invocations splice the child's behaviours in, and
    resource writes pick up the declared width of their target.
    """

    def __init__(self, model, variant_cache=None, depth_limit=MAX_LOWER_DEPTH):
        self._model = model
        self._variant_cache = variant_cache if variant_cache is not None \
            else {}
        self._depth_limit = depth_limit

    # -- entry points -------------------------------------------------------

    def lower_items(self, scheduled_items):
        """Lower (node, behaviour) pairs that run back to back."""
        ops = []
        for node, behavior in scheduled_items:
            ops.extend(self.lower_statements(behavior.statements, node, 0))
        return tuple(ops)

    def lower_statements(self, statements, node, depth=0):
        ops = []
        for stmt in statements:
            ops.extend(self._stmt(stmt, node, depth))
        return ops

    # -- statements ---------------------------------------------------------

    def _stmt(self, stmt, node, depth):
        if isinstance(stmt, bast.Assign):
            return [self._assign(stmt, node, depth)]
        if isinstance(stmt, bast.ExprStmt):
            return self._expr_stmt(stmt.expression, node, depth)
        if isinstance(stmt, bast.LocalDecl):
            init = Const(0)
            if stmt.init is not None:
                init = self._expr(stmt.init, node, depth)
            return [WriteLocal(stmt.name, init)]
        if isinstance(stmt, bast.If):
            return [Guard(
                cond=self._expr(stmt.condition, node, depth),
                then_ops=tuple(
                    self.lower_statements(stmt.then_body, node, depth)
                ),
                else_ops=tuple(
                    self.lower_statements(stmt.else_body, node, depth)
                ),
            )]
        if isinstance(stmt, bast.While):
            return [Loop(
                cond=self._expr(stmt.condition, node, depth),
                body=tuple(self.lower_statements(stmt.body, node, depth)),
            )]
        if isinstance(stmt, bast.Block):
            return self.lower_statements(stmt.body, node, depth)
        raise BehaviorError("cannot lower statement %r" % (stmt,), None)

    def _expr_stmt(self, expr, node, depth):
        if isinstance(expr, bast.Call):
            control_method = CONTROL_INTRINSICS.get(expr.name)
            if control_method is not None:
                return [Control(
                    method=control_method,
                    args=tuple(
                        self._expr(a, node, depth) for a in expr.args
                    ),
                )]
            operand = self._operand(expr.name, node)
            if operand is not None and operand[0] == "child":
                # Inline the selected sub-operation's behaviours.
                child = operand[1]
                if depth >= self._depth_limit:
                    raise LoweringLimit(
                        "sub-operation nesting exceeds %d levels"
                        % self._depth_limit, None
                    )
                variant = self._variant(child)
                ops = []
                for behavior in variant.behaviors:
                    ops.extend(self.lower_statements(
                        behavior.statements, child, depth + 1
                    ))
                return ops
            if expr.name in PURE_INTRINSICS:
                return []  # pure call in statement position: no effect
        return [Eval(self._expr(expr, node, depth))]

    def _assign(self, stmt, node, depth):
        value = self._expr(stmt.value, node, depth)
        location = self._resolve_lvalue(stmt.target, node, depth)
        kind = location[0]
        augmented = stmt.op != "="
        if augmented:
            value = Alu(stmt.op[:-1], self._location_read(location), value)
        if kind == "local":
            return WriteLocal(location[1], value)
        if kind == "reg":
            _, name, dtype = location
            return WriteReg(name, value, width=dtype.width,
                            signed=dtype.signed, augmented=augmented)
        _, resource, index, dtype = location
        return WriteElem(resource, index, value, width=dtype.width,
                         signed=dtype.signed, augmented=augmented)

    def _resolve_lvalue(self, target, node, depth):
        """Resolve an assignment target to a storage location tuple:
        ``("reg", name, dtype)``, ``("elem", resource, index, dtype)``
        or ``("local", name)``."""
        if isinstance(target, bast.Name):
            name = target.name
            operand = self._operand(name, node)
            if operand is not None:
                kind, payload = operand
                if kind == "label":
                    raise BehaviorError(
                        "cannot assign to coding field %r" % name,
                        target.location,
                    )
                child = payload
                variant = self._variant(child)
                if variant.expression is None:
                    raise BehaviorError(
                        "operand %r (operation %r) has no EXPRESSION to "
                        "assign through" % (name, child.operation.name),
                        target.location,
                    )
                return self._resolve_lvalue(
                    variant.expression.expression, child, depth
                )
            reg = self._model.registers.get(name)
            if reg is not None and not reg.is_file:
                return ("reg", name, reg.dtype)
            # Anything else writable by name is a behaviour-local.
            return ("local", name)
        if isinstance(target, bast.Index):
            base = target.base
            index = self._expr(target.index, node, depth)
            reg = self._model.registers.get(base)
            if reg is not None and reg.is_file:
                return ("elem", base, index, reg.dtype)
            mem = self._model.memories.get(base)
            if mem is not None:
                return ("elem", base, index, mem.dtype)
            raise BehaviorError(
                "cannot index-assign to %r" % base, target.location
            )
        raise BehaviorError("invalid assignment target %r" % (target,), None)

    @staticmethod
    def _location_read(location):
        if location[0] == "local":
            return ReadLocal(location[1])
        if location[0] == "reg":
            return ReadReg(location[1])
        return ReadElem(location[1], location[2])

    # -- expressions --------------------------------------------------------

    def _variant(self, node):
        # Keyed by identity, with the node pinned in the entry: ids are
        # only unique among live objects, and analysis passes feed this
        # cache transient nodes whose ids would otherwise be recycled.
        key = id(node)
        entry = self._variant_cache.get(key)
        if entry is None or entry[0] is not node:
            entry = (node, node.variant(self._model))
            self._variant_cache[key] = entry
        return entry[1]

    def _operand(self, name, node):
        if name in node.fields:
            return ("label", node.fields[name])
        if name in node.children:
            return ("child", node.children[name])
        if name in node.operation.references:
            return node.lookup(name)
        return None

    def _expr(self, expr, node, depth):
        if isinstance(expr, bast.IntLit):
            return Const(expr.value)
        if isinstance(expr, bast.Name):
            return self._name(expr, node, depth)
        if isinstance(expr, bast.Index):
            base = expr.base
            model = self._model
            reg = model.registers.get(base)
            mem = model.memories.get(base)
            if (reg is not None and reg.is_file) or mem is not None:
                return ReadElem(base, self._expr(expr.index, node, depth))
            raise BehaviorError(
                "%r is not an indexable resource" % base, expr.location
            )
        if isinstance(expr, bast.Unary):
            return Unary(expr.op, self._expr(expr.operand, node, depth))
        if isinstance(expr, bast.Binary):
            if expr.op not in _ALU_OPS:
                raise BehaviorError(
                    "unknown binary operator %r" % expr.op, None
                )
            return Alu(
                expr.op,
                self._expr(expr.left, node, depth),
                self._expr(expr.right, node, depth),
            )
        if isinstance(expr, bast.Ternary):
            return Select(
                cond=self._expr(expr.condition, node, depth),
                if_true=self._expr(expr.if_true, node, depth),
                if_false=self._expr(expr.if_false, node, depth),
            )
        if isinstance(expr, bast.Call):
            return self._call(expr, node, depth)
        raise BehaviorError("cannot lower expression %r" % (expr,), None)

    def _name(self, expr, node, depth):
        name = expr.name
        operand = self._operand(name, node)
        if operand is not None:
            kind, payload = operand
            if kind == "label":
                return Const(payload)  # constant folding of coding fields
            child = payload
            if depth >= self._depth_limit:
                raise LoweringLimit(
                    "sub-operation nesting exceeds %d levels"
                    % self._depth_limit, None
                )
            variant = self._variant(child)
            if variant.expression is None:
                raise BehaviorError(
                    "operand %r (operation %r) has no EXPRESSION"
                    % (name, child.operation.name),
                    expr.location,
                )
            return self._expr(
                variant.expression.expression, child, depth + 1
            )
        reg = self._model.registers.get(name)
        if reg is not None:
            if reg.is_file:
                raise BehaviorError(
                    "register file %r used without index" % name,
                    expr.location,
                )
            return ReadReg(name)
        if name in self._model.config.defines:
            return Const(self._model.config.defines[name])
        # Otherwise this must be a behaviour-local variable.
        return ReadLocal(name)

    def _call(self, expr, node, depth):
        if expr.name in PURE_INTRINSICS:
            return Intrinsic(
                expr.name,
                tuple(self._expr(a, node, depth) for a in expr.args),
            )
        if expr.name in CONTROL_INTRINSICS:
            raise BehaviorError(
                "control intrinsic %r() cannot be used as a value"
                % expr.name,
                expr.location,
            )
        operand = self._operand(expr.name, node)
        if operand is not None and operand[0] == "child":
            raise BehaviorError(
                "sub-operation call %r() is only allowed as a standalone "
                "statement" % expr.name,
                expr.location,
            )
        raise BehaviorError(
            "unknown callable %r in behaviour" % expr.name, expr.location
        )


# ---------------------------------------------------------------------------
# IR inspection helpers
# ---------------------------------------------------------------------------


def walk_values(value):
    """Yield ``value`` and every nested value node."""
    yield value
    if isinstance(value, ReadElem):
        yield from walk_values(value.index)
    elif isinstance(value, Unary):
        yield from walk_values(value.operand)
    elif isinstance(value, Alu):
        yield from walk_values(value.left)
        yield from walk_values(value.right)
    elif isinstance(value, Intrinsic):
        for arg in value.args:
            yield from walk_values(arg)
    elif isinstance(value, Select):
        yield from walk_values(value.cond)
        yield from walk_values(value.if_true)
        yield from walk_values(value.if_false)


def walk_ops(ops):
    """Yield every micro-op in ``ops``, recursing into guards/loops."""
    for op in ops:
        yield op
        if isinstance(op, Guard):
            yield from walk_ops(op.then_ops)
            yield from walk_ops(op.else_ops)
        elif isinstance(op, Loop):
            yield from walk_ops(op.body)


def op_values(op):
    """Yield the top-level value nodes of one micro-op (not recursing
    into nested guard/loop bodies)."""
    if isinstance(op, (WriteReg, WriteLocal)):
        yield op.value
    elif isinstance(op, WriteElem):
        yield op.index
        yield op.value
    elif isinstance(op, Control):
        yield from op.args
    elif isinstance(op, Guard):
        yield op.cond
    elif isinstance(op, Loop):
        yield op.cond
    elif isinstance(op, Eval):
        yield op.value


def ops_have_control(ops):
    """Whether any micro-op (at any nesting depth) is a control request.

    Exact (not conservative): lowering has already inlined every
    sub-operation, so scanning the ops sees everything that can run.
    """
    return any(isinstance(op, Control) for op in walk_ops(ops))


def read_cells(value):
    """Architectural cells a value reads: ``(resource, element)`` pairs
    where ``element`` is a decimal string for a constant index, ``"*"``
    for a computed one, and ``None`` for a scalar register."""
    cells = set()
    for node in walk_values(value):
        if isinstance(node, ReadReg):
            cells.add((node.name, None))
        elif isinstance(node, ReadElem):
            index = node.index
            if isinstance(index, Const):
                cells.add((node.resource, str(index.value)))
            else:
                cells.add((node.resource, "*"))
    return cells


def write_cell(op):
    """The cell a write micro-op targets, or None for local writes."""
    if isinstance(op, WriteReg):
        return (op.name, None)
    if isinstance(op, WriteElem):
        if isinstance(op.index, Const):
            return (op.resource, str(op.index.value))
        return (op.resource, "*")
    return None


def value_locals(value):
    """Names of behaviour-locals a value reads."""
    return {
        node.name for node in walk_values(value)
        if isinstance(node, ReadLocal)
    }


# ---------------------------------------------------------------------------
# Pass pipeline
# ---------------------------------------------------------------------------


class PassStats(dict):
    """Counter dict recording what each pass did (for tests, the IR
    dump, and the observability layer)."""

    def bump(self, key, amount=1):
        self[key] = self.get(key, 0) + amount


def _fold_alu(op, left, right):
    """Fold a binary ALU op over two constants, or return None when the
    fold is unsafe (division by zero, negative shift)."""
    if op == "/":
        return None if right == 0 else _c_idiv(left, right)
    if op == "%":
        return None if right == 0 else left - _c_idiv(left, right) * right
    if op in ("<<", ">>") and right < 0:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "&&":
        return 1 if (left and right) else 0
    if op == "||":
        return 1 if (left or right) else 0
    raise BehaviorError("unknown binary operator %r" % op, None)


def _c_idiv(a, b):
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _fold_value(value, stats):
    if isinstance(value, ReadElem):
        return ReadElem(value.resource, _fold_value(value.index, stats))
    if isinstance(value, Unary):
        operand = _fold_value(value.operand, stats)
        if isinstance(operand, Const):
            stats.bump("const_folds")
            if value.op == "-":
                return Const(-operand.value)
            if value.op == "~":
                return Const(~operand.value)
            return Const(0 if operand.value else 1)
        return Unary(value.op, operand)
    if isinstance(value, Alu):
        left = _fold_value(value.left, stats)
        right = _fold_value(value.right, stats)
        if isinstance(left, Const) and isinstance(right, Const):
            folded = _fold_alu(value.op, left.value, right.value)
            if folded is not None:
                stats.bump("const_folds")
                return Const(folded)
        elif isinstance(left, Const) and value.op in _BOOL_OPS:
            # Short-circuit semantics: a constant left side either
            # decides the result or reduces to a boolean test of the
            # right side (which must still evaluate, for trap parity).
            stats.bump("const_folds")
            if value.op == "&&" and not left.value:
                return Const(0)
            if value.op == "||" and left.value:
                return Const(1)
            return _fold_value(Alu("!=", right, Const(0)), stats)
        return Alu(value.op, left, right)
    if isinstance(value, Intrinsic):
        args = tuple(_fold_value(a, stats) for a in value.args)
        if all(isinstance(a, Const) for a in args):
            try:
                folded = PURE_INTRINSICS[value.name](
                    *[a.value for a in args]
                )
            except Exception:
                folded = None  # fold failure surfaces at run-time
            if folded is not None:
                stats.bump("const_folds")
                return Const(folded)
        return Intrinsic(value.name, args)
    if isinstance(value, Select):
        cond = _fold_value(value.cond, stats)
        if isinstance(cond, Const):
            stats.bump("const_folds")
            branch = value.if_true if cond.value else value.if_false
            return _fold_value(branch, stats)
        return Select(cond, _fold_value(value.if_true, stats),
                      _fold_value(value.if_false, stats))
    return value


def _fold_op(op, stats):
    """Fold one micro-op; returns a list (guards can splice away)."""
    if isinstance(op, WriteReg):
        return [WriteReg(op.name, _fold_value(op.value, stats),
                         op.width, op.signed, op.augmented)]
    if isinstance(op, WriteElem):
        return [WriteElem(op.resource, _fold_value(op.index, stats),
                          _fold_value(op.value, stats),
                          op.width, op.signed, op.augmented)]
    if isinstance(op, WriteLocal):
        return [WriteLocal(op.name, _fold_value(op.value, stats))]
    if isinstance(op, Control):
        return [Control(op.method,
                        tuple(_fold_value(a, stats) for a in op.args))]
    if isinstance(op, Guard):
        cond = _fold_value(op.cond, stats)
        then_ops = _fold_ops(op.then_ops, stats)
        else_ops = _fold_ops(op.else_ops, stats)
        if isinstance(cond, Const):
            stats.bump("const_folds")
            return list(then_ops if cond.value else else_ops)
        return [Guard(cond, then_ops, else_ops)]
    if isinstance(op, Loop):
        cond = _fold_value(op.cond, stats)
        if isinstance(cond, Const) and not cond.value:
            stats.bump("const_folds")
            return []
        return [Loop(cond, _fold_ops(op.body, stats))]
    if isinstance(op, Eval):
        value = _fold_value(op.value, stats)
        if isinstance(value, Const):
            stats.bump("const_folds")
            return []  # a constant expression statement cannot trap
        return [Eval(value)]
    raise BehaviorError("cannot fold micro-op %r" % (op,), None)


def _fold_ops(ops, stats):
    out = []
    for op in ops:
        out.extend(_fold_op(op, stats))
    return tuple(out)


def fold_constants(func, model, stats):
    """Evaluate decode-time-constant subtrees at compile time."""
    func.ops = _fold_ops(func.ops, stats)
    return func


def _range_of(width, signed):
    if signed:
        return (-(1 << (width - 1)), (1 << (width - 1)) - 1)
    return (0, (1 << width) - 1)


def _range_fits(src, dst):
    return src[0] >= dst[0] and src[1] <= dst[1]


def _resource_dtype(model, name):
    reg = model.registers.get(name)
    if reg is not None:
        return reg.dtype
    mem = model.memories.get(name)
    if mem is not None:
        return mem.dtype
    return None


def _value_range(value, model):
    """A proven (lo, hi) range of ``value``, or None when unknown.

    Relies on the state invariant that resources always hold canonical
    values of their declared type (writers canonicalise).
    """
    if isinstance(value, Const):
        return (value.value, value.value)
    if isinstance(value, ReadReg):
        dtype = _resource_dtype(model, value.name)
        if dtype is not None:
            return _range_of(dtype.width, dtype.signed)
        return None
    if isinstance(value, ReadElem):
        dtype = _resource_dtype(model, value.resource)
        if dtype is not None:
            return _range_of(dtype.width, dtype.signed)
        return None
    if isinstance(value, Alu):
        if value.op in _CMP_OPS or value.op in _BOOL_OPS:
            return (0, 1)
        if value.op == "&":
            for side in (value.left, value.right):
                if isinstance(side, Const) and side.value >= 0:
                    return (0, side.value)
        return None
    if isinstance(value, Intrinsic) and len(value.args) == 2 and \
            isinstance(value.args[1], Const):
        width = value.args[1].value
        if width >= 1:
            if value.name == "zext":
                return (0, (1 << width) - 1)
            if value.name in ("sext", "sat"):
                return _range_of(width, True)
        return None
    if isinstance(value, Select):
        left = _value_range(value.if_true, model)
        right = _value_range(value.if_false, model)
        if left is not None and right is not None:
            return (min(left[0], right[0]), max(left[1], right[1]))
        return None
    return None


def coalesce_canonicalisation(func, model, stats):
    """Drop write canonicalisation the value provably does not need.

    A write whose value is already canonical for the declared width
    (a same-typed resource read, a ``zext``/``sext``/``sat`` of a
    narrower width, a 0/1 comparison result, a masked value, or a
    constant folded to canonical form) becomes a raw store.
    """

    def rewrite(op):
        if isinstance(op, (WriteReg, WriteElem)) and op.width is not None:
            if isinstance(op.value, Const):
                stats.bump("canon_coalesced")
                folded = Const(canonicalize(op.value.value, op.width,
                                            op.signed))
                if isinstance(op, WriteReg):
                    return WriteReg(op.name, folded, None, False,
                                    op.augmented)
                return WriteElem(op.resource, op.index, folded, None,
                                 False, op.augmented)
            value_range = _value_range(op.value, model)
            if value_range is not None and _range_fits(
                value_range, _range_of(op.width, op.signed)
            ):
                stats.bump("canon_coalesced")
                if isinstance(op, WriteReg):
                    return WriteReg(op.name, op.value, None, False,
                                    op.augmented)
                return WriteElem(op.resource, op.index, op.value, None,
                                 False, op.augmented)
            return op
        if isinstance(op, Guard):
            return Guard(op.cond,
                         tuple(rewrite(o) for o in op.then_ops),
                         tuple(rewrite(o) for o in op.else_ops))
        if isinstance(op, Loop):
            return Loop(op.cond, tuple(rewrite(o) for o in op.body))
        return op

    func.ops = tuple(rewrite(op) for op in func.ops)
    return func


def _trap_free(value):
    """Whether evaluating ``value`` can never raise (so it is safe to
    elide).  Element reads may be out of range, division may divide by
    zero and shifts may see negative counts; everything else is total."""
    if isinstance(value, (Const, ReadReg, ReadLocal)):
        return True
    if isinstance(value, Unary):
        return _trap_free(value.operand)
    if isinstance(value, Alu):
        if value.op in ("/", "%"):
            if not (isinstance(value.right, Const) and value.right.value):
                return False
            return _trap_free(value.left)
        if value.op in ("<<", ">>"):
            if not (isinstance(value.right, Const)
                    and value.right.value >= 0):
                return False
            return _trap_free(value.left)
        return _trap_free(value.left) and _trap_free(value.right)
    if isinstance(value, Intrinsic):
        if value.name in ("sext", "zext", "sat"):
            if len(value.args) != 2:
                return False
            width = value.args[1]
            if not (isinstance(width, Const) and width.value >= 1):
                return False
            return _trap_free(value.args[0])
        if value.name in ("abs", "min", "max"):
            return all(_trap_free(a) for a in value.args)
        return False
    if isinstance(value, Select):
        return (_trap_free(value.cond) and _trap_free(value.if_true)
                and _trap_free(value.if_false))
    return False  # ReadElem and anything unknown


def _op_reads(op):
    """(cells, locals) one micro-op may read, recursing into nested
    guard/loop bodies conservatively (their writes also count as reads
    because execution is conditional)."""
    cells = set()
    local_names = set()
    for nested in walk_ops([op]):
        for value in op_values(nested):
            cells |= read_cells(value)
            local_names |= value_locals(value)
        if nested is not op and not isinstance(nested, Eval):
            # A conditional write inside this op may or may not happen:
            # treat its target as live-making (read-like) too.
            cell = write_cell(nested)
            if cell is not None:
                cells.add(cell)
            if isinstance(nested, WriteLocal):
                local_names.add(nested.name)
    return cells, local_names


def _cells_touch(cell_a, cell_b):
    if cell_a[0] != cell_b[0]:
        return False
    return cell_a[1] == cell_b[1] or cell_a[1] == "*" or cell_b[1] == "*"


def eliminate_dead_writes(func, model, stats):
    """Remove writes whose stored value can never be observed.

    Within one linear micro-op sequence (a per-stage function, or a
    statically scheduled column where several instructions' ops run
    back to back), a resource write that is overwritten by a later
    unconditional write to the same exact cell -- with no potentially
    reading op in between -- is dead.  A behaviour-local write never
    read before the end of the sequence (locals do not survive the
    function) or before an unconditional overwrite is likewise dead.
    Only trap-free values are elided, preserving fault parity with the
    unoptimised form.
    """
    ops = list(func.ops)
    keep = [True] * len(ops)
    for i, op in enumerate(ops):
        cell = None
        local_name = None
        if isinstance(op, (WriteReg, WriteElem)):
            cell = write_cell(op)
            if cell is None or cell[1] == "*":
                continue  # computed index: never provably dead
            if not _trap_free(op.value):
                continue
            if isinstance(op, WriteElem) and not _trap_free(op.index):
                continue
        elif isinstance(op, WriteLocal):
            local_name = op.name
            if not _trap_free(op.value):
                continue
        else:
            continue
        dead = None
        for later in ops[i + 1:]:
            later_cells, later_locals = _op_reads(later)
            if cell is not None and any(
                _cells_touch(cell, read) for read in later_cells
            ):
                dead = False
                break
            if local_name is not None and local_name in later_locals:
                dead = False
                break
            if isinstance(later, Control):
                # Control requests do not read architectural state, but
                # a halt/flush ends or reshapes execution: keep prior
                # resource writes observable.  Locals stay private.
                if cell is not None:
                    dead = False
                    break
                continue
            if cell is not None and isinstance(later, (WriteReg, WriteElem)):
                if write_cell(later) == cell:
                    dead = True
                    break
            if local_name is not None and isinstance(later, WriteLocal):
                if later.name == local_name:
                    dead = True
                    break
        if dead is None:
            # Reached the end of the sequence: architectural writes
            # escape; locals die with the function.
            dead = local_name is not None
        if dead:
            keep[i] = False
            stats.bump("dead_writes_removed")
    if not all(keep):
        func.ops = tuple(
            op for op, keep_op in zip(ops, keep) if keep_op
        )
    return func


#: Mangled runtime-helper spelling for each pure intrinsic, plus the
#: C-division helpers used by ``/`` and ``%``.
_HELPER_FOR_ALU = {"/": "__idiv", "%": "__imod"}


def hoist_helpers(func, model, stats):
    """Record which runtime helpers the body calls.

    Backends bind the helpers as trailing default parameters, turning
    per-call global-dict lookups into local loads in the hot path.
    """
    helpers = set()
    for op in walk_ops(func.ops):
        for top in op_values(op):
            for value in walk_values(top):
                if isinstance(value, Intrinsic):
                    helpers.add(CODEGEN_INTRINSIC_NAMES[value.name])
                elif isinstance(value, Alu) and value.op in _HELPER_FOR_ALU:
                    helpers.add(_HELPER_FOR_ALU[value.op])
    func.helpers = tuple(sorted(helpers))
    if helpers:
        stats.bump("helpers_hoisted", len(helpers))
    return func


DEFAULT_PASSES = (
    fold_constants,
    coalesce_canonicalisation,
    eliminate_dead_writes,
    hoist_helpers,
)


def run_passes(func, model, passes=DEFAULT_PASSES, stats=None):
    """Run the pass pipeline over one :class:`IRFunction` in place.

    When IR verification is enabled (tests, ``--verify-ir``, or
    ``REPRO_VERIFY_IR=1``), the function is verified before the first
    pass and after every pass, so a pass bug fails loudly with the name
    of the pass that introduced it instead of miscompiling.
    """
    if stats is None:
        stats = PassStats()
    from repro.simcc import verify as _verify  # lazy: verify imports ir

    checking = _verify.enabled()
    if checking:
        _verify.verify_function(func, model, context="pre-pass")
    for pipeline_pass in passes:
        func = pipeline_pass(func, model, stats)
        if checking:
            _verify.verify_function(
                func, model, context="after %s" % pipeline_pass.__name__
            )
    return func


def optimize_column(name, ops, model, stats=None):
    """Optimise a fused static column (ops of several instructions run
    back to back) and return it as a ready-to-render function.

    Per-function passes already ran when the cells were lowered; the
    column composition opens exactly one new opportunity -- writes made
    dead by a *younger instruction in the same cycle* -- so dead-write
    elimination runs again over the concatenated sequence.
    """
    func = IRFunction(name=name, ops=tuple(ops))
    return run_passes(
        func, model,
        passes=(eliminate_dead_writes, hoist_helpers),
        stats=stats,
    )


# ---------------------------------------------------------------------------
# Rendering (shared by both backends)
# ---------------------------------------------------------------------------


def render_value(value):
    """Python source for one value node (the single spelling both
    backends share)."""
    if isinstance(value, Const):
        return repr(value.value)
    if isinstance(value, ReadReg):
        return "s.%s" % value.name
    if isinstance(value, ReadElem):
        return "s.%s[%s]" % (value.resource, render_value(value.index))
    if isinstance(value, ReadLocal):
        return LOCAL_PREFIX + value.name
    if isinstance(value, Unary):
        inner = render_value(value.operand)
        if value.op == "-":
            return "(-%s)" % inner
        if value.op == "~":
            return "(~%s)" % inner
        return "(0 if %s else 1)" % inner
    if isinstance(value, Alu):
        left = render_value(value.left)
        right = render_value(value.right)
        op = value.op
        if op in _PLAIN_OPS:
            return "(%s %s %s)" % (left, op, right)
        if op in _CMP_OPS:
            return "(1 if %s %s %s else 0)" % (left, op, right)
        if op == "/":
            return "__idiv(%s, %s)" % (left, right)
        if op == "%":
            return "__imod(%s, %s)" % (left, right)
        if op == "&&":
            return "(1 if (%s and %s) else 0)" % (left, right)
        return "(1 if (%s or %s) else 0)" % (left, right)
    if isinstance(value, Intrinsic):
        return "%s(%s)" % (
            CODEGEN_INTRINSIC_NAMES[value.name],
            ", ".join(render_value(a) for a in value.args),
        )
    if isinstance(value, Select):
        return "((%s) if (%s) else (%s))" % (
            render_value(value.if_true),
            render_value(value.cond),
            render_value(value.if_false),
        )
    raise BehaviorError("cannot render value %r" % (value,), None)


def _render_write(target_source, op):
    value_source = render_value(op.value)
    if op.width is not None:
        value_source = canonical_source(value_source, op.width, op.signed)
    return "%s = %s" % (target_source, value_source)


def render_ops(ops, indent=1):
    """Python source lines for a micro-op sequence."""
    pad = "    " * indent
    lines = []
    for op in ops:
        if isinstance(op, WriteReg):
            lines.append(pad + _render_write("s.%s" % op.name, op))
        elif isinstance(op, WriteElem):
            target = "s.%s[%s]" % (op.resource, render_value(op.index))
            lines.append(pad + _render_write(target, op))
        elif isinstance(op, WriteLocal):
            lines.append(pad + "%s%s = %s" % (
                LOCAL_PREFIX, op.name, render_value(op.value)
            ))
        elif isinstance(op, Control):
            lines.append(pad + "c.%s(%s)" % (
                op.method, ", ".join(render_value(a) for a in op.args)
            ))
        elif isinstance(op, Guard):
            lines.append(pad + "if %s:" % render_value(op.cond))
            lines.extend(render_ops(op.then_ops, indent + 1)
                         or [pad + "    pass"])
            if op.else_ops:
                lines.append(pad + "else:")
                lines.extend(render_ops(op.else_ops, indent + 1))
        elif isinstance(op, Loop):
            lines.append(pad + "while %s:" % render_value(op.cond))
            lines.extend(render_ops(op.body, indent + 1)
                         or [pad + "    pass"])
        elif isinstance(op, Eval):
            lines.append(pad + render_value(op.value))
        else:
            raise BehaviorError("cannot render micro-op %r" % (op,), None)
    return lines


def render_function_source(func, bind=None):
    """A complete ``def`` for one IR function.

    ``bind`` maps the state/control parameters to default-argument
    expressions (closure-free binding for the exec backend); ``None``
    produces the plain ``(s, c)`` signature emitted modules use.  The
    hoisted runtime helpers always bind as trailing defaults.
    """
    if bind is None:
        params = "s, c"
    else:
        params = "s=%s, c=%s" % bind
    for helper in func.helpers:
        params += ", %s=%s" % (helper, helper)
    lines = ["def %s(%s):" % (func.name, params)]
    body = render_ops(func.ops, 1)
    lines.extend(body or ["    pass"])
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class PythonExecBackend:
    """Backend 1: in-process ``compile``/``exec`` of rendered IR.

    Used by the compiled simulator's operation-instantiation level and
    by the static scheduler's column fusion.  Binding happens through
    default arguments, so calls are closure-free and zero-argument.
    """

    def render(self, func, bind=("__state", "__ctrl")):
        return render_function_source(func, bind=bind)

    def compile_function(self, func, state, control):
        """Compile ``func`` into a no-argument callable bound to
        ``state`` and ``control``."""
        source = self.render(func)
        namespace = dict(CODEGEN_GLOBALS)
        namespace["__state"] = state
        namespace["__ctrl"] = control
        exec(compile(source, "<simir:%s>" % func.name, "exec"), namespace)
        return namespace[func.name]


class ModuleBackend:
    """Backend 2: standalone module-level source over the same IR.

    Produces ``(s, c)``-parameterised function source suitable for the
    emitted simulator module and the portable table's shared namespace;
    the runtime helpers referenced by the default parameters are bound
    at module top (see :mod:`repro.simcc.emit`).
    """

    def render_function(self, func):
        return render_function_source(func)

    def render_functions(self, funcs):
        return "\n".join(self.render_function(func) for func in funcs)


# ---------------------------------------------------------------------------
# Serialisation (marshal-compatible tagged tuples)
# ---------------------------------------------------------------------------


def value_to_payload(value):
    if isinstance(value, Const):
        return ("c", value.value)
    if isinstance(value, ReadReg):
        return ("rr", value.name)
    if isinstance(value, ReadElem):
        return ("re", value.resource, value_to_payload(value.index))
    if isinstance(value, ReadLocal):
        return ("rl", value.name)
    if isinstance(value, Unary):
        return ("un", value.op, value_to_payload(value.operand))
    if isinstance(value, Alu):
        return ("alu", value.op, value_to_payload(value.left),
                value_to_payload(value.right))
    if isinstance(value, Intrinsic):
        return ("in", value.name,
                tuple(value_to_payload(a) for a in value.args))
    if isinstance(value, Select):
        return ("sel", value_to_payload(value.cond),
                value_to_payload(value.if_true),
                value_to_payload(value.if_false))
    raise BehaviorError("cannot serialise value %r" % (value,), None)


def value_from_payload(payload):
    tag = payload[0]
    if tag == "c":
        return Const(payload[1])
    if tag == "rr":
        return ReadReg(payload[1])
    if tag == "re":
        return ReadElem(payload[1], value_from_payload(payload[2]))
    if tag == "rl":
        return ReadLocal(payload[1])
    if tag == "un":
        return Unary(payload[1], value_from_payload(payload[2]))
    if tag == "alu":
        return Alu(payload[1], value_from_payload(payload[2]),
                   value_from_payload(payload[3]))
    if tag == "in":
        return Intrinsic(payload[1],
                         tuple(value_from_payload(a) for a in payload[2]))
    if tag == "sel":
        return Select(value_from_payload(payload[1]),
                      value_from_payload(payload[2]),
                      value_from_payload(payload[3]))
    raise BehaviorError("unknown value payload tag %r" % (tag,), None)


def op_to_payload(op):
    if isinstance(op, WriteReg):
        return ("wr", op.name, value_to_payload(op.value), op.width,
                op.signed, op.augmented)
    if isinstance(op, WriteElem):
        return ("we", op.resource, value_to_payload(op.index),
                value_to_payload(op.value), op.width, op.signed,
                op.augmented)
    if isinstance(op, WriteLocal):
        return ("wl", op.name, value_to_payload(op.value))
    if isinstance(op, Control):
        return ("ctl", op.method, tuple(value_to_payload(a)
                                        for a in op.args))
    if isinstance(op, Guard):
        return ("g", value_to_payload(op.cond),
                tuple(op_to_payload(o) for o in op.then_ops),
                tuple(op_to_payload(o) for o in op.else_ops))
    if isinstance(op, Loop):
        return ("lp", value_to_payload(op.cond),
                tuple(op_to_payload(o) for o in op.body))
    if isinstance(op, Eval):
        return ("ev", value_to_payload(op.value))
    raise BehaviorError("cannot serialise micro-op %r" % (op,), None)


def op_from_payload(payload):
    tag = payload[0]
    if tag == "wr":
        return WriteReg(payload[1], value_from_payload(payload[2]),
                        payload[3], payload[4], payload[5])
    if tag == "we":
        return WriteElem(payload[1], value_from_payload(payload[2]),
                         value_from_payload(payload[3]), payload[4],
                         payload[5], payload[6])
    if tag == "wl":
        return WriteLocal(payload[1], value_from_payload(payload[2]))
    if tag == "ctl":
        return Control(payload[1],
                       tuple(value_from_payload(a) for a in payload[2]))
    if tag == "g":
        return Guard(value_from_payload(payload[1]),
                     tuple(op_from_payload(o) for o in payload[2]),
                     tuple(op_from_payload(o) for o in payload[3]))
    if tag == "lp":
        return Loop(value_from_payload(payload[1]),
                    tuple(op_from_payload(o) for o in payload[2]))
    if tag == "ev":
        return Eval(value_from_payload(payload[1]))
    raise BehaviorError("unknown micro-op payload tag %r" % (tag,), None)


def function_to_payload(func):
    """A marshal-compatible payload for one :class:`IRFunction`."""
    return (
        func.name,
        tuple(func.helpers),
        tuple(op_to_payload(op) for op in func.ops),
    )


def function_from_payload(payload):
    name, helpers, ops = payload
    return IRFunction(
        name=name,
        ops=tuple(op_from_payload(op) for op in ops),
        helpers=tuple(helpers),
    )


# ---------------------------------------------------------------------------
# Human-readable dump (repro-sim --dump-ir)
# ---------------------------------------------------------------------------


def _dtype_tag(op):
    if op.width is None:
        return "raw"
    return "%s%d" % ("i" if op.signed else "u", op.width)


def format_ops(ops, indent=1):
    """Readable one-micro-op-per-line rendering of an op sequence."""
    pad = "  " * indent
    lines = []
    for op in ops:
        if isinstance(op, WriteReg):
            lines.append("%swreg   %s <%s> = %s" % (
                pad, op.name, _dtype_tag(op), render_value(op.value)
            ))
        elif isinstance(op, WriteElem):
            lines.append("%swelem  %s[%s] <%s> = %s" % (
                pad, op.resource, render_value(op.index), _dtype_tag(op),
                render_value(op.value)
            ))
        elif isinstance(op, WriteLocal):
            lines.append("%swlocal %s = %s" % (
                pad, op.name, render_value(op.value)
            ))
        elif isinstance(op, Control):
            lines.append("%sctl    %s(%s)" % (
                pad, op.method,
                ", ".join(render_value(a) for a in op.args)
            ))
        elif isinstance(op, Guard):
            lines.append("%sguard  %s:" % (pad, render_value(op.cond)))
            lines.extend(format_ops(op.then_ops, indent + 1))
            if op.else_ops:
                lines.append("%selse:" % pad)
                lines.extend(format_ops(op.else_ops, indent + 1))
        elif isinstance(op, Loop):
            lines.append("%sloop   %s:" % (pad, render_value(op.cond)))
            lines.extend(format_ops(op.body, indent + 1))
        elif isinstance(op, Eval):
            lines.append("%seval   %s" % (pad, render_value(op.value)))
        else:
            lines.append("%s?      %r" % (pad, op))
    return lines


def format_function(func, indent=1):
    """Readable rendering of one IR function (header + ops)."""
    header = "func %s" % func.name
    if func.helpers:
        header += "  [helpers: %s]" % ", ".join(func.helpers)
    lines = ["  " * (indent - 1) + header]
    ops = format_ops(func.ops, indent)
    lines.extend(ops or ["  " * indent + "(no ops)"])
    return lines


def dump_program_ir(model, program, stream=None):
    """The lowered, post-pass IR of every execute packet of ``program``.

    This is the ``repro-sim --dump-ir`` payload: for each packet, the
    per-member, per-stage IR functions exactly as the backends will
    consume them -- the ground truth for debugging retargeting issues
    where two backends (or a model edit) are suspected of diverging.
    """
    from repro.simcc.portable import build_portable_table

    portable = build_portable_table(model, program, level="instantiated")
    functions = {func.name: func for func in portable.functions}
    lines = [
        "# SimIR dump: model %s, program %s" % (model.name, program.name),
        "# %d instruction(s), stages %s" % (
            portable.instruction_count,
            "/".join(model.pipeline.stages),
        ),
    ]
    emitted = set()
    for pc in sorted(portable.table_spec):
        per_stage, words, _ = portable.table_spec[pc]
        if pc in emitted:
            continue
        emitted.update(range(pc, pc + words))
        lines.append("")
        lines.append("packet 0x%x (%d word%s):" % (
            pc, words, "s" if words != 1 else ""
        ))
        occupied = False
        for stage_index, stage_names in enumerate(per_stage):
            for name in stage_names:
                occupied = True
                stage = model.pipeline.stages[stage_index]
                lines.append("  stage %s:" % stage)
                lines.extend(format_function(functions[name], indent=2))
        if not occupied:
            lines.append("  (no micro-operations)")
    text = "\n".join(lines) + "\n"
    if stream is not None:
        stream.write(text)
    return text


__all__ = [
    "Const", "ReadReg", "ReadElem", "ReadLocal", "Unary", "Alu",
    "Intrinsic", "Select", "Value",
    "MicroOp", "WriteReg", "WriteElem", "WriteLocal", "Control", "Guard",
    "Loop", "Eval", "IRFunction",
    "Lowerer", "LoweringLimit", "LOCAL_PREFIX", "MAX_LOWER_DEPTH",
    "walk_values", "walk_ops", "op_values", "ops_have_control",
    "read_cells", "write_cell", "value_locals",
    "PassStats", "fold_constants", "coalesce_canonicalisation",
    "eliminate_dead_writes", "hoist_helpers", "DEFAULT_PASSES",
    "run_passes", "optimize_column",
    "render_value", "render_ops", "render_function_source",
    "PythonExecBackend", "ModuleBackend",
    "value_to_payload", "value_from_payload", "op_to_payload",
    "op_from_payload", "function_to_payload", "function_from_payload",
    "format_ops", "format_function", "dump_program_ir",
]
