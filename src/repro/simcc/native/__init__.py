"""Native C backend for SimIR: compiled burst execution off the CPython
hot path.

The package renders post-pass SimIR micro-ops to C99
(:mod:`repro.simcc.native.cgen`), compiles them with whatever ``cc`` the
host provides (:mod:`repro.simcc.native.toolchain`), and drives whole
pipeline windows per call through a flat shared state buffer
(:mod:`repro.simcc.native.layout`,
:mod:`repro.simcc.native.engine`).  Artifacts persist through the
simulation cache (:mod:`repro.simcc.native.backend`).

Everything degrades gracefully: no compiler, an unmappable model or a
packet the range analysis cannot prove simply falls back to the Python
module backend, bit-exactly.
"""

from repro.simcc.native.backend import (
    NativeModule,
    artifact_key,
    build_native_module,
)
from repro.simcc.native.cgen import dump_program_c
from repro.simcc.native.engine import NativePipeline
from repro.simcc.native.layout import (
    NativeUnsupported,
    StateLayout,
    TelemetryRegion,
)
from repro.simcc.native.toolchain import find_compiler

def native_available():
    """True when a usable C compiler is discoverable."""
    return find_compiler() is not None


__all__ = [
    "NativeModule",
    "NativePipeline",
    "NativeUnsupported",
    "StateLayout",
    "TelemetryRegion",
    "artifact_key",
    "build_native_module",
    "dump_program_c",
    "find_compiler",
    "native_available",
]
