"""Build (or load from cache) the compiled burst module for a table.

:func:`build_native_module` is the one entry point the simulators use.
It never raises on an unusable environment: any failure along the
ladder -- unmappable model, no lowered IR, no C compiler, a compile or
load error -- degrades to ``None`` with a single ``native.fallback``
observability event, and the caller serves the run through the Python
module backend instead.

Artifacts (the generated ``.c``, the built ``.so`` and a metadata
sidecar) persist through :class:`repro.simcc.cache.SimulationCache`
keyed by a digest of the C source plus the state-layout contract; the
compiler identity lives in the metadata so a shared object built by a
stale compiler misses and is rebuilt rather than loaded.  Without a
cache the build lands in a private temporary directory.
"""

from __future__ import annotations

import hashlib
import os
import tempfile

from repro.simcc.native import cgen
from repro.simcc.native import layout as L
from repro.simcc.native import toolchain

#: In-process cache of loaded burst callables, keyed by shared-object
#: path: re-dlopening the same artifact for every simulator is wasted
#: work (and some platforms pin the mapping anyway).
_LOADED = {}


class NativeModule:
    """A loaded burst module plus everything needed to drive it.

    ``telemetry`` is the side-region geometry when the module was built
    instrumented (``build_native_module(..., telemetry=True)``), None
    for the plain byte-identical-to-before module.
    """

    def __init__(self, layout, plan, burst, loader, so_path, source):
        self.layout = layout
        self.plan = plan
        self.burst = burst
        self.loader = loader
        self.so_path = so_path
        self.source = source
        self.telemetry = plan.telemetry
        self.push_set = frozenset(plan.push_names)
        self.pull_set = frozenset(plan.pull_names)


def artifact_key(source, state_layout):
    """Content address of one native artifact: the generated C plus the
    layout contract it was rendered against."""
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\n")
    digest.update(state_layout.digest().encode("ascii"))
    return digest.hexdigest()


def _fallback(observer, reason, **args):
    if observer is not None:
        observer.on_native_fallback(reason, **args)
    return None


def _load(so_path):
    key = os.path.realpath(so_path)
    cached = _LOADED.get(key)
    if cached is not None:
        return cached
    burst, loader = toolchain.load_burst(so_path)
    _LOADED[key] = (burst, loader)
    return burst, loader


def build_native_module(model, table, cache=None, observer=None,
                        telemetry=False, admit_pcs=None):
    """The burst module for ``table``, or ``None`` when unavailable.

    ``None`` always means "use the Python path"; the reason is emitted
    as one ``native.fallback`` event when an observer is attached.

    ``telemetry=True`` builds the instrumented variant whose bursts
    count per-packet dispatches and attributed cycles into a side-region
    of the state buffer; it caches under its own artifact key (the
    generated C differs), so plain and instrumented artifacts coexist.

    ``admit_pcs`` restricts native rendering to a set of packet starts
    (window-scoped promotion); the admitted set shapes the generated C,
    so each distinct set has its own artifact key and a repeat run with
    the same promotion loads its artifact without compiling.
    """
    from repro import obs as _obs

    try:
        state_layout = L.StateLayout.build(model)
        source, plan = cgen.render_native_source(
            table, model, state_layout, telemetry=telemetry,
            admit_pcs=admit_pcs,
        )
    except L.NativeUnsupported as exc:
        return _fallback(observer, str(exc), model=model.name)
    if not plan.native_pcs:
        return _fallback(observer, "no packet passed native analysis",
                         model=model.name)

    cc = toolchain.find_compiler()
    if cc is None:
        return _fallback(
            observer, "no C compiler (set $CC or install cc)",
            model=model.name,
        )
    try:
        identity = toolchain.compiler_identity(cc)
        key = artifact_key(source, state_layout)

        so_path = None
        if cache is not None:
            hit = cache.load_native_artifact(key, identity)
            if hit is not None:
                so_path = hit[1]
                if observer is not None:
                    observer.on_native("hit", key=key[:16])
        if so_path is None:
            with _obs.span(observer, "native.compile", model=model.name,
                           packets=len(plan.native_pcs)):
                if cache is not None:
                    _, so_path = cache.store_native_artifact(
                        key, identity, source,
                        lambda c, so: toolchain.compile_shared(cc, c, so),
                    )
                else:
                    workdir = tempfile.mkdtemp(prefix="repro-native-")
                    c_path = os.path.join(workdir, key[:16] + ".c")
                    so_path = os.path.join(workdir, key[:16] + ".so")
                    with open(c_path, "w", encoding="utf-8") as handle:
                        handle.write(source)
                    toolchain.compile_shared(cc, c_path, so_path)
            if observer is not None:
                observer.on_native("compile", key=key[:16],
                                   packets=len(plan.native_pcs))

        burst, loader = _load(so_path)
    except (OSError, toolchain.NativeToolchainError) as exc:
        return _fallback(observer, "native build failed: %s" % exc,
                         model=model.name)
    return NativeModule(state_layout, plan, burst, loader, so_path, source)
