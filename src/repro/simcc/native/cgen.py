"""SimIR -> C99 rendering and the native burst driver.

Two jobs live here:

1. **Nativisability analysis.**  SimIR arithmetic is defined over
   unbounded Python integers; C works in ``int64_t``.  A packet may run
   natively only when the shared abstract interpreter
   (:mod:`repro.analysis.absint`) proves every intermediate value of
   every micro-op stays inside the signed 64-bit range (``INT64_MIN``
   itself is excluded so magnitude negation can never overflow).
   Packets that fail the proof -- or that write program memory, where
   the self-modifying-code guard must observe every store -- simply
   stay on the Python path; the burst driver hands control back
   whenever the next fetch would enter one.  The same proofs let the
   renderer drop canonicalisation masks from stores whose value is
   provably canonical already.

2. **Code generation.**  Each native packet's per-stage IR lowers to a
   ``static void f_<pc>_<stage>(int64_t *S)`` over the flat
   :class:`repro.simcc.native.layout.StateLayout` buffer, and one
   exported ``repro_burst`` drives whole stretches of cycles with
   exactly the semantics of
   :meth:`repro.machine.driver.Pipeline._step_plain`: retire, fetch (or
   stall/halt bubble), window shift, deepest-first stage execution with
   flush squashing.  Python is re-entered once per burst, not once per
   micro-op.

Trap parity: division by zero, negative shift counts, out-of-range
element indices and negative stall requests raise in Python; the C
helpers ``longjmp`` out of the burst with a trap code and the engine
re-raises the matching exception type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.analysis import absint
from repro.simcc import ir
from repro.simcc.native import layout as L


class _NotNative(Exception):
    """Internal: asked to render a construct the proof never admits."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


@dataclass
class NativePlan:
    """Everything the engine needs to drive a compiled burst module.

    ``telemetry`` is the side-region geometry of an instrumented module
    (None for the plain one); ``metric_insns[pc - pc_base]`` is the
    instruction count one issue of that address contributes to the
    dispatch metrics (1 for table holes, matching the trap pseudo-slot
    the Python front-end issues there).
    """

    pc_base: int
    pc_limit: int
    depth: int
    native_pcs: Set[int]
    reasons: Dict[int, str]
    push_names: Tuple[str, ...]
    pull_names: Tuple[str, ...]
    telemetry: Optional[L.TelemetryRegion] = None
    metric_insns: Tuple[int, ...] = field(default=())

    @property
    def n_pc(self):
        return self.pc_limit - self.pc_base


def analyze_packet(funcs_by_stage, model, pmem_name):
    """One packet's nativisability proof (see
    :func:`repro.analysis.absint.analyze_packet`); the former private
    interval walker lives on only as that shared analysis."""
    return absint.analyze_packet(funcs_by_stage, model, pmem_name)


# ---------------------------------------------------------------------------
# C rendering
# ---------------------------------------------------------------------------


def _c_int(value):
    return "INT64_C(%d)" % value


class _CRenderer:
    """Renders IR values and ops against one :class:`StateLayout`."""

    def __init__(self, model, state_layout):
        self._model = model
        self._layout = state_layout
        self._raw_stores: FrozenSet[int] = frozenset()

    def set_raw_stores(self, raw_stores):
        """Install the current packet's proof of already-canonical
        stores (ids of write ops whose mask/sign-fold may be elided)."""
        self._raw_stores = raw_stores

    def value(self, value):
        if isinstance(value, ir.Const):
            return _c_int(value.value)
        if isinstance(value, ir.ReadReg):
            return "S[%d]" % self._layout.by_name[value.name].offset
        if isinstance(value, ir.ReadElem):
            return "S[%d + %s]" % (
                self._layout.by_name[value.resource].offset,
                self._index(value.resource, value.index),
            )
        if isinstance(value, ir.ReadLocal):
            return "L_%s" % value.name
        if isinstance(value, ir.Unary):
            inner = self.value(value.operand)
            if value.op == "-":
                return "(-%s)" % inner
            if value.op == "~":
                return "(~%s)" % inner
            return "(int64_t)(%s == 0)" % inner
        if isinstance(value, ir.Alu):
            return self._alu(value)
        if isinstance(value, ir.Intrinsic):
            return self._intrinsic(value)
        if isinstance(value, ir.Select):
            return "((%s) ? (%s) : (%s))" % (
                self.value(value.cond),
                self.value(value.if_true),
                self.value(value.if_false),
            )
        raise _NotNative("cannot render value %r" % (value,))

    def _index(self, resource, index):
        entry = self._layout.by_name[resource]
        if isinstance(index, ir.Const) and 0 <= index.value < entry.length:
            return _c_int(index.value)
        return "h_index(S, %s, %d)" % (self.value(index), entry.length)

    def _alu(self, value):
        left = self.value(value.left)
        right = self.value(value.right)
        op = value.op
        if op in ir._PLAIN_OPS and op not in ("<<", ">>"):
            return "(%s %s %s)" % (left, op, right)
        if op in ir._CMP_OPS:
            return "(int64_t)(%s %s %s)" % (left, op, right)
        if op == "<<":
            return "h_shl(S, %s, %s)" % (left, right)
        if op == ">>":
            return "h_shr(S, %s, %s)" % (left, right)
        if op == "/":
            return "h_idiv(S, %s, %s)" % (left, right)
        if op == "%":
            return "h_imod(S, %s, %s)" % (left, right)
        if op == "&&":
            return "(int64_t)((%s != 0) && (%s != 0))" % (left, right)
        return "(int64_t)((%s != 0) || (%s != 0))" % (left, right)

    def _intrinsic(self, value):
        name = value.name
        args = [self.value(arg) for arg in value.args]
        if name in ("sext", "zext", "sat"):
            return "h_%s(%s, %d)" % (name, args[0], value.args[1].value)
        if name == "abs":
            return "h_abs(%s)" % args[0]
        if name in ("min", "max"):
            return "h_%s(%s, %s)" % (name, args[0], args[1])
        raise _NotNative("cannot render intrinsic %r" % name)

    def _store_value(self, op):
        source = self.value(op.value)
        if op.width is None or id(op) in self._raw_stores:
            # Either the pass pipeline or the abstract interpreter
            # proved the value canonical for the declared dtype; the
            # mask/sign-fold would be a no-op.
            return source
        if op.signed:
            return "h_cansig(%s, %d)" % (source, op.width)
        return "(%s & %s)" % (source, _c_int((1 << op.width) - 1))

    def ops(self, ops, indent):
        pad = "    " * indent
        lines = []
        for op in ops:
            if isinstance(op, ir.WriteReg):
                entry = self._layout.by_name[op.name]
                lines.append("%sS[%d] = %s;" % (
                    pad, entry.offset, self._store_value(op)
                ))
            elif isinstance(op, ir.WriteElem):
                entry = self._layout.by_name[op.resource]
                lines.append("%s{ int64_t _i = %s;" % (
                    pad, self._index(op.resource, op.index)
                ))
                lines.append("%s  S[%d + _i] = %s;" % (
                    pad, entry.offset, self._store_value(op)
                ))
                lines.append(
                    "%s  if (_i < S[%d]) S[%d] = _i;"
                    % (pad, entry.wm_offset, entry.wm_offset)
                )
                lines.append(
                    "%s  if (_i > S[%d]) S[%d] = _i; }"
                    % (pad, entry.wm_offset + 1, entry.wm_offset + 1)
                )
            elif isinstance(op, ir.WriteLocal):
                lines.append("%sL_%s = %s;" % (
                    pad, op.name, self.value(op.value)
                ))
            elif isinstance(op, ir.Control):
                lines.append(pad + self._control(op))
            elif isinstance(op, ir.Guard):
                lines.append("%sif (%s) {" % (pad, self.value(op.cond)))
                lines.extend(self.ops(op.then_ops, indent + 1))
                if op.else_ops:
                    lines.append(pad + "} else {")
                    lines.extend(self.ops(op.else_ops, indent + 1))
                lines.append(pad + "}")
            elif isinstance(op, ir.Eval):
                lines.append("%s{ int64_t _ev = %s; (void)_ev; }" % (
                    pad, self.value(op.value)
                ))
            else:
                raise _NotNative("cannot render op %r" % type(op).__name__)
        return lines

    def _control(self, op):
        if op.method == "request_stall":
            return "h_stall(S, %s);" % self.value(op.args[0])
        if op.method == "request_halt":
            return "h_halt(S);"
        return "h_flush(S);"

    def function_body(self, func, indent):
        """One IR function as a C block with its locals scoped inside."""
        pad = "    " * indent
        locals_ = sorted(_collect_locals(func.ops))
        lines = [pad + "{"]
        for name in locals_:
            lines.append("%s    int64_t L_%s = 0; (void)L_%s;"
                         % (pad, name, name))
        lines.extend(self.ops(func.ops, indent + 1))
        lines.append(pad + "}")
        return lines


def _collect_locals(ops):
    names = set()
    for op in ops:
        if isinstance(op, ir.WriteLocal):
            names.add(op.name)
        elif isinstance(op, ir.Guard):
            names |= _collect_locals(op.then_ops)
            names |= _collect_locals(op.else_ops)
        elif isinstance(op, ir.Loop):
            names |= _collect_locals(op.body)
        for value in ir.op_values(op):
            for walked in ir.walk_values(value):
                if isinstance(walked, ir.ReadLocal):
                    names.add(walked.name)
    return names


_HELPERS = r"""
#include <stdint.h>
#include <setjmp.h>

static jmp_buf trap_jmp;

#define HDR_CYCLES 0
#define HDR_INSNS 1
#define HDR_HALTED 2
#define HDR_STALL 3
#define HDR_FLUSH_BELOW 4
#define HDR_CUR_STAGE 5
#define HDR_TRAP_CODE 6
#define HDR_TRAP_PC 7
#define HDR_TRAP_STAGE 8

static void trap(int64_t *S, int64_t code) {
    S[HDR_TRAP_CODE] = code;
    longjmp(trap_jmp, 1);
}

static int64_t h_idiv(int64_t *S, int64_t a, int64_t b) {
    int64_t q;
    if (b == 0) trap(S, 1);
    q = (a < 0 ? -a : a) / (b < 0 ? -b : b);
    return ((a < 0) != (b < 0)) ? -q : q;
}

static int64_t h_imod(int64_t *S, int64_t a, int64_t b) {
    return a - h_idiv(S, a, b) * b;
}

static int64_t h_shl(int64_t *S, int64_t a, int64_t b) {
    if (b < 0) trap(S, 2);
    if (b > 63) return 0;  /* proof: a == 0 whenever b > 63 */
    return (int64_t)((uint64_t)a << b);
}

static int64_t h_shr(int64_t *S, int64_t a, int64_t b) {
    if (b < 0) trap(S, 2);
    if (b > 63) b = 63;
    return a < 0 ? ~((~a) >> b) : a >> b;  /* arithmetic, like Python */
}

static int64_t h_index(int64_t *S, int64_t i, int64_t n) {
    if (i < 0) i += n;  /* Python list indexing wraps once */
    if (i < 0 || i >= n) trap(S, 3);
    return i;
}

static int64_t h_cansig(int64_t v, int w) {
    uint64_t m = (w >= 64) ? ~(uint64_t)0 : (((uint64_t)1 << w) - 1);
    uint64_t half = (uint64_t)1 << (w - 1);
    return (int64_t)((((uint64_t)v + half) & m) - half);
}

static int64_t h_sext(int64_t v, int w) {
    uint64_t m = (w >= 64) ? ~(uint64_t)0 : (((uint64_t)1 << w) - 1);
    uint64_t sign = (uint64_t)1 << (w - 1);
    uint64_t u = (uint64_t)v & m;
    return (int64_t)((u ^ sign) - sign);
}

static int64_t h_zext(int64_t v, int w) {
    uint64_t m = (w >= 64) ? ~(uint64_t)0 : (((uint64_t)1 << w) - 1);
    return (int64_t)((uint64_t)v & m);
}

static int64_t h_sat(int64_t v, int w) {
    int64_t hi = (int64_t)((((uint64_t)1 << (w - 1))) - 1);
    int64_t lo = -hi - 1;
    return v < lo ? lo : (v > hi ? hi : v);
}

static int64_t h_abs(int64_t v) { return v < 0 ? -v : v; }
static int64_t h_min(int64_t a, int64_t b) { return a < b ? a : b; }
static int64_t h_max(int64_t a, int64_t b) { return a > b ? a : b; }

static void h_stall(int64_t *S, int64_t n) {
    if (n < 0) trap(S, 4);
    S[HDR_STALL] += n;
}

static void h_flush(int64_t *S) {
    if (S[HDR_CUR_STAGE] > S[HDR_FLUSH_BELOW])
        S[HDR_FLUSH_BELOW] = S[HDR_CUR_STAGE];
}

static void h_halt(int64_t *S) {
    S[HDR_HALTED] = 1;
    h_flush(S);
}
"""


_BURST = r"""
int64_t repro_burst(int64_t *S, const int64_t *native_ok,
                    int64_t max_cycles) {
    int64_t cycles_run = 0;
    if (setjmp(trap_jmp)) return 3;  /* trap: code in S[HDR_TRAP_CODE] */
    for (;;) {
        int64_t incoming = -1;
        int stage;
        if (S[HDR_HALTED]) {
            int drained = 1;
            for (stage = 0; stage < DEPTH; stage++)
                if (S[WIN_BASE + stage] >= 0) { drained = 0; break; }
            if (drained) return 0;  /* completed */
        }
        if (cycles_run >= max_cycles) return 1;  /* budget exhausted */
        if (!S[HDR_HALTED] && S[HDR_STALL] == 0) {
            int64_t pc = S[PC_OFF];
            if (pc >= PC_BASE && pc < PC_LIMIT &&
                !native_ok[pc - PC_BASE])
                return 2;  /* table packet needing the Python path */
        }
        /* retire the oldest slot */
        {
            int64_t retiring = S[WIN_BASE + DEPTH - 1];
            if (retiring >= 0) {
                if (retiring >= PC_BASE && retiring < PC_LIMIT &&
                    !pkt_trap[retiring - PC_BASE])
                    S[HDR_INSNS] += pkt_insns[retiring - PC_BASE];
                else
                    S[HDR_INSNS] += 1;  /* trap slots count one insn */
            }
        }
        /* fetch (or bubble on halt/stall); addresses outside the table
         * fetch trap pseudo-slots (one word, raising only if they reach
         * the execute stage un-squashed), exactly like the Python
         * front-end */
        if (S[HDR_HALTED]) {
            incoming = -1;
        } else if (S[HDR_STALL] > 0) {
            S[HDR_STALL] -= 1;
            incoming = -1;
        } else {
            int64_t pc = S[PC_OFF];
            incoming = pc;
            if (pc >= PC_BASE && pc < PC_LIMIT && !pkt_trap[pc - PC_BASE])
                S[PC_OFF] = pc + pkt_words[pc - PC_BASE];
            else
                S[PC_OFF] = pc + 1;
        }
        /* shift the window */
        for (stage = DEPTH - 1; stage > 0; stage--)
            S[WIN_BASE + stage] = S[WIN_BASE + stage - 1];
        S[WIN_BASE] = incoming;
        /* execute, deepest stage first */
        for (stage = DEPTH - 1; stage >= 0; stage--) {
            int64_t slot_pc = S[WIN_BASE + stage];
            const opfn *fns;
            if (slot_pc < 0) continue;
            if (stage < S[HDR_FLUSH_BELOW]) {
                S[WIN_BASE + stage] = -1;
                continue;
            }
            if (slot_pc < PC_BASE || slot_pc >= PC_LIMIT ||
                pkt_trap[slot_pc - PC_BASE]) {
                if (stage == EXEC_STAGE) {
                    S[HDR_TRAP_PC] = slot_pc;
                    S[HDR_TRAP_STAGE] = stage;
                    trap(S, 5);  /* undefined fetch reached execute */
                }
                continue;
            }
            fns = stage_fns[(slot_pc - PC_BASE) * DEPTH + stage];
            if (fns) {
                S[HDR_CUR_STAGE] = stage;
                S[HDR_TRAP_PC] = slot_pc;
                S[HDR_TRAP_STAGE] = stage;
                for (; *fns; fns++) (*fns)(S);
            }
        }
        S[HDR_FLUSH_BELOW] = -1;
        S[HDR_CYCLES] += 1;
        cycles_run += 1;
    }
}
"""


def _splice(text, old, new):
    """``text.replace(old, new)`` asserting exactly one match.

    The telemetry variants of the helper/burst templates are derived
    from the plain ones by targeted splices; a template edit that
    breaks a splice point must fail loudly here, not silently produce
    an un-instrumented module.
    """
    count = text.count(old)
    if count != 1:
        raise AssertionError(
            "telemetry splice point matched %d times (expected 1): %r"
            % (count, old)
        )
    return text.replace(old, new)


def _telemetry_defines(region):
    """Absolute slot indices of the telemetry side-region as C macros."""
    return "\n".join([
        "#define TEL_LAST %d" % (region.base + L.TEL_LAST),
        "#define TEL_STRAY %d" % (region.base + L.TEL_STRAY_CYC),
        "#define TEL_DRAINB %d" % (region.base + L.TEL_DRAIN),
        "#define TEL_STALLB %d" % (region.base + L.TEL_STALL),
        "#define TEL_SQUASH %d" % (region.base + L.TEL_SQUASH),
        "#define TEL_CSTALL %d" % (region.base + L.TEL_CTRL_STALL),
        "#define TEL_CFLUSH %d" % (region.base + L.TEL_CTRL_FLUSH),
        "#define TEL_CHALT %d" % (region.base + L.TEL_CTRL_HALT),
        "#define TEL_DISP %d" % region.disp_base,
        "#define TEL_CYC %d" % region.cyc_base,
    ])


def _telemetry_helpers():
    """The helper prologue with control-request counting spliced in.

    Counting mirrors the Python hooks exactly: a stall request counts
    only after the negative-count trap check (Python validates before
    notifying), and a halt counts both the halt and the flush it raises
    (``request_halt`` calls ``request_flush``).
    """
    text = _splice(
        _HELPERS,
        "static void h_stall(int64_t *S, int64_t n) {\n"
        "    if (n < 0) trap(S, 4);\n",
        "static void h_stall(int64_t *S, int64_t n) {\n"
        "    if (n < 0) trap(S, 4);\n"
        "    S[TEL_CSTALL] += 1;\n",
    )
    text = _splice(
        text,
        "static void h_flush(int64_t *S) {\n",
        "static void h_flush(int64_t *S) {\n"
        "    S[TEL_CFLUSH] += 1;\n",
    )
    text = _splice(
        text,
        "static void h_halt(int64_t *S) {\n",
        "static void h_halt(int64_t *S) {\n"
        "    S[TEL_CHALT] += 1;\n",
    )
    return text


#: Bubble-cycle attribution: bill the cycle to the last issued packet
#: (stall latency and drain tail belong to the packet that caused
#: them); cycles owed to a pre-burst, off-table packet pool in one
#: stray bucket the engine re-attributes at flush time.
_TEL_BUBBLE = r"""
static void tel_bubble(int64_t *S) {
    int64_t lp = S[TEL_LAST];
    if (lp >= PC_BASE && lp < PC_LIMIT)
        S[TEL_CYC + lp - PC_BASE] += 1;
    else if (lp >= 0)
        S[TEL_STRAY] += 1;
}
"""


def _telemetry_burst():
    """The burst driver with per-packet counting spliced in.

    Off-table fetches hand back to Python (exit 2) instead of issuing
    the native trap pseudo-slot, so the traced Python step counts them
    with the same hooks as a pure Python run -- that keeps per-packet
    counters bit-identical without teaching C about out-of-range
    addresses (which cannot be indexed into the fixed-size side-region).
    """
    text = _splice(
        _BURST,
        "            if (pc >= PC_BASE && pc < PC_LIMIT &&\n"
        "                !native_ok[pc - PC_BASE])\n"
        "                return 2;  /* table packet needing the Python"
        " path */\n",
        "            if (pc < PC_BASE || pc >= PC_LIMIT)\n"
        "                return 2;  /* off-table fetch: count it in"
        " Python */\n"
        "            if (!native_ok[pc - PC_BASE])\n"
        "                return 2;  /* table packet needing the Python"
        " path */\n",
    )
    text = _splice(
        text,
        "        if (S[HDR_HALTED]) {\n"
        "            incoming = -1;\n"
        "        } else if (S[HDR_STALL] > 0) {\n"
        "            S[HDR_STALL] -= 1;\n"
        "            incoming = -1;\n"
        "        } else {\n"
        "            int64_t pc = S[PC_OFF];\n"
        "            incoming = pc;\n",
        "        if (S[HDR_HALTED]) {\n"
        "            incoming = -1;\n"
        "            S[TEL_DRAINB] += 1;\n"
        "            tel_bubble(S);\n"
        "        } else if (S[HDR_STALL] > 0) {\n"
        "            S[HDR_STALL] -= 1;\n"
        "            incoming = -1;\n"
        "            S[TEL_STALLB] += 1;\n"
        "            tel_bubble(S);\n"
        "        } else {\n"
        "            int64_t pc = S[PC_OFF];\n"
        "            incoming = pc;\n"
        "            S[TEL_DISP + pc - PC_BASE] += 1;\n"
        "            S[TEL_CYC + pc - PC_BASE] += 1;\n"
        "            S[TEL_LAST] = pc;\n",
    )
    text = _splice(
        text,
        "            if (stage < S[HDR_FLUSH_BELOW]) {\n"
        "                S[WIN_BASE + stage] = -1;\n"
        "                continue;\n"
        "            }\n",
        "            if (stage < S[HDR_FLUSH_BELOW]) {\n"
        "                S[WIN_BASE + stage] = -1;\n"
        "                S[TEL_SQUASH] += 1;\n"
        "                continue;\n"
        "            }\n",
    )
    return text


def render_stage_function(name, funcs, renderer):
    """One per-(pc, stage) C function concatenating the packet's IR
    functions for that stage, each in its own local scope."""
    lines = ["static void %s(int64_t *S) {" % name]
    for func in funcs:
        lines.extend(renderer.function_body(func, 1))
    lines.append("}")
    return "\n".join(lines)


def render_native_source(table, model, state_layout, telemetry=False,
                         admit_pcs=None):
    """Render the full burst module for ``table``.

    Returns ``(c_source, plan)``; ``plan.native_pcs`` names the packets
    the analysis proved, everything else falls back per-fetch.

    ``telemetry=True`` renders the instrumented variant: the buffer
    grows a side-region of per-packet dispatch/attributed-cycle
    counters past the resources and the burst driver increments them
    inline.  With ``telemetry=False`` the output is byte-identical to
    the un-instrumented module -- profiling requested is the only thing
    that ever changes the generated C.

    ``admit_pcs`` restricts native rendering to that set of packet
    starts (the tiering pass promotes hot windows only); packets
    outside it take the per-fetch Python fallback with reason
    ``"outside admitted window"``.  The dispatch table still spans the
    whole program, so the same burst driver serves any admitted set,
    and the admitted set shapes the generated C -- distinct sets cache
    under distinct artifact keys.
    """
    pmem_name = model.config.program_memory
    depth = model.pipeline.depth
    ir_by_stage = table.ir_by_stage or {}
    pcs = sorted(table.slots)
    if not pcs or not ir_by_stage:
        raise L.NativeUnsupported("table has no lowered IR to render")
    pc_base, pc_limit = pcs[0], pcs[-1] + 1
    if model.config.execute_stage is not None:
        exec_stage = model.pipeline.stage_index(model.config.execute_stage)
    else:
        exec_stage = depth - 1

    region = None
    if telemetry:
        region = L.TelemetryRegion(
            base=state_layout.total_slots, n_pc=pc_limit - pc_base
        )

    renderer = _CRenderer(model, state_layout)
    native_pcs = set()
    reasons = {}
    reads, writes = set(), set()
    chunks = [
        "/* Auto-generated native burst module (repro.simcc.native).\n"
        " * model=%s layout=%s  -- do not edit. */"
        % (model.name, state_layout.digest()[:16]),
    ]
    if region is not None:
        chunks.append("/* telemetry: %s */" % region.describe())
        chunks.append(_telemetry_defines(region))
        chunks.append(_telemetry_helpers())
    else:
        chunks.append(_HELPERS)
    chunks.extend([
        "#define DEPTH %d" % depth,
        "#define WIN_BASE %d" % L.WIN_BASE,
        "#define PC_OFF %d" % state_layout.pc_offset,
        "#define PC_BASE %s" % _c_int(pc_base),
        "#define PC_LIMIT %s" % _c_int(pc_limit),
        "#define EXEC_STAGE %d" % exec_stage,
    ])
    if region is not None:
        chunks.append(_TEL_BUBBLE)
    chunks.append("typedef void (*opfn)(int64_t *);")

    stage_lists = {}
    for pc in pcs:
        if admit_pcs is not None and pc not in admit_pcs:
            reasons[pc] = "outside admitted window"
            continue
        funcs_by_stage = ir_by_stage.get(pc)
        if funcs_by_stage is None:
            reasons[pc] = "no lowered IR"
            continue
        info = analyze_packet(funcs_by_stage, model, pmem_name)
        if not info.native:
            reasons[pc] = info.reason
            continue
        native_pcs.add(pc)
        reads |= info.reads
        writes |= info.writes
        renderer.set_raw_stores(info.raw_stores)
        per_stage = []
        for stage, funcs in enumerate(funcs_by_stage):
            if not funcs:
                per_stage.append(None)
                continue
            name = "f_%x_%d" % (pc, stage)
            chunks.append(render_stage_function(name, funcs, renderer))
            per_stage.append(name)
        stage_lists[pc] = per_stage

    # Per-(pc, stage) NULL-terminated op lists, then the dispatch table.
    entries = []
    for pc in range(pc_base, pc_limit):
        per_stage = stage_lists.get(pc)
        for stage in range(depth):
            name = per_stage[stage] if per_stage else None
            if name is None:
                entries.append("0")
            else:
                list_name = "ops_%x_%d" % (pc, stage)
                chunks.append("static const opfn %s[] = { %s, 0 };"
                              % (list_name, name))
                entries.append(list_name)
    chunks.append(
        "static const opfn *const stage_fns[] = {\n    %s\n};"
        % ",\n    ".join(entries)
    )

    words = []
    insns = []
    traps = []
    for pc in range(pc_base, pc_limit):
        slot = table.slots.get(pc)
        words.append(str(slot.words if slot is not None else 1))
        insns.append(str(slot.insn_count if slot is not None else 0))
        traps.append("0" if slot is not None else "1")
    chunks.append("static const int32_t pkt_words[] = { %s };"
                  % ", ".join(words))
    chunks.append("static const int32_t pkt_insns[] = { %s };"
                  % ", ".join(insns))
    chunks.append("static const int32_t pkt_trap[] = { %s };"
                  % ", ".join(traps))
    chunks.append(_telemetry_burst() if region is not None else _BURST)

    metric_insns = tuple(
        table.slots[pc].insn_count if pc in table.slots else 1
        for pc in range(pc_base, pc_limit)
    )

    # The program counter is read and written by the burst driver, and
    # the pull of scalars is unconditional, so keep the pc in both sets.
    push = reads | writes | {state_layout.pc_name}
    pull = writes | {state_layout.pc_name}
    plan = NativePlan(
        pc_base=pc_base, pc_limit=pc_limit, depth=depth,
        native_pcs=native_pcs, reasons=reasons,
        push_names=tuple(sorted(push)), pull_names=tuple(sorted(pull)),
        telemetry=region, metric_insns=metric_insns,
    )
    return "\n\n".join(chunks) + "\n", plan


# ---------------------------------------------------------------------------
# CLI rendering (--dump-c)
# ---------------------------------------------------------------------------


def dump_program_c(model, program, stream=None):
    """Print the rendered C for every packet of ``program``.

    Packets the analysis rejects print their fallback reason instead of
    code.  Pure rendering: no toolchain is required.
    """
    import sys

    from repro.machine import PipelineControl, ProcessorState
    from repro.simcc.generator import generate_simulation_compiler

    out = stream or sys.stdout
    state_layout = L.StateLayout.build(model)
    compiler = generate_simulation_compiler(model)
    portable = compiler.compile_portable(program, level="instantiated")
    state = ProcessorState(model)
    control = PipelineControl()
    table = portable.bind(state, control)
    pmem_name = model.config.program_memory
    renderer = _CRenderer(model, state_layout)
    out.write("/* native rendering: model=%s program=%s layout=%s */\n"
              % (model.name, program.name, state_layout.digest()[:16]))
    for pc in sorted(table.slots):
        funcs_by_stage = table.ir_by_stage.get(pc, ())
        info = analyze_packet(funcs_by_stage, model, pmem_name)
        if not info.native:
            out.write("\n/* pc=0x%x: python fallback (%s) */\n"
                      % (pc, info.reason))
            continue
        renderer.set_raw_stores(info.raw_stores)
        out.write("\n/* pc=0x%x: native */\n" % pc)
        for stage, funcs in enumerate(funcs_by_stage):
            if not funcs:
                continue
            out.write(render_stage_function(
                "f_%x_%d" % (pc, stage), funcs, renderer
            ))
            out.write("\n")
