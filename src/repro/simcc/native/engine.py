"""The hybrid burst engine: native cycles when proven, Python otherwise.

:class:`NativePipeline` wraps any engine satisfying the simulator
engine contract (the dynamic :class:`repro.machine.driver.Pipeline` or
the static scheduler's pipeline) and drives *bursts* of cycles through
the compiled ``repro_burst`` entry whenever the whole pipeline window
consists of natively-proven packets.  The Python<->C boundary is
crossed once per burst: state is pushed into the flat layout buffer,
the burst runs until completion / budget / a fetch of a non-native
packet / a trap, state is pulled back and the inner engine is re-synced
through its ``restore_window``.  The wrapped
:class:`repro.machine.state.ProcessorState` therefore stays the single
source of truth at every burst boundary -- checkpoints, guards and
observers keep working unchanged.

Observability: per-cycle trace events cannot be emitted from C, so an
observer in ``trace`` mode disables bursts and the run takes the
per-cycle Python path, events complete.  An observer in ``profile`` or
``counters`` mode keeps bursting when the module was built with
telemetry: the generated C counts per-packet dispatches and attributed
cycles into a side-region of the state buffer, and the engine flushes
that region into the observer's :class:`repro.obs.MetricsRegistry`
after every burst -- per-packet counters come out bit-identical to a
per-cycle traced run.  Bursts are also disabled for packets the
self-modifying-code guard has invalidated
(:meth:`NativePipeline.invalidate_native`).
"""

from __future__ import annotations

from array import array

from repro.simcc.native import layout as L
from repro.support.errors import SimulationError, SimulationTimeout

#: Burst exit codes (mirrored in the generated C).
EXIT_COMPLETED = 0
EXIT_BUDGET = 1
EXIT_NEED_PYTHON = 2
EXIT_TRAP = 3


def _trap_exception(code, trap_pc):
    if code == L.TRAP_DIV_ZERO:
        return ZeroDivisionError("integer division or modulo by zero")
    if code == L.TRAP_NEG_SHIFT:
        return ValueError("negative shift count")
    if code == L.TRAP_INDEX:
        return IndexError("list index out of range")
    if code == L.TRAP_NEG_STALL:
        return SimulationError("stall() needs a non-negative cycle count")
    if code == L.TRAP_UNDEFINED:
        return SimulationError(
            "fetch outside the compiled region (pc=0x%x)" % trap_pc
        )
    return SimulationError("native burst trapped with unknown code %d"
                           % code)


class NativePipeline:
    """Engine wrapper dispatching proven windows to compiled bursts."""

    def __init__(self, inner, state, control, module):
        self._inner = inner
        self._state = state
        self._control = control
        self._observer = None
        # Packets the guard permanently demoted (self-modifying code):
        # they survive module swaps, a promoted replacement module must
        # never serve them either.
        self._demoted = set()
        self._bind_module(module)
        #: Per-window dispatch counters, surfaced through observability.
        self.dispatch_counts = {
            "bursts": 0,
            "native_cycles": 0,
            "python_cycles": 0,
            "need_python_exits": 0,
            "traps": 0,
        }

    def _bind_module(self, module):
        self._module = module
        layout = module.layout
        plan = module.plan
        self._telemetry = getattr(module, "telemetry", None)
        self._tel_seed_pc = None
        self._buf = layout.new_buffer(
            self._telemetry.slots if self._telemetry is not None else 0
        )
        self._buf_addr = self._buf.buffer_info()[0]
        # Packets that must run through the Python path: table packets
        # the analysis rejected (plus guard-invalidated ones).  Table
        # holes and out-of-range addresses stay native -- the burst
        # fetches them as trap pseudo-slots like the front-end.
        self._python_pcs = set(plan.reasons) | self._demoted
        self._ok = array("q", b"\x01\x00\x00\x00\x00\x00\x00\x00"
                         * plan.n_pc)
        for pc in self._python_pcs:
            if plan.pc_base <= pc < plan.pc_limit:
                self._ok[pc - plan.pc_base] = 0
        self._ok_addr = self._ok.buffer_info()[0]

    def adopt_module(self, module):
        """Swap in a replacement burst module at a burst boundary.

        The tiering pass widens the admitted set incrementally; each
        widening is a fresh compiled artifact.  Adoption rebuilds the
        buffer and dispatch gates for the new module while preserving
        the accumulated ``dispatch_counts`` and -- crucially -- every
        guard-demoted packet: a packet invalidated by a self-modifying
        write stays on the Python path no matter what admitted set a
        later promotion compiled.
        """
        self._bind_module(module)

    # -- delegation ---------------------------------------------------------

    @property
    def cycles(self):
        return self._inner.cycles

    @property
    def instructions_retired(self):
        return self._inner.instructions_retired

    @property
    def drained(self):
        return self._inner.drained

    @property
    def window_pcs(self):
        return self._inner.window_pcs

    def step(self):
        self._step_python()

    def reset(self):
        self._inner.reset()

    def set_observer(self, observer):
        self._observer = observer
        self._inner.set_observer(observer)

    def restore_window(self, pcs, cycles, instructions_retired):
        self._inner.restore_window(pcs, cycles, instructions_retired)

    def wrap_frontend(self, wrapper):
        self._inner.wrap_frontend(wrapper)

    def flush_interned(self):
        flush = getattr(self._inner, "flush_interned", None)
        if flush is not None:
            flush()

    def __getattr__(self, name):
        # Anything outside the engine contract falls through to the
        # wrapped engine (e.g. the static scheduler's column stats).
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._inner, name)

    # -- native window invalidation (self-modifying code) -------------------

    def invalidate_native(self, pcs):
        """Permanently demote ``pcs`` to the Python path.

        Called by the resilience guard when a program-memory write
        lands inside a packet: the compiled artifact still encodes the
        *old* micro-ops, so those windows must never burst again.  The
        guard's refreshed table serves them through the inner engine.
        """
        plan = self._module.plan
        for pc in pcs:
            if plan.pc_base <= pc < plan.pc_limit:
                self._ok[pc - plan.pc_base] = 0
            self._python_pcs.add(pc)
            self._demoted.add(pc)

    # -- execution ----------------------------------------------------------

    def run(self, max_cycles=50_000_000):
        control = self._control
        start = self.cycles
        while not (control.halted and self._inner.drained):
            ran = self.cycles - start
            if ran >= max_cycles:
                raise SimulationTimeout(
                    "simulation exceeded %d cycles without halting"
                    % max_cycles,
                    budget="cycles", limit=max_cycles, cycles=self.cycles,
                )
            if self._can_burst():
                rc = self._burst(max_cycles - ran)
                if rc == EXIT_NEED_PYTHON:
                    self._step_python()
            else:
                self._step_python()
        return self.cycles - start

    def run_chunk(self, cycles):
        control = self._control
        start = self.cycles
        end = start + cycles
        while self.cycles < end and not (
            control.halted and self._inner.drained
        ):
            if self._can_burst():
                rc = self._burst(end - self.cycles)
                if rc == EXIT_NEED_PYTHON:
                    self._step_python()
            else:
                self._step_python()
        return self.cycles - start

    def _step_python(self):
        self._inner.step()
        self.dispatch_counts["python_cycles"] += 1

    def _can_burst(self):
        observer = self._observer
        if observer is not None:
            # Trace-mode observers (and anything not declaring its
            # needs) require one event per cycle: Python path.  Profile
            # and counters modes are served by the telemetry flush --
            # but only when the module was built instrumented.
            if self._telemetry is None:
                return False
            if getattr(observer, "wants_cycle_events", True):
                return False
        python_pcs = self._python_pcs
        for pc in self._inner.window_pcs:
            if pc is not None and pc in python_pcs:
                return False
        return True

    def _burst(self, budget):
        inner = self._inner
        control = self._control
        module = self._module
        layout = module.layout
        buf = self._buf

        before = inner.cycles
        buf[L.HDR_CYCLES] = before
        buf[L.HDR_INSNS] = inner.instructions_retired
        buf[L.HDR_HALTED] = 1 if control.halted else 0
        buf[L.HDR_STALL] = control.stall_cycles
        buf[L.HDR_FLUSH_BELOW] = -1
        buf[L.HDR_CUR_STAGE] = -1
        buf[L.HDR_TRAP_CODE] = 0
        for depth_index, pc in enumerate(inner.window_pcs):
            buf[L.WIN_BASE + depth_index] = -1 if pc is None else pc
        layout.push(self._state, buf, module.push_set)
        telemetry = self._telemetry
        if telemetry is not None and self._observer is not None:
            # Seed the attribution anchor: bubbles at the head of the
            # burst bill to the packet the Python path issued last.
            seed = getattr(self._observer, "last_issue_pc", None)
            self._tel_seed_pc = seed
            buf[telemetry.base + L.TEL_LAST] = -1 if seed is None else seed

        rc = module.burst(self._buf_addr, self._ok_addr, budget)

        layout.pull(self._state, buf, module.pull_set)
        control.halted = bool(buf[L.HDR_HALTED])
        control.stall_cycles = buf[L.HDR_STALL]
        control.flush_below = -1
        pcs = tuple(
            None if buf[L.WIN_BASE + d] < 0 else buf[L.WIN_BASE + d]
            for d in range(layout.depth)
        )
        inner.restore_window(pcs, buf[L.HDR_CYCLES], buf[L.HDR_INSNS])

        counts = self.dispatch_counts
        counts["bursts"] += 1
        counts["native_cycles"] += buf[L.HDR_CYCLES] - before
        if telemetry is not None and self._observer is not None:
            # Flush before any trap re-raise: the cycles leading up to
            # the trap are exactly what a post-mortem wants counted.
            self._flush_telemetry()
        if rc == EXIT_NEED_PYTHON:
            counts["need_python_exits"] += 1
        if rc == EXIT_TRAP:
            counts["traps"] += 1
            raise _trap_exception(buf[L.HDR_TRAP_CODE],
                                  buf[L.HDR_TRAP_PC])
        return rc

    def _flush_telemetry(self):
        """Fold the burst's telemetry side-region into the observer's
        metrics and zero it for the next burst."""
        telemetry = self._telemetry
        buf = self._buf
        plan = self._module.plan
        base = telemetry.base
        last = buf[base + L.TEL_LAST]
        self._observer.on_burst_telemetry(
            pc_base=plan.pc_base,
            dispatch=buf[telemetry.disp_base:
                         telemetry.disp_base + telemetry.n_pc],
            cycles=buf[telemetry.cyc_base:
                       telemetry.cyc_base + telemetry.n_pc],
            insns=plan.metric_insns,
            drain_bubbles=buf[base + L.TEL_DRAIN],
            stall_bubbles=buf[base + L.TEL_STALL],
            squashed=buf[base + L.TEL_SQUASH],
            ctrl_stalls=buf[base + L.TEL_CTRL_STALL],
            ctrl_flushes=buf[base + L.TEL_CTRL_FLUSH],
            ctrl_halts=buf[base + L.TEL_CTRL_HALT],
            stray_cycles=buf[base + L.TEL_STRAY_CYC],
            stray_pc=self._tel_seed_pc,
            last_pc=None if last < 0 else last,
        )
        buf[base:base + telemetry.slots] = array(
            "q", bytes(8 * telemetry.slots)
        )
