"""Flat int64 state layout shared between Python and native bursts.

The native backend drives whole bursts of cycles per call, so all state
the generated C can touch must live in one flat buffer of ``int64_t``
slots.  :class:`StateLayout` is the contract: a deterministic mapping
from the model's resources (in declaration order) plus the pipeline
bookkeeping header onto buffer offsets.  The same layout description is
hashed into the native artifact key, so a cached shared object can
never be bound to a buffer it does not understand.

Header slots (fixed, before any resource):

========== ===========================================================
offset     contents
========== ===========================================================
0          cycle counter
1          instructions retired
2          halted flag (0/1)
3          pending stall cycles
4          flush_below (reset to -1 between cycles)
5          current stage (only meaningful during a stage call)
6..8       trap code / trap pc / trap stage (set on native traps)
9..9+D-1   pipeline window issue pcs, newest first (-1 = bubble)
========== ===========================================================

After the window come two watermark slots per array resource (dirty
low/high element index, maintained by generated element writes so the
pull after a burst copies only the touched range), then the resources
themselves: scalar registers, register files and memories, one slot per
element, in model declaration order.

Values are stored exactly as :class:`repro.machine.state.ProcessorState`
stores them: canonical form, so signed resources hold possibly negative
integers.  Every resource type must therefore fit in a signed 64-bit
slot; a model declaring a ``uint64`` resource is not nativisable and
:meth:`StateLayout.build` raises :class:`NativeUnsupported`.
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass
from typing import Optional, Tuple

HDR_CYCLES = 0
HDR_INSNS = 1
HDR_HALTED = 2
HDR_STALL = 3
HDR_FLUSH_BELOW = 4
HDR_CUR_STAGE = 5
HDR_TRAP_CODE = 6
HDR_TRAP_PC = 7
HDR_TRAP_STAGE = 8
WIN_BASE = 9

#: Trap codes reported through ``HDR_TRAP_CODE`` (mirrored in cgen).
TRAP_DIV_ZERO = 1
TRAP_NEG_SHIFT = 2
TRAP_INDEX = 3
TRAP_NEG_STALL = 4
TRAP_UNDEFINED = 5

# -- telemetry side-region (profiled bursts only) ----------------------------
#
# When a burst module is built with telemetry, the state buffer grows a
# side-region *after* the resources (so the resource layout -- and the
# artifact key of the un-instrumented module -- is untouched).  Relative
# offsets within the region:

#: Last issued pc (seeded from the observer before each burst; -1 = none).
TEL_LAST = 0
#: Bubble cycles attributed to a pre-burst packet outside the compiled
#: range (one bucket; the engine remembers which pc seeded TEL_LAST).
TEL_STRAY_CYC = 1
#: Bubble cycles while draining after halt.
TEL_DRAIN = 2
#: Bubble cycles while stalled.
TEL_STALL = 3
#: In-flight slots squashed by flushes.
TEL_SQUASH = 4
#: Control requests raised by behaviour code (stall()/flush()/halt()).
TEL_CTRL_STALL = 5
TEL_CTRL_FLUSH = 6
TEL_CTRL_HALT = 7
#: Header size; then ``n_pc`` dispatch counters, then ``n_pc``
#: attributed-cycle counters.
TEL_HEADER_SLOTS = 8


@dataclass(frozen=True)
class TelemetryRegion:
    """Geometry of the telemetry side-region in the flat buffer.

    ``base`` is the first slot past the resources
    (``StateLayout.total_slots``); ``n_pc`` spans the compiled pc range
    ``[pc_base, pc_limit)``.  Layout: the ``TEL_*`` header, then one
    dispatch counter per packet address, then one attributed-cycle
    counter per packet address.
    """

    base: int
    n_pc: int

    @property
    def disp_base(self):
        return self.base + TEL_HEADER_SLOTS

    @property
    def cyc_base(self):
        return self.base + TEL_HEADER_SLOTS + self.n_pc

    @property
    def slots(self):
        return TEL_HEADER_SLOTS + 2 * self.n_pc

    def describe(self):
        """Canonical text form (folded into the source digest)."""
        return "telemetry/1 base=%d n_pc=%d" % (self.base, self.n_pc)


class NativeUnsupported(Exception):
    """The model cannot be mapped onto the flat int64 layout."""


@dataclass(frozen=True)
class LayoutEntry:
    """One resource's placement in the buffer.

    ``length`` is ``None`` for scalar registers.  ``wm_offset`` points
    at the two dirty-watermark slots of array resources (``None`` for
    scalars, which are always pulled).
    """

    name: str
    offset: int
    length: Optional[int]
    width: int
    signed: bool
    wm_offset: Optional[int] = None

    @property
    def is_array(self):
        return self.length is not None


class StateLayout:
    """Deterministic flat buffer layout for one machine model."""

    def __init__(self, model_name, depth, pc_name, entries):
        self.model_name = model_name
        self.depth = depth
        self.pc_name = pc_name
        self.entries: Tuple[LayoutEntry, ...] = tuple(entries)
        self.by_name = {entry.name: entry for entry in self.entries}
        last = self.entries[-1]
        self.total_slots = last.offset + (last.length or 1)
        self.pc_offset = self.by_name[pc_name].offset

    @classmethod
    def build(cls, model):
        """Lay out all resources of ``model``; raises
        :class:`NativeUnsupported` when any resource cannot live in a
        signed 64-bit slot."""
        depth = model.pipeline.depth
        resources = []
        for reg in model.registers.values():
            resources.append((reg.name, reg.count, reg.dtype))
        for mem in model.memories.values():
            resources.append((mem.name, mem.size, mem.dtype))
        arrays = sum(1 for _, length, _ in resources if length is not None)
        offset = WIN_BASE + depth + 2 * arrays
        wm_offset = WIN_BASE + depth
        entries = []
        for name, length, dtype in resources:
            if dtype.width > 64 or (dtype.width == 64 and not dtype.signed):
                raise NativeUnsupported(
                    "resource %r (%s) does not fit a signed 64-bit slot"
                    % (name, dtype.name)
                )
            wm = None
            if length is not None:
                wm = wm_offset
                wm_offset += 2
            entries.append(LayoutEntry(
                name=name, offset=offset, length=length,
                width=dtype.width, signed=dtype.signed, wm_offset=wm,
            ))
            offset += length or 1
        return cls(model.name, depth, model.pc_name, entries)

    # -- identity -----------------------------------------------------------

    def describe(self):
        """Canonical text form hashed into artifact keys."""
        lines = ["layout/1 model=%s depth=%d pc=%s"
                 % (self.model_name, self.depth, self.pc_name)]
        for entry in self.entries:
            lines.append("%s off=%d len=%s w=%d s=%d wm=%s" % (
                entry.name, entry.offset, entry.length, entry.width,
                int(entry.signed), entry.wm_offset,
            ))
        return "\n".join(lines)

    def digest(self):
        return hashlib.sha256(self.describe().encode("utf-8")).hexdigest()

    # -- buffer transfer ----------------------------------------------------

    def new_buffer(self, extra_slots=0):
        """A zeroed flat buffer; ``extra_slots`` appends the telemetry
        side-region of an instrumented burst module."""
        return array("q", bytes(8 * (self.total_slots + extra_slots)))

    def push(self, state, buf, names=None):
        """Copy resources from ``state`` into ``buf``.

        ``names`` restricts the copy to a resource subset (the set the
        native code can read or write); array watermarks are reset so
        the following burst records its dirty range from scratch.
        """
        for entry in self.entries:
            if names is not None and entry.name not in names:
                continue
            if entry.is_array:
                storage = getattr(state, entry.name)
                buf[entry.offset:entry.offset + entry.length] = \
                    array("q", storage)
                buf[entry.wm_offset] = entry.length
                buf[entry.wm_offset + 1] = -1
            else:
                buf[entry.offset] = getattr(state, entry.name)

    def pull(self, state, buf, names=None):
        """Copy resources back from ``buf`` into ``state``.

        Array resources copy only their dirty watermark range (written
        in place through slice assignment, so wrappers installed over
        the storage list survive); scalars are always copied.
        """
        for entry in self.entries:
            if entry.is_array:
                if names is not None and entry.name not in names:
                    continue
                lo = buf[entry.wm_offset]
                hi = buf[entry.wm_offset + 1]
                if hi < lo:
                    continue
                storage = getattr(state, entry.name)
                base = entry.offset
                storage[lo:hi + 1] = buf[base + lo:base + hi + 1].tolist()
            else:
                if names is not None and entry.name not in names:
                    continue
                setattr(state, entry.name, buf[entry.offset])
