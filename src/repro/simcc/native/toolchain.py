"""C toolchain discovery, compilation and shared-object loading.

Discovery honours ``$CC`` first (an *empty* ``CC`` explicitly disables
the toolchain -- the CI fallback leg uses this), then falls back to
``cc``, ``gcc`` and ``clang`` on ``$PATH``.  Loading prefers cffi's
ABI-mode ``dlopen`` and falls back to :mod:`ctypes`; both paths expose
the same ``burst(buf_addr, ok_addr, max_cycles) -> int`` callable over
raw ``array('q')`` buffer addresses, so neither is a hard dependency.

Compiler identity (the first line of ``cc --version``) and the flag
set are part of every artifact's metadata: a cached shared object
built by a different compiler or flag set must miss, never load.
"""

from __future__ import annotations

import os
import shutil
import subprocess

#: Flags used for every native artifact build (part of the cache key).
CFLAGS = ("-O2", "-shared", "-fPIC")

_CANDIDATES = ("cc", "gcc", "clang")


class NativeToolchainError(Exception):
    """Compilation or loading of a native artifact failed."""


def find_compiler():
    """Path of a usable C compiler, or ``None``.

    ``$CC`` wins when set; setting it to the empty string explicitly
    disables native compilation (the documented opt-out).
    """
    env = os.environ.get("CC")
    if env is not None:
        if not env.strip():
            return None
        return env if os.sep in env else shutil.which(env)
    for name in _CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def compiler_identity(cc):
    """A stable identity string for ``cc`` (first ``--version`` line
    plus the flag set); part of every artifact's cache key."""
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30,
        ).stdout
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeToolchainError(
            "cannot identify compiler %r: %s" % (cc, exc)
        ) from exc
    first = out.splitlines()[0].strip() if out else os.path.basename(cc)
    return "%s | %s" % (first, " ".join(CFLAGS))


def compile_shared(cc, c_path, so_path):
    """Compile ``c_path`` into the shared object ``so_path``."""
    cmd = [cc, *CFLAGS, "-o", so_path, c_path]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=300)
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeToolchainError(
            "compiler invocation failed: %s" % exc
        ) from exc
    if proc.returncode != 0:
        raise NativeToolchainError(
            "compilation failed (%s):\n%s"
            % (" ".join(cmd), proc.stderr.strip())
        )
    return so_path


def load_burst(so_path):
    """Load ``repro_burst`` from ``so_path``.

    Returns ``(burst, loader_name)`` where ``burst`` takes the raw
    buffer addresses (``array('q').buffer_info()[0]``) plus the cycle
    budget and returns the burst exit code.
    """
    try:
        return _load_cffi(so_path), "cffi"
    except ImportError:
        pass
    return _load_ctypes(so_path), "ctypes"


def _load_cffi(so_path):
    from cffi import FFI

    ffi = FFI()
    ffi.cdef(
        "int64_t repro_burst(int64_t *, const int64_t *, int64_t);"
    )
    lib = ffi.dlopen(so_path)
    cast = ffi.cast
    # Resolve the pointer ctypes once: ffi.cast with a type *string*
    # re-parses it through pycparser on every call (~ms), which would
    # dwarf the burst itself.
    buf_t = ffi.typeof("int64_t *")
    ok_t = ffi.typeof("const int64_t *")
    fn = lib.repro_burst

    def burst(buf_addr, ok_addr, max_cycles):
        return fn(cast(buf_t, buf_addr), cast(ok_t, ok_addr), max_cycles)

    return burst


def _load_ctypes(so_path):
    import ctypes

    try:
        lib = ctypes.CDLL(so_path)
    except OSError as exc:
        raise NativeToolchainError(
            "cannot load %s: %s" % (so_path, exc)
        ) from exc
    fn = lib.repro_burst
    fn.restype = ctypes.c_int64
    fn.argtypes = (ctypes.c_void_p, ctypes.c_void_p, ctypes.c_int64)
    return fn
