"""Parallel fan-out for simulation compilation.

Simulation compilation is embarrassingly parallel per program word: the
decode / variant-resolve / schedule / codegen work for one word never
depends on another word.  This module provides a small deterministic
map over words backed by :mod:`concurrent.futures`:

* **threads** for in-memory table construction (the work produces
  model-tied Python objects that cannot cross a process boundary),
* **processes** for portable-table code generation (the work produces
  plain strings, and generating thousands of specialised function
  sources is CPU-bound Python that benefits from real parallelism).

Results are always returned in input order, so a parallel compile is
bit-identical to the serial one -- parallelism changes wall-clock only,
never the produced table.  Any pool failure falls back one level
(processes -> threads -> serial); ``jobs=None``/``jobs=1`` is fully
serial and allocates no pool.

Process pools use the ``fork`` start method so workers inherit the
(unpicklable) machine model via :data:`_FORK_MODEL`; on platforms
without ``fork`` the process path is skipped entirely.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

# Fan-out below this many items costs more than it saves.
MIN_PARALLEL_ITEMS = 32

# Set by the parent immediately before creating a fork-based process
# pool; forked workers read the inherited value via forked_model().
_FORK_MODEL = None


def effective_jobs(jobs, item_count):
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None``, ``0`` and ``1`` mean serial; negative values mean "one per
    CPU"; anything else is clamped to the number of items.
    """
    if jobs is None or jobs == 0 or jobs == 1:
        return 1
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(1, min(int(jobs), item_count))


def forked_model():
    """The model handed down to a forked worker process."""
    return _FORK_MODEL


def _fork_context():
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def map_tasks(fn, tasks, jobs=None, processes=False, model=None):
    """Map ``fn`` over ``tasks``; results in input order.

    With ``processes=True``, ``fn`` must be a module-level function
    taking one picklable task and returning a picklable result, and
    ``model`` is made available to workers through :func:`forked_model`.
    """
    tasks = list(tasks)
    workers = effective_jobs(jobs, len(tasks))
    global _FORK_MODEL
    _FORK_MODEL = model
    try:
        if workers == 1 or len(tasks) < MIN_PARALLEL_ITEMS:
            return [fn(task) for task in tasks]
        chunksize = max(1, len(tasks) // (workers * 4))
        if processes:
            context = _fork_context()
            if context is not None:
                try:
                    with ProcessPoolExecutor(
                        max_workers=workers, mp_context=context
                    ) as pool:
                        return list(pool.map(fn, tasks, chunksize=chunksize))
                except Exception:
                    pass  # pool setup/teardown failure: use threads
        try:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, tasks, chunksize=chunksize))
        except Exception:
            return [fn(task) for task in tasks]
    finally:
        _FORK_MODEL = None
