"""Partial (windowed) simulation compilation for tiered promotion.

The adaptive tiering pass (:mod:`repro.sim.tiering`) promotes *hot
windows* -- short packet-address ranges the profile identified -- to a
more expensive representation while the rest of the program stays at
its cheap base tier.  This module builds the promoted artifact: a
:class:`repro.simcc.portable.PortableTable` covering only the window,
compiled bit-identically to the corresponding region of a whole-program
build.

Bit-exactness hinges on packet formation: a packet's extent is a pure
function of the program words it spans, so the extracted patch program
must carry every member word of every packet *starting* in the window
-- including the trailing members of a multi-word packet at the window
(or program) end.  :func:`extract_window_program` extends the word
range accordingly, against the original segment limits, so decode,
packetisation and operation instantiation inside the window reproduce
the whole-program build exactly.  Only packets starting inside the
requested window may be spliced into a live table (tail addresses past
``limit`` can see clipped extents); :func:`window_pcs` names them.

Windowed tables cache like any other (:mod:`repro.simcc.cache`, format
v6) keyed per (model, program-window, level, window), and concurrent
builds of the same window deduplicate through the cache's single-flight
path -- so a re-run of the same workload promotes from cached artifacts
without recompiling.
"""

from __future__ import annotations

from repro.machine.packets import packet_extent
from repro.support.errors import ReproError
from repro.tools.objfile import Program


def _window_segment(model, program, start, limit):
    """The program segment containing ``[start, limit)``, or None."""
    pmem_name = model.config.program_memory
    for segment in program.segments_in(pmem_name):
        if segment.base <= start and limit <= segment.end:
            return segment
    return None


def window_pcs(model, program, start, limit):
    """The packet start addresses of window ``[start, limit)``.

    These are the only addresses a promotion may splice: every address
    is a legal packet start in the table representation, and each one
    starting inside the window has its full extent carried by
    :func:`extract_window_program`.
    """
    segment = _window_segment(model, program, start, limit)
    if segment is None:
        return ()
    return tuple(range(start, limit))


def extract_window_program(model, program, start, limit):
    """Extract ``[start, limit)`` of ``program`` as a patch program.

    The patch covers the window plus the trailing member words of any
    packet starting inside it, with extents computed against the
    *original* segment bounds -- so compiling the patch reproduces the
    whole-program packets bit-exactly for every window address.

    Raises :class:`~repro.support.errors.ReproError` when the window is
    not contained in a single program segment (promotion windows come
    from the profile of executed packets, so this indicates a stale or
    hand-built report).
    """
    if not start < limit:
        raise ReproError(
            "empty promotion window [0x%x, 0x%x)" % (start, limit)
        )
    segment = _window_segment(model, program, start, limit)
    if segment is None:
        raise ReproError(
            "promotion window [0x%x, 0x%x) is not contained in one "
            "program-memory segment of %r" % (start, limit, program.name)
        )
    base = segment.base
    words = segment.words

    def read_word(address):
        return words[address - base]

    end = limit
    for pc in range(start, limit):
        extent = packet_extent(model, read_word, pc, segment.end)
        end = max(end, pc + extent)
    end = min(end, segment.end)
    pmem_name = model.config.program_memory
    patch = Program(
        name="<window:0x%x-0x%x:%s>" % (start, limit, program.name),
        entry=start,
    )
    patch.add_segment(
        pmem_name, start, [int(w) for w in words[start - base:end - base]]
    )
    return patch


def build_window_table(model, program, start, limit, level="instantiated",
                       cache=None, jobs=None, observer=None):
    """Compile window ``[start, limit)`` into a portable partial table.

    With ``cache`` set the build goes through the cache's single-flight
    get-or-build: concurrent promotions of the same (digest, window,
    level) compile once, and a later run of the same workload binds the
    cached artifact without compiling at all.  Returns a
    :class:`repro.simcc.portable.PortableTable` whose ``window`` field
    records the range.
    """
    from repro.simcc.portable import build_portable_table

    patch = extract_window_program(model, program, start, limit)
    window = (int(start), int(limit))

    def builder():
        portable = build_portable_table(
            model, patch, level, jobs=jobs, observer=observer
        )
        portable.window = window
        return portable

    if cache is not None:
        return cache.load_or_build_portable(
            model, patch, level, builder, window=window
        )
    return builder()


def bound_window_table(model, program, start, limit, state, control,
                       level="instantiated", cache=None, jobs=None,
                       observer=None):
    """:func:`build_window_table` bound to a state/control pair.

    Returns ``(table, pcs)`` where ``pcs`` are the window's packet
    start addresses -- the only slots a caller may splice into a live
    whole-program table.
    """
    portable = build_window_table(
        model, program, start, limit, level=level, cache=cache,
        jobs=jobs, observer=observer,
    )
    table = portable.bind(state, control)
    return table, window_pcs(model, program, start, limit)
