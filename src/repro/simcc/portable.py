"""Portable (state-independent) simulation tables.

:meth:`repro.simcc.compiler.SimulationCompiler.compile` produces a
:class:`~repro.simcc.compiler.SimulationTable` whose micro-operations
are bound to one concrete state/control pair -- fast to execute, but
impossible to persist.  A :class:`PortableTable` is the relocatable
intermediate between the two: the full result of simulation compilation
(decode, variant resolution, scheduling, packet formation, operation
instantiation) expressed as

* lowered, post-pass :class:`repro.simcc.ir.IRFunction` micro-operation
  functions, one per occupied (pc, stage),
* a table spec mapping program addresses to per-stage function names
  plus packet extents,
* the per-address control-capability flags the static scheduler needs.

A portable table can be bound to any state/control pair (:meth:`bind`),
serialised byte-for-byte (:mod:`repro.simcc.cache`), or rendered as a
standalone module (:mod:`repro.simcc.emit`).  The persisted form is the
*IR*, not source text: both backends render from it on demand, and
binding never re-runs the simulation compiler -- warm loads cost one
``exec`` of pre-compiled code plus argument binding.

Note one deliberate asymmetry: a portable table is always *operation
instantiated* (generated code), even when built for level
``sequenced``.  The level still participates in cache keys so that
tables built for different levels never alias, and the bound table
reports the level it was compiled for.  Execution results are
bit-identical across the representations -- the code generator and the
AST evaluator are required to agree exactly, and the cross-check
benchmarks enforce it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Optional, Tuple

from repro.behavior.codegen import BehaviorCodegen
from repro.behavior.runtime import CODEGEN_GLOBALS
from repro.coding.decoder import InstructionDecoder
from repro.machine.driver import IssueSlot
from repro.machine.packets import packet_extent
from repro.machine.schedule import build_schedule
from repro.simcc import parallel
from repro.simcc.ir import (
    ModuleBackend,
    function_from_payload,
    function_to_payload,
    ops_have_control,
)


@dataclass
class PortableTable:
    """A serialisable, state-independent compiled simulation.

    ``functions`` is a tuple of lowered, post-pass
    :class:`repro.simcc.ir.IRFunction` objects in a fixed (pc-major,
    stage-minor) order; ``table_spec`` maps each program address to
    ``(per_stage_names, words, insn_count)``.

    ``window`` marks a *partial* table: the ``(start, limit)``
    packet-address range it was built for (see
    :mod:`repro.simcc.partial`).  ``None`` is a whole-program table.
    Partial tables bind like any other; the tier manager splices their
    bound slots into a live whole-program table.
    """

    level: str
    model_name: str
    program_name: str
    functions: Tuple[object, ...]
    table_spec: Dict[int, Tuple[Tuple[Tuple[str, ...], ...], int, int]]
    has_control: Dict[int, bool]
    instruction_count: int
    word_count: int
    schedule_safety: Optional[Dict[int, str]] = None
    proofs: Optional[Dict[int, object]] = None
    window: Optional[Tuple[int, int]] = None
    _code: Optional[object] = field(default=None, repr=False, compare=False)
    _namespace: Optional[dict] = field(default=None, repr=False, compare=False)

    # -- code ---------------------------------------------------------------

    def functions_source(self):
        """All IR functions rendered by the module backend as one
        module-sized string."""
        return ModuleBackend().render_functions(self.functions)

    def code(self):
        """The compiled code object for :meth:`functions_source` (cached)."""
        if self._code is None:
            self._code = compile(
                self.functions_source(), "<portable-simtab>", "exec"
            )
        return self._code

    def namespace(self):
        """Execute the generated functions once; returns the namespace.

        The functions take ``(s, c)`` parameters and are therefore
        shareable between any number of bound tables.
        """
        if self._namespace is None:
            namespace = dict(CODEGEN_GLOBALS)
            exec(self.code(), namespace)
            self._namespace = namespace
        return self._namespace

    # -- binding ------------------------------------------------------------

    def bind(self, state, control):
        """Rehydrate into a :class:`SimulationTable` bound to a
        state/control pair, without re-running the simulation compiler.

        The bound table carries no ``items_by_stage`` (the decoded
        (node, behaviour) pairs do not survive serialisation) but does
        carry ``ir_by_stage`` rebuilt from the persisted IR, so static
        level-3 column *fusion* works on cache-rehydrated tables too.
        """
        from repro.simcc.compiler import SimulationTable

        namespace = self.namespace()
        by_name = {func.name: func for func in self.functions}
        slots = {}
        ir_by_stage = {}
        empty = ()
        for pc, (per_stage, words, insn_count) in self.table_spec.items():
            ops_by_stage = tuple(
                tuple(
                    partial(namespace[name], state, control)
                    for name in stage_names
                ) if stage_names else empty
                for stage_names in per_stage
            )
            slots[pc] = IssueSlot(
                ops_by_stage=ops_by_stage,
                words=words,
                insn_count=insn_count,
            )
            ir_by_stage[pc] = tuple(
                tuple(by_name[name] for name in stage_names)
                for stage_names in per_stage
            )
        return SimulationTable(
            level=self.level,
            slots=slots,
            has_control=dict(self.has_control),
            items_by_stage=None,
            instruction_count=self.instruction_count,
            word_count=self.word_count,
            schedule_safety=(
                dict(self.schedule_safety)
                if self.schedule_safety is not None else None
            ),
            ir_by_stage=ir_by_stage,
            proofs=(
                dict(self.proofs) if self.proofs is not None else None
            ),
        )

    # -- (de)serialisation --------------------------------------------------

    def to_payload(self, with_code=True):
        """A marshal-compatible payload (ints, strings, tuples, dicts,
        and optionally the compiled code object).  Functions serialise
        as IR payloads (tagged tuples), not source text."""
        return {
            "level": self.level,
            "model": self.model_name,
            "program": self.program_name,
            "instruction_count": self.instruction_count,
            "word_count": self.word_count,
            "functions": tuple(
                function_to_payload(func) for func in self.functions
            ),
            "table_spec": {
                pc: (per_stage, words, insns)
                for pc, (per_stage, words, insns) in self.table_spec.items()
            },
            "has_control": dict(self.has_control),
            "schedule_safety": (
                dict(self.schedule_safety)
                if self.schedule_safety is not None else None
            ),
            "proofs": self._proofs_payload(),
            "window": self.window,
            "code": self.code() if with_code else None,
        }

    def _proofs_payload(self):
        if self.proofs is None:
            return None
        from repro.analysis import absint

        return absint.proofs_to_payload(self.proofs)

    @classmethod
    def from_payload(cls, payload):
        from repro.analysis import absint

        return cls(
            proofs=absint.proofs_from_payload(payload.get("proofs")),
            level=payload["level"],
            model_name=payload["model"],
            program_name=payload["program"],
            functions=tuple(
                function_from_payload(func) for func in payload["functions"]
            ),
            table_spec={
                int(pc): (
                    tuple(tuple(names) for names in per_stage),
                    words,
                    insns,
                )
                for pc, (per_stage, words, insns)
                in payload["table_spec"].items()
            },
            has_control={
                int(pc): bool(flag)
                for pc, flag in payload["has_control"].items()
            },
            schedule_safety=(
                {
                    int(pc): str(verdict)
                    for pc, verdict in payload["schedule_safety"].items()
                }
                if payload.get("schedule_safety") is not None else None
            ),
            instruction_count=payload["instruction_count"],
            word_count=payload["word_count"],
            window=(
                tuple(payload["window"])
                if payload.get("window") is not None else None
            ),
            _code=payload.get("code"),
        )


# -- construction ------------------------------------------------------------


def _word_functions(model, decoder, depth, pc, word):
    """Compile one program word to per-stage lowered IR functions.

    Returns ``(names, funcs, has_control)`` where ``names`` has one
    entry per pipeline stage (None for unoccupied stages) and ``funcs``
    is a tuple of :class:`repro.simcc.ir.IRFunction`.  Control
    capability is read off the lowered ops, which is exact: lowering
    already inlined every sub-operation.

    The variant cache is per word on purpose: it is keyed by node
    *identity*, and this function drops its decoded nodes on return --
    a longer-lived cache would see recycled ids and serve stale
    variants for fresh nodes.
    """
    codegen = BehaviorCodegen(model, {})
    node = decoder.decode(word, address=pc)
    schedule = build_schedule(node, model)
    stages = [[] for _ in range(depth)]
    for item in schedule:
        stages[item.stage].append((item.node, item.behavior))
    names = []
    funcs = []
    for stage, items in enumerate(stages):
        if not items:
            names.append(None)
            continue
        name = "insn_%x_stage_%d" % (pc, stage)
        funcs.append(codegen.lower_function(name, items))
        names.append(name)
    control = any(ops_have_control(func.ops) for func in funcs)
    return tuple(names), tuple(funcs), control


# Per-process toolchains for codegen workers, built lazily on the first
# task so pool start-up stays cheap.  Keyed by model identity because
# the thread/serial fallback paths run in the parent process, which may
# compile for several models over its lifetime.
_worker_toolchains = {}


def _process_word_task(task):
    """Worker entry: compile one (pc, word) to lowered IR functions.

    Runs in a forked worker (model inherited via the parallel module)
    or, on fallback, in the parent process itself.  IR functions are
    plain dataclasses and pickle back to the parent unchanged.
    """
    model = parallel.forked_model()
    toolchain = _worker_toolchains.get(id(model))
    if toolchain is None:
        toolchain = (model, InstructionDecoder(model), model.pipeline.depth)
        _worker_toolchains[id(model)] = toolchain
    model, decoder, depth = toolchain
    pc, word = task
    return _word_functions(model, decoder, depth, pc, word)


def build_portable_table(model, program, level="sequenced", jobs=None,
                         observer=None):
    """Run full simulation compilation into a :class:`PortableTable`.

    With ``jobs`` > 1 the per-word decode / variant-resolve / schedule /
    codegen fan-out runs on a process pool (falling back to threads,
    then serial); the merge is by program order, so the result is
    bit-identical to a serial build.  ``observer`` records one
    phase-timing span per compilation step.
    """
    from repro import obs as _obs
    from repro.simcc.compiler import LEVELS
    from repro.support.errors import ReproError

    if level not in LEVELS:
        raise ReproError(
            "unknown simulation level %r (expected one of %s)"
            % (level, ", ".join(LEVELS))
        )
    depth = model.pipeline.depth
    pmem_name = model.config.program_memory
    segments = program.segments_in(pmem_name)

    tasks = []
    for segment in segments:
        base = segment.base
        for offset, word in enumerate(segment.words):
            tasks.append((base + offset, word))

    with _obs.span(observer, "simcc.compile", level=level, portable=True):
        with _obs.span(observer, "simcc.decode", words=len(tasks)):
            if parallel.effective_jobs(jobs, len(tasks)) > 1:
                results = parallel.map_tasks(
                    _process_word_task, tasks, jobs=jobs, processes=True,
                    model=model,
                )
            else:
                decoder = InstructionDecoder(model)
                results = [
                    _word_functions(model, decoder, depth, pc, word)
                    for pc, word in tasks
                ]

        names_by_pc = {}
        control_by_pc = {}
        functions = []
        for (pc, _), (names, funcs, control) in zip(tasks, results):
            names_by_pc[pc] = names
            control_by_pc[pc] = control
            functions.extend(funcs)

        table_spec = {}
        has_control = {}
        with _obs.span(observer, "simcc.packetize", words=len(tasks)):
            for segment in segments:
                words = segment.words
                base = segment.base
                limit = base + len(words)

                def read_word(address, _words=words, _base=base):
                    return _words[address - _base]

                for pc in range(base, limit):
                    extent = packet_extent(model, read_word, pc, limit)
                    members = range(pc, pc + extent)
                    per_stage = tuple(
                        tuple(
                            names_by_pc[member][stage]
                            for member in members
                            if names_by_pc[member][stage] is not None
                        )
                        for stage in range(depth)
                    )
                    table_spec[pc] = (per_stage, extent, extent)
                    has_control[pc] = any(
                        control_by_pc[member] for member in members
                    )

        from repro.analysis import schedule_safety

        with _obs.span(observer, "simcc.analyze"):
            safety = schedule_safety(model, program)
        if observer is not None and safety:
            for pc, verdict in sorted(safety.items()):
                observer.on_hazard_verdict(pc, verdict)

        from repro.analysis import absint
        from repro.simcc import verify

        if verify.enabled():
            with _obs.span(observer, "simcc.verify",
                           functions=len(functions)):
                for func in functions:
                    verify.verify_function(func, model, context="portable")

        by_name = {func.name: func for func in functions}
        with _obs.span(observer, "simcc.absint",
                       packets=len(table_spec)):
            proofs = {
                pc: absint.analyze_packet(
                    [
                        [by_name[name] for name in stage_names]
                        for stage_names in per_stage
                    ],
                    model, pmem_name,
                )
                for pc, (per_stage, _words, _insns) in table_spec.items()
            }

    return PortableTable(
        level=level,
        model_name=model.name,
        program_name=program.name,
        functions=tuple(functions),
        table_spec=table_spec,
        has_control=has_control,
        instruction_count=len(tasks),
        word_count=len(tasks),
        schedule_safety=safety,
        proofs=proofs,
    )
