"""SimIR well-formedness verifier.

Every backend -- the Python exec backend, the module backend, and the
native C generator -- trusts the IR it receives: a write carrying the
wrong canonicalisation width silently corrupts register values, a local
read before its definition raises a confusing ``NameError`` deep inside
generated code, and a loop whose condition nothing in the body can
change spins forever.  The optimisation passes in :mod:`repro.simcc.ir`
rewrite that IR aggressively, so a pass bug miscompiles rather than
failing.

This module makes such bugs fail loudly at the point of introduction.
:func:`verify_function` structurally checks one :class:`~repro.simcc.ir.
IRFunction` against the machine model:

* node sanity -- known node/op kinds, intrinsic names and arities,
  control methods and arities;
* resource consistency -- scalar reads/writes name scalar registers,
  element accesses name register files or memories;
* width consistency -- a write's ``(width, signed)`` is either ``None``
  (a pass proved the value canonical) or exactly the declared dtype of
  the target (the lowering invariant);
* definite assignment -- every local is written before it is read on
  every path (guard branches are checked independently and joined by
  intersection; loop bodies are checked from the pre-loop state);
* loop sanity -- a constant-true condition, or a trap-free body that
  cannot change anything the condition reads, is a proven hang.

``run_passes`` calls the verifier before the first pass and after every
pass when verification is enabled; the test suite enables it globally
and ``repro-sim --verify-ir`` (or ``REPRO_VERIFY_IR=1``) enables it for
a normal run.  A violation raises :class:`IRVerificationError` naming
the function and the pass that introduced it.
"""

from __future__ import annotations

import os
from typing import Optional, Set, Tuple

from repro.behavior.runtime import CONTROL_INTRINSICS
from repro.simcc import ir
from repro.support.errors import BehaviorError


class IRVerificationError(BehaviorError):
    """Raised when a SimIR function violates a well-formedness rule."""


_UNARY_OPS = frozenset(["-", "~", "!"])

#: Required argument counts for pure intrinsics.
_INTRINSIC_ARITY = {
    "sext": 2,
    "zext": 2,
    "sat": 2,
    "abs": 1,
    "min": 2,
    "max": 2,
}

#: Required argument counts for pipeline-control methods.
_CONTROL_ARITY = {
    "request_flush": 0,
    "request_stall": 1,
    "request_halt": 0,
}


# ---------------------------------------------------------------------------
# Enable state
# ---------------------------------------------------------------------------

_default_enabled: Optional[bool] = None


def enabled() -> bool:
    """Whether the pass pipeline should verify automatically."""
    if _default_enabled is not None:
        return _default_enabled
    return os.environ.get("REPRO_VERIFY_IR", "") not in ("", "0")


def set_verify_default(flag: Optional[bool]) -> Optional[bool]:
    """Set (or with ``None`` reset) the process-wide verify default;
    returns the previous override so callers can restore it."""
    global _default_enabled
    previous = _default_enabled
    _default_enabled = flag
    return previous


# ---------------------------------------------------------------------------
# The verifier
# ---------------------------------------------------------------------------


class _Verifier:
    def __init__(self, func: ir.IRFunction, model, context: str = ""):
        self.func = func
        self.model = model
        self.context = context

    def fail(self, message: str) -> None:
        where = self.func.name
        if self.context:
            where = "%s [%s]" % (where, self.context)
        raise IRVerificationError("IR verification failed in %s: %s"
                                  % (where, message))

    # -- resource rules ---------------------------------------------------

    def _scalar_dtype(self, name: str, what: str):
        reg = self.model.registers.get(name)
        if reg is None:
            self.fail("%s names unknown register %r" % (what, name))
        if reg.is_file:
            self.fail("%s names register file %r (element access "
                      "required)" % (what, name))
        return reg.dtype

    def _element_dtype(self, name: str, what: str):
        reg = self.model.registers.get(name)
        if reg is not None:
            if not reg.is_file:
                self.fail("%s names scalar register %r (element access "
                          "is invalid)" % (what, name))
            return reg.dtype
        mem = self.model.memories.get(name)
        if mem is None:
            self.fail("%s names unknown resource %r" % (what, name))
        return mem.dtype

    def _check_width(self, op, dtype) -> None:
        if op.width is None:
            return
        if (op.width, op.signed) != (dtype.width, dtype.signed):
            self.fail(
                "%s canonicalises %r to width %d/%s but the declared "
                "dtype is width %d/%s"
                % (type(op).__name__, ir.write_cell(op)[0],
                   op.width, "signed" if op.signed else "unsigned",
                   dtype.width, "signed" if dtype.signed else "unsigned")
            )

    # -- value rules ------------------------------------------------------

    def check_value(self, value: ir.Value, defined: Set[str]) -> None:
        for node in ir.walk_values(value):
            if isinstance(node, ir.Const):
                if not isinstance(node.value, int) \
                        or isinstance(node.value, bool):
                    self.fail("Const carries non-integer %r"
                              % (node.value,))
            elif isinstance(node, ir.ReadReg):
                self._scalar_dtype(node.name, "ReadReg")
            elif isinstance(node, ir.ReadElem):
                self._element_dtype(node.resource, "ReadElem")
            elif isinstance(node, ir.ReadLocal):
                if node.name not in defined:
                    self.fail("local %r is read before assignment"
                              % node.name)
            elif isinstance(node, ir.Unary):
                if node.op not in _UNARY_OPS:
                    self.fail("unknown unary op %r" % node.op)
            elif isinstance(node, ir.Alu):
                if node.op not in ir._ALU_OPS:
                    self.fail("unknown ALU op %r" % node.op)
            elif isinstance(node, ir.Intrinsic):
                arity = _INTRINSIC_ARITY.get(node.name)
                if arity is None:
                    self.fail("unknown intrinsic %r" % node.name)
                if len(node.args) != arity:
                    self.fail(
                        "intrinsic %r takes %d argument(s), got %d"
                        % (node.name, arity, len(node.args))
                    )
                if node.name in ("sext", "zext", "sat"):
                    width = node.args[1]
                    if not isinstance(width, ir.Const) \
                            or not 1 <= width.value <= 64:
                        self.fail(
                            "intrinsic %r needs a constant width in "
                            "[1, 64]" % node.name
                        )
            elif isinstance(node, ir.Select):
                pass  # operands are covered by the walk
            else:
                self.fail("unknown value node %r" % type(node).__name__)

    # -- op rules ---------------------------------------------------------

    def check_ops(self, ops: Tuple[ir.MicroOp, ...],
                  defined: Set[str]) -> Set[str]:
        """Check a micro-op sequence; returns the set of locals
        definitely assigned after it (input ``defined`` is not
        mutated)."""
        defined = set(defined)
        for op in ops:
            if isinstance(op, ir.WriteReg):
                dtype = self._scalar_dtype(op.name, "WriteReg")
                self._check_width(op, dtype)
                self.check_value(op.value, defined)
            elif isinstance(op, ir.WriteElem):
                dtype = self._element_dtype(op.resource, "WriteElem")
                self._check_width(op, dtype)
                self.check_value(op.index, defined)
                self.check_value(op.value, defined)
            elif isinstance(op, ir.WriteLocal):
                self.check_value(op.value, defined)
                defined.add(op.name)
            elif isinstance(op, ir.Control):
                arity = _CONTROL_ARITY.get(op.method)
                if arity is None:
                    self.fail("unknown control method %r" % op.method)
                if len(op.args) != arity:
                    self.fail(
                        "control %r takes %d argument(s), got %d"
                        % (op.method, arity, len(op.args))
                    )
                for arg in op.args:
                    self.check_value(arg, defined)
            elif isinstance(op, ir.Guard):
                self.check_value(op.cond, defined)
                then_defined = self.check_ops(op.then_ops, defined)
                else_defined = self.check_ops(op.else_ops, defined)
                defined = then_defined & else_defined
            elif isinstance(op, ir.Loop):
                self.check_value(op.cond, defined)
                self.check_loop(op, defined)
                # The body may run zero times: definitions inside it
                # are not definite afterwards.
                self.check_ops(op.body, defined)
            elif isinstance(op, ir.Eval):
                self.check_value(op.value, defined)
            else:
                self.fail("unknown micro-op %r" % type(op).__name__)
        return defined

    def check_loop(self, op: ir.Loop, defined: Set[str]) -> None:
        if isinstance(op.cond, ir.Const):
            if op.cond.value:
                self.fail("loop condition is constant true (the loop "
                          "cannot terminate)")
            return
        # A loop whose body provably cannot change anything the
        # condition reads -- and cannot exit by trapping -- never
        # terminates once entered.
        cond_cells = ir.read_cells(op.cond)
        cond_locals = ir.value_locals(op.cond)
        values = [op.cond]
        for body_op in ir.walk_ops(op.body):
            cell = ir.write_cell(body_op)
            if cell is not None and any(
                ir._cells_touch(cell, read) for read in cond_cells
            ):
                return
            if isinstance(body_op, ir.WriteLocal) \
                    and body_op.name in cond_locals:
                return
            values.extend(ir.op_values(body_op))
        if all(ir._trap_free(value) for value in values):
            self.fail("loop condition is invariant (nothing in the "
                      "body can change it, and no op can trap out)")


def verify_function(func: ir.IRFunction, model,
                    context: str = "") -> ir.IRFunction:
    """Check one IR function for well-formedness against ``model``.

    Raises :class:`IRVerificationError` on the first violation;
    ``context`` (e.g. the name of the pass that just ran) is included
    in the message.  Returns ``func`` so call sites can chain.
    """
    _Verifier(func, model, context).check_ops(func.ops, set())
    return func


__all__ = [
    "IRVerificationError",
    "enabled",
    "set_verify_default",
    "verify_function",
]
