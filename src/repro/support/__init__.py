"""Shared low-level support code: bit manipulation, diagnostics, errors."""

from repro.support.bitutils import (
    BitPattern,
    bit_length_for,
    extract_field,
    insert_field,
    mask,
    saturate_signed,
    sign_extend,
    to_signed,
    to_unsigned,
)
from repro.support.diagnostics import Diagnostic, DiagnosticSink, SourceLocation
from repro.support.errors import (
    AssemblerError,
    BehaviorError,
    CodingError,
    DecodeError,
    LisaError,
    LisaSemanticError,
    LisaSyntaxError,
    ReproError,
    SimulationError,
)

__all__ = [
    "BitPattern",
    "bit_length_for",
    "extract_field",
    "insert_field",
    "mask",
    "saturate_signed",
    "sign_extend",
    "to_signed",
    "to_unsigned",
    "Diagnostic",
    "DiagnosticSink",
    "SourceLocation",
    "ReproError",
    "LisaError",
    "LisaSyntaxError",
    "LisaSemanticError",
    "BehaviorError",
    "CodingError",
    "DecodeError",
    "AssemblerError",
    "SimulationError",
]
