"""Bit-level utilities used by coding, decoding, and simulation.

Everything here works on plain Python integers.  Register and memory
contents are stored as *unsigned* values of the declared width; helpers
convert to and from two's-complement signed interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.support.errors import CodingError


def mask(width):
    """Return an all-ones mask of ``width`` bits (``mask(4) == 0b1111``)."""
    if width < 0:
        raise ValueError("mask width must be non-negative, got %d" % width)
    return (1 << width) - 1


def bit_length_for(value):
    """Number of bits needed to represent the non-negative ``value``.

    Unlike ``int.bit_length`` this returns 1 for zero, because a coding
    field can never be zero bits wide.
    """
    if value < 0:
        raise ValueError("bit_length_for expects a non-negative value")
    return max(1, value.bit_length())


def to_unsigned(value, width):
    """Two's-complement encode ``value`` into ``width`` bits."""
    return value & mask(width)


def to_signed(value, width):
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    sign_bit = 1 << (width - 1)
    if value & sign_bit:
        return value - (1 << width)
    return value


def sign_extend(value, from_width, to_width=None):
    """Sign-extend the ``from_width``-bit ``value``.

    With ``to_width`` the result is re-encoded unsigned into that many
    bits; without it the (possibly negative) Python integer is returned.
    """
    signed = to_signed(value, from_width)
    if to_width is None:
        return signed
    return to_unsigned(signed, to_width)


def extract_field(word, offset, width, word_width):
    """Extract ``width`` bits at ``offset`` from the MSB side of ``word``.

    Coding fields in a machine description are written left to right
    starting at the most significant bit, so ``offset`` counts from the
    MSB: offset 0 / width 4 of a 16-bit word is bits [15:12].
    """
    shift = word_width - offset - width
    if shift < 0:
        raise CodingError(
            "field (offset=%d, width=%d) does not fit in a %d-bit word"
            % (offset, width, word_width)
        )
    return (word >> shift) & mask(width)


def insert_field(word, value, offset, width, word_width):
    """Inverse of :func:`extract_field`: place ``value`` into ``word``."""
    shift = word_width - offset - width
    if shift < 0:
        raise CodingError(
            "field (offset=%d, width=%d) does not fit in a %d-bit word"
            % (offset, width, word_width)
        )
    field_mask = mask(width) << shift
    return (word & ~field_mask) | ((value & mask(width)) << shift)


def canonicalize(value, width, signed):
    """Encode ``value`` into the canonical storage form of a resource.

    Resources of a declared width store their contents masked to that
    width; *signed* resources store the two's-complement interpretation
    as a (possibly negative) Python integer, so that reads -- which
    dominate simulation time -- need no conversion.  This is the single
    source of truth for the write-canonicalisation formula shared by
    the behaviour evaluator, the code generator and the SimIR backends
    (:func:`canonical_source` renders the same arithmetic as Python
    source text).
    """
    value &= mask(width)
    if signed and value >= (1 << (width - 1)):
        return value - (1 << width)
    return value


def canonical_source(value_source, width, signed):
    """Python source text computing ``canonicalize(value_source, ...)``.

    The emitted arithmetic must agree bit-for-bit with
    :func:`canonicalize` for every integer input; the property tests
    exercise the agreement exhaustively over small widths.
    """
    if signed:
        half = 1 << (width - 1)
        return "((%s + %d) & %d) - %d" % (
            value_source, half, mask(width), half
        )
    return "(%s) & %d" % (value_source, mask(width))


def saturate_signed(value, width):
    """Clamp ``value`` to the signed range of ``width`` bits.

    This is the DSP saturation arithmetic primitive exposed to the
    behaviour language as ``sat(value, width)``.
    """
    lo = -(1 << (width - 1))
    hi = (1 << (width - 1)) - 1
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


@dataclass(frozen=True)
class BitPattern:
    """A fixed-width bit pattern with don't-care positions.

    ``value`` holds the cared-about bits, ``care`` has a 1 for every bit
    position that must match.  A pattern written ``0b01x1`` has
    ``width=4``, ``value=0b0101`` (x replaced by 0) and ``care=0b1101``.
    """

    width: int
    value: int
    care: int

    def __post_init__(self):
        if self.width <= 0:
            raise CodingError("bit pattern must have positive width")
        if self.value & ~mask(self.width):
            raise CodingError("pattern value wider than declared width")
        if self.care & ~mask(self.width):
            raise CodingError("pattern care mask wider than declared width")
        if self.value & ~self.care:
            raise CodingError("pattern has value bits outside the care mask")

    @classmethod
    def parse(cls, text):
        """Parse a pattern literal like ``01x1`` (without the 0b prefix)."""
        if not text:
            raise CodingError("empty bit pattern")
        value = 0
        care = 0
        for ch in text:
            value <<= 1
            care <<= 1
            if ch == "0":
                care |= 1
            elif ch == "1":
                value |= 1
                care |= 1
            elif ch in ("x", "X"):
                pass
            else:
                raise CodingError("invalid character %r in bit pattern" % ch)
        return cls(width=len(text), value=value, care=care)

    @classmethod
    def exact(cls, value, width):
        """A pattern with no don't-cares."""
        return cls(width=width, value=value & mask(width), care=mask(width))

    @classmethod
    def any(cls, width):
        """A pattern that matches every ``width``-bit value."""
        return cls(width=width, value=0, care=0)

    @property
    def is_fully_specified(self):
        return self.care == mask(self.width)

    def matches(self, word):
        """True when the ``width`` low bits of ``word`` satisfy the pattern."""
        return (word & self.care) == self.value

    def overlaps(self, other):
        """True when some word matches both patterns (same width required)."""
        if self.width != other.width:
            raise CodingError(
                "cannot compare patterns of width %d and %d"
                % (self.width, other.width)
            )
        common = self.care & other.care
        return (self.value & common) == (other.value & common)

    def concat(self, other):
        """Concatenate: ``self`` in the high bits, ``other`` in the low."""
        return BitPattern(
            width=self.width + other.width,
            value=(self.value << other.width) | other.value,
            care=(self.care << other.width) | other.care,
        )

    def specialise(self, offset, width, value):
        """Return a copy with the sub-field at ``offset`` fixed to ``value``.

        ``offset`` counts from the MSB, like :func:`extract_field`.
        """
        shift = self.width - offset - width
        if shift < 0:
            raise CodingError("sub-field outside pattern")
        field_mask = mask(width) << shift
        return BitPattern(
            width=self.width,
            value=(self.value & ~field_mask) | ((value & mask(width)) << shift),
            care=self.care | field_mask,
        )

    def __str__(self):
        chars = []
        for pos in range(self.width - 1, -1, -1):
            bit = 1 << pos
            if not self.care & bit:
                chars.append("x")
            elif self.value & bit:
                chars.append("1")
            else:
                chars.append("0")
        return "0b" + "".join(chars)
