"""Source locations and diagnostic collection for the language front-ends."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SourceLocation:
    """A position inside a LISA or assembly source text."""

    filename: str
    line: int
    column: int

    def __str__(self):
        return "%s:%d:%d" % (self.filename, self.line, self.column)


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


@dataclass(frozen=True)
class Diagnostic:
    """A single warning or note produced during model compilation."""

    severity: str  # "warning" or "note"
    message: str
    location: SourceLocation = UNKNOWN_LOCATION

    def __str__(self):
        return "%s: %s: %s" % (self.location, self.severity, self.message)


@dataclass
class DiagnosticSink:
    """Collects non-fatal diagnostics emitted by the LISA compiler.

    Fatal problems raise exceptions; this sink exists so that the compiler
    can point out suspicious-but-legal constructs (unused operations,
    coding fields that shadow resources, ...) without aborting.
    """

    diagnostics: list = field(default_factory=list)

    def warn(self, message, location=UNKNOWN_LOCATION):
        self.diagnostics.append(Diagnostic("warning", message, location))

    def note(self, message, location=UNKNOWN_LOCATION):
        self.diagnostics.append(Diagnostic("note", message, location))

    @property
    def warnings(self):
        return [d for d in self.diagnostics if d.severity == "warning"]

    def extend(self, other):
        self.diagnostics.extend(other.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self):
        return len(self.diagnostics)
