"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch package errors without also
swallowing programming mistakes (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every intentional error raised by this package."""

    def __init__(self, message, location=None):
        self.message = message
        self.location = location
        super().__init__(self._format())

    def _format(self):
        if self.location is not None:
            return "%s: %s" % (self.location, self.message)
        return str(self.message)


class LisaError(ReproError):
    """Base class for errors in LISA model processing."""


class LisaSyntaxError(LisaError):
    """Lexical or syntactic error in a LISA description."""


class LisaSemanticError(LisaError):
    """The LISA description parsed but is not a valid machine model."""


class BehaviorError(LisaError):
    """Error in a BEHAVIOR/EXPRESSION section (parse or compile time)."""


class CodingError(LisaError):
    """Inconsistent instruction coding (overlaps, width mismatches...)."""


class DecodeError(ReproError):
    """An instruction word does not match any coding in the model."""

    def __init__(self, message, word=None, address=None):
        self.word = word
        self.address = address
        if word is not None:
            message = "%s (word=0x%x%s)" % (
                message,
                word,
                "" if address is None else ", address=0x%x" % address,
            )
        super().__init__(message)


class AssemblerError(ReproError):
    """Error while assembling or disassembling a target program."""


class LinkError(ReproError):
    """Error while linking/relocating object files."""


class SimulationError(ReproError):
    """Run-time error inside a simulator (bad memory access, deadlock...)."""
