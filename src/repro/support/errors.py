"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch package errors without also
swallowing programming mistakes (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every intentional error raised by this package."""

    def __init__(self, message, location=None):
        self.message = message
        self.location = location
        super().__init__(self._format())

    def _format(self):
        if self.location is not None:
            return "%s: %s" % (self.location, self.message)
        return str(self.message)


class LisaError(ReproError):
    """Base class for errors in LISA model processing."""


class LisaSyntaxError(LisaError):
    """Lexical or syntactic error in a LISA description."""


class LisaSemanticError(LisaError):
    """The LISA description parsed but is not a valid machine model."""


class BehaviorError(LisaError):
    """Error in a BEHAVIOR/EXPRESSION section (parse or compile time)."""


class CodingError(LisaError):
    """Inconsistent instruction coding (overlaps, width mismatches...)."""


class DecodeError(ReproError):
    """An instruction word does not match any coding in the model."""

    def __init__(self, message, word=None, address=None):
        self.word = word
        self.address = address
        if word is not None:
            message = "%s (word=0x%x%s)" % (
                message,
                word,
                "" if address is None else ", address=0x%x" % address,
            )
        super().__init__(message)


class AssemblerError(ReproError):
    """Error while assembling or disassembling a target program."""


class LinkError(ReproError):
    """Error while linking/relocating object files."""


class SimulationError(ReproError):
    """Run-time error inside a simulator (bad memory access, deadlock...)."""


class SimulationTimeout(SimulationError):
    """A cycle or wall-clock budget expired before the program halted.

    Subclasses :class:`SimulationError` so existing ``except`` clauses
    keep working.  Carries enough context to resume instead of losing
    the simulation: ``budget`` names the exhausted budget (``"cycles"``
    or ``"wall"``), ``limit`` its configured value, ``cycles`` the
    simulated-cycle position, ``pc`` the next fetch address and
    ``checkpoint`` (attached by :meth:`repro.sim.base.Simulator.run`) a
    :class:`repro.resilience.checkpoint.Checkpoint` the caller can
    :meth:`~repro.sim.base.Simulator.restore` from.
    """

    def __init__(self, message, budget="cycles", limit=None, cycles=None,
                 pc=None, checkpoint=None):
        self.budget = budget
        self.limit = limit
        self.cycles = cycles
        self.pc = pc
        self.checkpoint = checkpoint
        super().__init__(message)


class StaleTableError(SimulationError):
    """The program wrote into already-compiled program memory.

    Raised by the program-memory write guard under the ``error`` policy:
    the simulation table was built at simulation-compile time and the
    store just invalidated part of it.  ``address`` is the written
    program-memory cell, ``pcs`` the packet start addresses whose table
    entries went stale.
    """

    def __init__(self, message, address=None, pcs=()):
        self.address = address
        self.pcs = tuple(pcs)
        super().__init__(message)


class CheckpointError(SimulationError):
    """A checkpoint cannot be taken, loaded or restored (corrupt file,
    format mismatch, or a snapshot from a different model/program)."""


class ServiceError(ReproError):
    """The simulation job service cannot satisfy a request (unknown
    job, transport failure, pool shut down, drain deadline missed)."""


class BudgetExceededError(ServiceError):
    """A job submission exceeds its tenant's budget (active-job limit,
    total-cycle allowance, or per-job cycle ceiling).

    ``tenant`` names the budgeted tenant and ``budget`` the exhausted
    dimension (``"active_jobs"``, ``"total_cycles"`` or
    ``"cycles_per_job"``).
    """

    def __init__(self, message, tenant=None, budget=None):
        self.tenant = tenant
        self.budget = budget
        super().__init__(message)


def annotate_simulation_error(exc, cycles=None, pc=None):
    """Attach run-position context to an error raised mid-simulation.

    A ``DecodeError`` or behaviour trap escaping 40M cycles into a run
    is undiagnosable without knowing *when* it happened; this stamps the
    cycle count and fetch PC onto the exception (``sim_cycles`` /
    ``sim_pc`` attributes) and appends them to the rendered message.
    Idempotent -- the first annotation wins -- and type-preserving, so
    existing ``except`` clauses are unaffected.
    """
    if not isinstance(exc, ReproError):
        return exc
    if isinstance(exc, SimulationTimeout):
        return exc  # carries its own position context
    if getattr(exc, "sim_cycles", None) is not None:
        return exc
    exc.sim_cycles = cycles
    exc.sim_pc = pc
    parts = []
    if cycles is not None:
        parts.append("cycle %d" % cycles)
    if pc is not None:
        parts.append("pc=0x%x" % pc)
    if parts:
        suffix = " [%s]" % ", ".join(parts)
        if exc.args:
            exc.args = (str(exc.args[0]) + suffix,) + tuple(exc.args[1:])
        else:
            exc.args = (suffix.strip(),)
    return exc
