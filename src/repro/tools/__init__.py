"""Generated target tools: assembler, disassembler, object files, loader.

These are the retargetable "software development tools" that a machine
description buys you (the paper's motivation for language-based
approaches): all of them are driven purely by the model data base.
"""

from repro.tools.objfile import Program, Segment
from repro.tools.asm import Assembler
from repro.tools.disasm import Disassembler

__all__ = ["Program", "Segment", "Assembler", "Disassembler"]
