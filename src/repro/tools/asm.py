"""Retargetable two-pass assembler, generated from the model data base.

The assembler is driven entirely by the SYNTAX and CODING sections of
the machine description: matching an instruction line walks the
operation tree (groups select alternatives by syntax), and encoding uses
the shared :class:`repro.coding.InstructionEncoder`.

Source format::

    ; comment (also // ...)
            .entry start        ; entry point (symbol or number)
            .org 0x10           ; set location counter (word address)
            .section dmem       ; switch to a data memory
            .word 1, 2, -3      ; literal words
            .space 8            ; zero-filled words
            .equ N, 16          ; assembly-time constant
    start:  ldi r1, N
            add r3, r1, r2
         || add r4, r1, r2      ; VLIW: parallel with previous instruction
            br start            ; symbols resolve in pass 2

Operand expressions are ``value`` or ``value + value`` / ``value -
value`` where value is an integer, a label or an ``.equ`` constant.
Coding fields that never appear in an operation's SYNTAX assemble as 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.coding.encoder import InstructionEncoder, OperandSpec
from repro.coding.layout import layout_of
from repro.lisa import model as m
from repro.lisa.lexer import tokenize
from repro.support.bitutils import mask
from repro.support.errors import AssemblerError, LisaSyntaxError
from repro.tools.objfile import Program


@dataclass
class _SymbolicValue:
    """An operand value awaiting pass-2 symbol resolution."""

    positive: List[object]  # term: int or symbol name
    negative: List[object]

    def resolve(self, symbols, line_no):
        total = 0
        for term in self.positive:
            total += _term_value(term, symbols, line_no)
        for term in self.negative:
            total -= _term_value(term, symbols, line_no)
        return total


def _term_value(term, symbols, line_no):
    if isinstance(term, int):
        return term
    if term in symbols:
        return symbols[term]
    raise AssemblerError("line %d: undefined symbol %r" % (line_no, term))


@dataclass
class _PendingInstruction:
    line_no: int
    memory: str
    address: int
    spec: OperandSpec
    parallel: bool  # "||" line: chain to the previous instruction


@dataclass
class _PendingData:
    line_no: int
    memory: str
    address: int
    value: object  # int or _SymbolicValue


class _LineScanner:
    """Token cursor over one assembly line."""

    def __init__(self, tokens):
        self.tokens = tokens  # excludes the eof token
        self.pos = 0

    def clone(self):
        other = _LineScanner(self.tokens)
        other.pos = self.pos
        return other

    def peek(self):
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self):
        token = self.peek()
        if token is not None:
            self.pos += 1
        return token

    def at_end(self):
        return self.pos >= len(self.tokens)


class Assembler:
    """Two-pass assembler for one machine model."""

    def __init__(self, model):
        self._model = model
        self._encoder = InstructionEncoder(model)
        self._root = model.root_operation
        self._pmem = model.config.program_memory
        self._syntax_cache = {}

    # -- public API -----------------------------------------------------------

    def assemble_text(self, text, name="program", lint=True):
        """Assemble source text into a :class:`Program`.

        On VLIW models the result is linted for same-packet write
        collisions (see :mod:`repro.tools.lint`); warnings are attached
        as ``program.lint_warnings``.
        """
        symbols = {}
        instructions = []
        data = []
        entry = [None]
        self._first_pass(text, symbols, instructions, data, entry)
        program = self._second_pass(
            name, symbols, instructions, data, entry[0]
        )
        if lint and self._model.is_vliw:
            from repro.tools.lint import lint_vliw_packets

            program.lint_warnings = lint_vliw_packets(self._model, program)
        return program

    def assemble_file(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return self.assemble_text(text, name=str(path))

    # -- pass 1 -----------------------------------------------------------------

    def _first_pass(self, text, symbols, instructions, data, entry):
        memory = self._pmem
        counters = {memory: 0}
        for line_no, raw_line in enumerate(text.splitlines(), start=1):
            line = _strip_comment(raw_line).strip()
            if not line:
                continue
            parallel = False
            if line.startswith("||"):
                parallel = True
                line = line[2:].strip()
                if not line:
                    raise AssemblerError(
                        "line %d: '||' without an instruction" % line_no
                    )
            tokens = self._tokenize_line(line, line_no)
            scanner = _LineScanner(tokens)
            # label definitions: ident ':' (possibly several)
            while (
                len(scanner.tokens) >= scanner.pos + 2
                and scanner.tokens[scanner.pos].kind == "ident"
                and scanner.tokens[scanner.pos + 1].is_punct(":")
            ):
                label = scanner.next().text
                scanner.next()
                if label in symbols:
                    raise AssemblerError(
                        "line %d: duplicate label %r" % (line_no, label)
                    )
                symbols[label] = counters.setdefault(memory, 0)
            if scanner.at_end():
                continue
            token = scanner.peek()
            if token.is_punct("."):
                memory = self._directive(
                    scanner, line_no, symbols, counters, memory, data, entry
                )
                continue
            if parallel and not self._model.is_vliw:
                raise AssemblerError(
                    "line %d: '||' is only valid for VLIW models" % line_no
                )
            if memory != self._pmem:
                raise AssemblerError(
                    "line %d: instructions must go to program memory %r "
                    "(currently in section %r)" % (line_no, self._pmem, memory)
                )
            spec = self._match_instruction(scanner, line_no, line)
            address = counters.setdefault(memory, 0)
            instructions.append(
                _PendingInstruction(line_no, memory, address, spec, parallel)
            )
            counters[memory] = address + 1

    def _tokenize_line(self, line, line_no):
        try:
            tokens = tokenize(line, "<asm:%d>" % line_no)
        except LisaSyntaxError as exc:
            raise AssemblerError(
                "line %d: %s" % (line_no, exc.message)
            ) from exc
        return [t for t in tokens if t.kind != "eof"]

    # -- directives -----------------------------------------------------------

    def _directive(self, scanner, line_no, symbols, counters, memory, data,
                   entry):
        scanner.next()  # '.'
        name_token = scanner.next()
        if name_token is None or name_token.kind != "ident":
            raise AssemblerError("line %d: malformed directive" % line_no)
        name = name_token.text.lower()
        if name == "org":
            value = self._expect_const_expr(scanner, line_no, symbols)
            counters[memory] = value
        elif name == "entry":
            token = scanner.next()
            if token is None:
                raise AssemblerError("line %d: .entry needs a value" % line_no)
            if token.kind == "int":
                entry[0] = token.value
            elif token.kind == "ident":
                entry[0] = _SymbolicValue([token.text], [])
            else:
                raise AssemblerError(
                    "line %d: .entry needs a symbol or number" % line_no
                )
        elif name == "section":
            token = scanner.next()
            if token is None or token.kind != "ident":
                raise AssemblerError(
                    "line %d: .section needs a memory name" % line_no
                )
            if token.text not in self._model.memories:
                raise AssemblerError(
                    "line %d: unknown memory %r" % (line_no, token.text)
                )
            memory = token.text
            counters.setdefault(memory, 0)
        elif name == "word":
            while True:
                value = self._parse_operand_expr(scanner, line_no)
                address = counters.setdefault(memory, 0)
                data.append(_PendingData(line_no, memory, address, value))
                counters[memory] = address + 1
                if scanner.at_end():
                    break
                token = scanner.next()
                if not token.is_punct(","):
                    raise AssemblerError(
                        "line %d: expected ',' between .word values" % line_no
                    )
        elif name == "space":
            count = self._expect_const_expr(scanner, line_no, symbols)
            address = counters.setdefault(memory, 0)
            for offset in range(count):
                data.append(
                    _PendingData(line_no, memory, address + offset, 0)
                )
            counters[memory] = address + count
        elif name == "equ":
            token = scanner.next()
            if token is None or token.kind != "ident":
                raise AssemblerError("line %d: .equ needs a name" % line_no)
            comma = scanner.next()
            if comma is None or not comma.is_punct(","):
                raise AssemblerError(
                    "line %d: .equ needs 'name, value'" % line_no
                )
            value = self._expect_const_expr(scanner, line_no, symbols)
            if token.text in symbols:
                raise AssemblerError(
                    "line %d: duplicate symbol %r" % (line_no, token.text)
                )
            symbols[token.text] = value
        else:
            raise AssemblerError(
                "line %d: unknown directive .%s" % (line_no, name)
            )
        if not scanner.at_end() and name != "word":
            raise AssemblerError(
                "line %d: trailing tokens after directive" % line_no
            )
        return memory

    def _expect_const_expr(self, scanner, line_no, symbols):
        value = self._parse_operand_expr(scanner, line_no)
        if isinstance(value, _SymbolicValue):
            value = value.resolve(symbols, line_no)
        return value

    def _parse_operand_expr(self, scanner, line_no):
        """Parse ``[-] term (('+'|'-') term)*`` into int or symbolic."""
        positive, negative = [], []
        sign_negative = False
        token = scanner.peek()
        if token is not None and token.is_punct("-"):
            scanner.next()
            sign_negative = True
        term = self._parse_term(scanner, line_no)
        (negative if sign_negative else positive).append(term)
        while True:
            token = scanner.peek()
            if token is None or not (
                token.is_punct("+") or token.is_punct("-")
            ):
                break
            scanner.next()
            term = self._parse_term(scanner, line_no)
            (negative if token.text == "-" else positive).append(term)
        if all(isinstance(t, int) for t in positive + negative):
            return sum(positive) - sum(negative)
        return _SymbolicValue(positive, negative)

    def _parse_term(self, scanner, line_no):
        token = scanner.next()
        if token is None:
            raise AssemblerError("line %d: missing operand" % line_no)
        if token.kind == "int":
            return token.value
        if token.kind == "ident":
            return token.text
        raise AssemblerError(
            "line %d: unexpected %s in operand" % (line_no, token)
        )

    # -- instruction matching -----------------------------------------------------

    def _syntaxes_of(self, operation):
        """Assemblable SYNTAX variants with their guard bindings, cached.

        Each entry is ``(syntax, bindings)``; variants whose guards could
        not be solved to positive bindings are skipped -- they can be
        decoded and simulated but not assembled.
        """
        cached = self._syntax_cache.get(operation.name)
        if cached is not None:
            return cached
        variants = []
        seen = set()
        for syntax, bindings, usable in operation.syntax_variants(
            self._model
        ):
            if not usable:
                continue
            key = (syntax.elements, tuple(sorted(bindings.items())))
            if key in seen:
                continue
            seen.add(key)
            variants.append((syntax, bindings))
        self._syntax_cache[operation.name] = variants
        return variants

    def _match_instruction(self, scanner, line_no, line):
        tokens = scanner.tokens
        for spec, constraints, end in self._gen_match(
            self._root, tokens, scanner.pos, line_no
        ):
            if end != len(tokens):
                continue  # trailing tokens: try another parse
            if constraints:
                raise AssemblerError(
                    "line %d: guard constraints %r could not be attached to "
                    "any enclosing coding field" % (line_no, constraints)
                )
            scanner.pos = end
            return spec
        raise AssemblerError(
            "line %d: cannot assemble %r for model %r"
            % (line_no, line, self._model.name)
        )

    def _gen_match(self, operation, tokens, pos, line_no):
        """Backtracking matcher: yields (spec, constraints, end_pos).

        Tries every SYNTAX variant and, within group slots, every
        alternative operation -- so a prefix-ambiguous grammar (e.g.
        ``*ar1`` vs ``*ar1+``) still finds the parse that consumes the
        whole line.  ``constraints`` carries guard bindings owed to an
        ancestor's coding fields (non-orthogonal codings).
        """
        for syntax, bindings in self._syntaxes_of(operation):
            fields = {}
            constraints = {}
            for name, value in bindings.items():
                if name in operation.labels:
                    fields[name] = value
                else:
                    constraints[name] = value
            yield from self._gen_elements(
                operation, syntax.elements, 0, tokens, pos, fields, {},
                constraints, line_no,
            )

    def _gen_elements(self, operation, elements, index, tokens, pos, fields,
                      children, constraints, line_no):
        if index == len(elements):
            spec = OperandSpec(
                operation.name, fields=dict(fields), children=dict(children)
            )
            if self._fill_defaults(operation, spec) is not None:
                yield spec, dict(constraints), pos
            return
        element = elements[index]
        if isinstance(element, m.SyntaxLiteral):
            token = tokens[pos] if pos < len(tokens) else None
            if token is None:
                return
            if token.text == element.text:
                yield from self._gen_elements(
                    operation, elements, index + 1, tokens, pos + 1, fields,
                    children, constraints, line_no,
                )
                return
            # Prefix fusion: literal "ar" + label arn matches token "ar3".
            next_ref = None
            if index + 1 < len(elements) and isinstance(
                elements[index + 1], m.SyntaxRef
            ):
                next_ref = elements[index + 1]
            if (
                next_ref is not None
                and token.kind == "ident"
                and token.text.startswith(element.text)
                and token.text[len(element.text):].isdigit()
                and next_ref.name in operation.labels
            ):
                value = int(token.text[len(element.text):])
                if fields.get(next_ref.name, value) != value:
                    return
                new_fields = dict(fields)
                new_fields[next_ref.name] = value
                yield from self._gen_elements(
                    operation, elements, index + 2, tokens, pos + 1,
                    new_fields, children, constraints, line_no,
                )
            return
        # SyntaxRef
        name = element.name
        if name in operation.labels:
            parsed = self._parse_expr_at(tokens, pos, line_no)
            if parsed is None:
                return
            value, end = parsed
            if name in fields and fields[name] != value:
                return
            new_fields = dict(fields)
            new_fields[name] = value
            yield from self._gen_elements(
                operation, elements, index + 1, tokens, end, new_fields,
                children, constraints, line_no,
            )
            return
        slots = operation.child_slots()
        if name in slots:
            for alt_name in slots[name]:
                alt = self._model.operations[alt_name]
                for child, child_constraints, end in self._gen_match(
                    alt, tokens, pos, line_no
                ):
                    merged = self._merge_constraints(
                        operation, fields, constraints, child_constraints
                    )
                    if merged is None:
                        continue
                    new_fields, new_constraints = merged
                    new_children = dict(children)
                    new_children[name] = child
                    yield from self._gen_elements(
                        operation, elements, index + 1, tokens, end,
                        new_fields, new_children, new_constraints, line_no,
                    )
            return
        if name in operation.references:
            parsed = self._parse_expr_at(tokens, pos, line_no)
            if parsed is None:
                return
            value, end = parsed
            if isinstance(value, _SymbolicValue):
                return
            merged = self._merge_constraints(
                operation, fields, constraints, {name: value}
            )
            if merged is None:
                return
            new_fields, new_constraints = merged
            yield from self._gen_elements(
                operation, elements, index + 1, tokens, end, new_fields,
                children, new_constraints, line_no,
            )

    def _merge_constraints(self, operation, fields, constraints, incoming):
        """Absorb child/reference bindings into this operation's fields or
        pass them further up; None on conflict."""
        new_fields = dict(fields)
        new_constraints = dict(constraints)
        for name, value in incoming.items():
            if name in operation.labels:
                if new_fields.get(name, value) != value:
                    return None
                new_fields[name] = value
            else:
                if new_constraints.get(name, value) != value:
                    return None
                new_constraints[name] = value
        return new_fields, new_constraints

    def _parse_expr_at(self, tokens, pos, line_no):
        scanner = _LineScanner(tokens)
        scanner.pos = pos
        try:
            value = self._parse_operand_expr(scanner, line_no)
        except AssemblerError:
            return None
        return value, scanner.pos

    def _fill_defaults(self, operation, spec):
        """Default unmentioned coding fields to 0 and single-alternative
        slots to their only operation; fail on unresolvable slots."""
        if not operation.has_coding:
            return spec
        for element in operation.coding:
            if isinstance(element, m.CodingLabel):
                spec.fields.setdefault(element.name, 0)
            elif isinstance(element, m.CodingGroup):
                if element.name in spec.children:
                    continue
                alternatives = operation.child_slots()[element.name]
                if len(alternatives) != 1:
                    return None
                child = OperandSpec(alternatives[0])
                if self._fill_defaults(
                    self._model.operations[alternatives[0]], child
                ) is None:
                    return None
                spec.children[element.name] = child
        return spec

    # -- pass 2 ----------------------------------------------------------------

    def _second_pass(self, name, symbols, instructions, data, entry):
        images = {}  # memory -> {address: word}
        parallel_fixups = []
        for pending in instructions:
            spec = self._resolve_spec(
                pending.spec, self._model.operations[pending.spec.operation],
                symbols, pending.line_no,
            )
            try:
                word = self._encoder.encode(spec)
            except Exception as exc:
                raise AssemblerError(
                    "line %d: %s" % (pending.line_no, exc)
                ) from exc
            image = images.setdefault(pending.memory, {})
            if pending.address in image:
                raise AssemblerError(
                    "line %d: address 0x%x assembled twice"
                    % (pending.line_no, pending.address)
                )
            image[pending.address] = word
            if pending.parallel:
                parallel_fixups.append(pending)
        self._apply_parallel_bits(images, parallel_fixups)

        word_mask = None
        for pending in data:
            value = pending.value
            if isinstance(value, _SymbolicValue):
                value = value.resolve(symbols, pending.line_no)
            mem = self._model.memories[pending.memory]
            image = images.setdefault(pending.memory, {})
            if pending.address in image:
                raise AssemblerError(
                    "line %d: address 0x%x assembled twice"
                    % (pending.line_no, pending.address)
                )
            image[pending.address] = value & mem.dtype.mask

        program = Program(name=name, symbols=dict(symbols))
        for memory, image in images.items():
            for base, words in _contiguous_runs(image):
                program.add_segment(memory, base, words)
        if entry is None:
            entry = 0
        elif isinstance(entry, _SymbolicValue):
            entry = entry.resolve(symbols, 0)
        program.entry = entry
        return program

    def _apply_parallel_bits(self, images, fixups):
        config = self._model.config
        if not fixups:
            return
        pbit = 1 << config.parallel_bit
        image = images.get(self._pmem, {})
        for pending in fixups:
            prev_address = pending.address - 1
            if prev_address not in image:
                raise AssemblerError(
                    "line %d: '||' has no preceding instruction"
                    % pending.line_no
                )
            image[prev_address] |= pbit

    def _resolve_spec(self, spec, operation, symbols, line_no):
        layout = layout_of(operation)
        resolved = OperandSpec(spec.operation)
        for field_name, value in spec.fields.items():
            if isinstance(value, _SymbolicValue):
                value = value.resolve(symbols, line_no)
            width = layout.find(field_name).width
            if value < 0:
                if value < -(1 << (width - 1)):
                    raise AssemblerError(
                        "line %d: value %d does not fit in %d-bit field %r"
                        % (line_no, value, width, field_name)
                    )
                value &= mask(width)
            elif value > mask(width):
                raise AssemblerError(
                    "line %d: value %d does not fit in %d-bit field %r"
                    % (line_no, value, width, field_name)
                )
            resolved.fields[field_name] = value
        for slot, child in spec.children.items():
            resolved.children[slot] = self._resolve_spec(
                child, self._model.operations[child.operation], symbols,
                line_no,
            )
        return resolved


def _strip_comment(line):
    """Remove ``;`` and ``//`` comments (outside of strings -- assembly
    lines contain no strings, so a plain scan suffices)."""
    for marker in (";", "//", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line


def _contiguous_runs(image):
    """Group an address->word dict into (base, [words]) runs."""
    runs = []
    for address in sorted(image):
        if runs and address == runs[-1][0] + len(runs[-1][1]):
            runs[-1][1].append(image[address])
        else:
            runs.append((address, [image[address]]))
    return runs
