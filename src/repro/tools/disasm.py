"""Retargetable disassembler, generated from the model data base.

Rendering uses the SYNTAX of the decode-time-selected variant of every
operation, so non-orthogonal codings disassemble to the mnemonic that
actually matches the mode bits.  ``assemble(disassemble(w)) == w`` is a
property-based test invariant for every shipped model.
"""

from __future__ import annotations

from repro.coding.decoder import InstructionDecoder
from repro.lisa import model as m
from repro.support.errors import AssemblerError, DecodeError


class Disassembler:
    """Renders decoded instructions back to assembly text."""

    def __init__(self, model):
        self._model = model
        self._decoder = InstructionDecoder(model)

    def disassemble_word(self, word, address=None):
        """Disassemble one instruction word to text."""
        node = self._decoder.decode(word, address=address)
        return self.render(node)

    def disassemble_program(self, program, with_addresses=True):
        """Disassemble all program-memory segments; yields text lines."""
        pmem = self._model.config.program_memory
        pbit = None
        if self._model.is_vliw:
            pbit = 1 << self._model.config.parallel_bit
        lines = []
        for segment in program.segments_in(pmem):
            previous_parallel = False
            for offset, word in enumerate(segment.words):
                address = segment.base + offset
                try:
                    text = self.disassemble_word(word, address=address)
                except DecodeError:
                    text = ".word 0x%x" % word
                prefix = "|| " if previous_parallel else "   "
                if with_addresses:
                    lines.append("%06x: %s%s" % (address, prefix, text))
                else:
                    lines.append(prefix + text)
                previous_parallel = bool(pbit and (word & pbit))
        return lines

    # -- rendering ---------------------------------------------------------------

    def render(self, node):
        """Render one decoded node using its variant's SYNTAX."""
        parts = self._render_parts(node)
        return _join_parts(parts)

    def _render_parts(self, node):
        variant = node.variant(self._model)
        syntax = variant.syntax
        if syntax is None:
            # No SYNTAX anywhere (behaviour-only helper): not renderable.
            raise AssemblerError(
                "operation %r has no SYNTAX to disassemble"
                % node.operation.name
            )
        parts = []
        for element in syntax.elements:
            if isinstance(element, m.SyntaxLiteral):
                parts.append(("lit", element.text))
            else:
                parts.extend(self._render_ref(node, element.name))
        return parts

    def _render_ref(self, node, name):
        if name in node.fields:
            return [("val", str(node.fields[name]))]
        if name in node.children:
            return self._render_parts(node.children[name])
        if name in node.operation.references:
            kind, payload = node.lookup(name)
            if kind == "label":
                return [("val", str(payload))]
            return self._render_parts(payload)
        raise AssemblerError(
            "SYNTAX of %r references unknown %r" % (node.operation.name, name)
        )


def _join_parts(parts):
    """Assemble (kind, text) parts with canonical spacing.

    Rules (the dual of the assembler's matcher):

    * a literal ending in a letter immediately followed by a value fuses
      with it (``"r" + "3"`` -> ``r3``) -- except the leading mnemonic;
    * ``,`` and the postfix modifiers ``+``/``-`` attach to the previous
      part;
    * the prefix sigils ``*``, ``@`` and ``#`` attach to the next part;
    * everything else is separated by single spaces.
    """
    out = []
    for index, (kind, text) in enumerate(parts):
        if index == 0:
            out.append(text)
            continue
        previous_kind, previous_text = parts[index - 1]
        if kind == "lit" and text in (",", "+", "-"):
            out.append(text)
            continue
        if previous_kind == "lit" and previous_text in ("*", "@", "#"):
            out.append(text)
            continue
        if (
            kind == "val"
            and previous_kind == "lit"
            and index >= 2  # never fuse with the mnemonic
            and previous_text
            and previous_text[-1].isalpha()
            and previous_text != ","
        ):
            out.append(text)
            continue
        out.append(" " + text)
    return "".join(out)
